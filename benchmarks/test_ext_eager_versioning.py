"""Extension (section 4.3): eager vs multiversioned version management.

The paper argues LogTM-class designs trade fast commits for slow,
software-handled aborts during which requesters wait, whereas SI-TM's
old versions make abort nearly free ("no time-consuming undo needs to be
performed as the previous version still exists").  This bench measures
the asymmetry directly on an abort-heavy and a commit-heavy workload.
"""

from repro.common.rng import SplitRandom
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.workloads import REGISTRY

from conftest import PROFILE, THREADS


def run(workload, system, seed=1):
    bench = REGISTRY.create(workload, profile=PROFILE)
    machine = Machine()
    instance = bench.setup(machine, THREADS, SplitRandom(seed))
    tm = SYSTEMS[system](machine, SplitRandom(seed + 50))
    stats = Engine(tm, instance.programs).run()
    ok = instance.verify() if instance.verify else True
    return {"aborts": stats.total_aborts,
            "makespan": stats.makespan_cycles,
            "verified": ok}


def test_eager_versioning_tradeoff(once, benchmark):
    def experiment():
        return {workload: {system: run(workload, system)
                           for system in ("LogTM", "SI-TM")}
                for workload in ("kmeans", "vacation", "ssca2")}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    for workload, row in results.items():
        assert row["LogTM"]["verified"], workload
        assert row["SI-TM"]["verified"], workload
    # vacation's long read transactions keep stalling against writers
    # under LogTM's eager detection; SI-TM's snapshots never wait
    assert results["vacation"]["SI-TM"]["makespan"] < \
        results["vacation"]["LogTM"]["makespan"]
    # ssca2's tiny disjoint writers are where eager versioning shines:
    # commits are free, conflicts near-zero — LogTM must stay competitive
    # (within 2x of SI-TM's makespan)
    assert results["ssca2"]["LogTM"]["makespan"] < \
        2.0 * results["ssca2"]["SI-TM"]["makespan"]
