"""Figure 8: application speedup over a single thread.

Shape targets (section 6.4, loosely): SI-TM scales on the read-heavy
benchmarks where 2PL flattens or degrades (Array, List, Vacation); on
kmeans/ssca2/labyrinth the three systems track each other because the TM
policy is not the bottleneck.
"""

from repro.harness.experiments import figure8

from conftest import PROFILE, SEEDS

# trimmed sweep: the harness CLI regenerates the full 1..32-thread curves;
# the bench asserts the shape on a 3-point sweep to stay CI-friendly
THREAD_COUNTS = (1, 2, 4, 8)
WORKLOADS = ["array", "list", "vacation", "kmeans", "ssca2"]


def test_fig8_speedup(once, benchmark):
    series = once(figure8, profile=PROFILE, thread_counts=THREAD_COUNTS,
                  seeds=SEEDS, workloads=WORKLOADS)
    by_key = {(s.workload, s.system): s.speedup for s in series}
    benchmark.extra_info["series"] = [
        {"workload": s.workload, "system": s.system,
         "threads": s.threads,
         "speedup": [round(v, 2) for v in s.speedup]} for s in series]

    def final(workload, system):
        return by_key[(workload, system)][-1]

    # SI-TM scales where the paper says it does
    for workload in ("array", "list", "vacation"):
        assert final(workload, "SI-TM") > 1.5, workload
        # ...and beats the 2PL baseline at the highest thread count
        assert final(workload, "SI-TM") > final(workload, "2PL"), workload
    # on the insensitive kernels nobody is catastrophically worse
    for workload in ("kmeans", "ssca2"):
        values = [final(workload, system)
                  for system in ("2PL", "SONTM", "SI-TM")]
        assert max(values) < 10 * max(min(values), 0.1), workload
