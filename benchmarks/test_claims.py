"""The one-shot reproduction verdict: every headline claim must pass."""

from repro.harness.claims import all_passed, check_claims

from conftest import PROFILE, SEEDS, THREADS


def test_all_headline_claims_pass(once, benchmark):
    results = once(check_claims, profile=PROFILE, threads=THREADS,
                   seeds=SEEDS)
    benchmark.extra_info["claims"] = [
        {"id": r.claim_id, "expected": r.expected,
         "measured": r.measured, "passed": r.passed} for r in results]
    failures = [r.claim_id for r in results if not r.passed]
    assert all_passed(results), f"failing claims: {failures}"
    assert len(results) >= 13
