"""Ablation (section 3.2): version-granularity bundling.

Bundling 8 lines per version-list entry divides metadata overhead by 8
(50% -> 6% worst case) but "requires copying an entire bundle on the
first write".  We measure both sides: the analytic capacity saving and
the measured commit-cycle cost of the bundle copies on a write-heavy run.
"""

from repro.common.config import MVMConfig, SimConfig
from repro.harness.runner import run_once
from repro.mvm.overhead import capacity_overhead

from conftest import PROFILE, THREADS


def run(bundle_lines):
    config = SimConfig(mvm=MVMConfig(bundle_lines=bundle_lines))
    result = run_once("ssca2", "SI-TM", THREADS, seed=1,
                      profile=PROFILE, config=config)
    return result


def test_bundling_tradeoff(once, benchmark):
    def experiment():
        return {bundle: {
            "makespan": run(bundle).makespan_cycles,
            "worst_case_overhead": capacity_overhead(
                MVMConfig(bundle_lines=bundle), live_versions=1),
        } for bundle in (1, 8)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    # capacity: bundling divides the worst case by 8 (50% -> 6.25%)
    assert results[8]["worst_case_overhead"] == \
        results[1]["worst_case_overhead"] / 8
    # performance: bundle copies cost extra commit cycles
    assert results[8]["makespan"] >= results[1]["makespan"]
