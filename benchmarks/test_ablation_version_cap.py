"""Ablation (section 3.1): version-cap overflow policy.

The paper claims the two bounded policies — abort the writer creating a
fifth version vs drop the oldest version and abort too-old readers —
"affect the abort rates and performance by less than 1%".  We compare
both against the unbounded MVM on the version-hungriest microbenchmarks.
"""

import dataclasses

from repro.common.config import MVMConfig, SimConfig, VersionCapPolicy
from repro.harness.runner import run_seeds

from conftest import PROFILE, SEEDS, THREADS

WORKLOADS = ["array", "list", "rbtree"]


def run_policy(policy):
    config = SimConfig(mvm=MVMConfig(cap_policy=policy))
    results = {}
    for workload in WORKLOADS:
        agg = run_seeds(workload, "SI-TM", THREADS, profile=PROFILE,
                        seeds=SEEDS, config=config)
        results[workload] = {"abort_rate": agg.abort_rate,
                             "makespan": agg.makespan}
    return results


def test_cap_policies_nearly_equivalent(once, benchmark):
    def experiment():
        return {policy.value: run_policy(policy)
                for policy in (VersionCapPolicy.ABORT_WRITER,
                               VersionCapPolicy.DROP_OLDEST,
                               VersionCapPolicy.UNBOUNDED)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    for workload in WORKLOADS:
        rates = [results[p][workload]["abort_rate"]
                 for p in ("abort-writer", "drop-oldest", "unbounded")]
        # the paper's <1% is on absolute abort rate; allow 2 points of
        # headroom at our reduced scale
        assert max(rates) - min(rates) < 0.02, (workload, rates)
