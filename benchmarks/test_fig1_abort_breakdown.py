"""Figure 1: read-write vs write-write aborts under 2PL.

Paper claim: 75%-99% of all transaction aborts in STAMP-class applications
are caused by read-write conflicts — the motivation for snapshot
isolation's "only abort on write-write" policy.
"""

from repro.harness.experiments import figure1

from conftest import PROFILE, SEEDS, THREADS


def test_fig1_read_write_aborts_dominate(once, benchmark):
    rows = once(figure1, profile=PROFILE, threads=THREADS, seeds=SEEDS)
    benchmark.extra_info["rows"] = [
        {"workload": r.workload, "rw_pct": round(r.read_write_pct, 1),
         "ww_pct": round(r.write_write_pct, 1),
         "aborts": r.total_aborts} for r in rows]
    # aggregate read-write share across benchmarks with measurable aborts
    rw = sum(r.read_write_pct * r.total_aborts for r in rows)
    ww = sum(r.write_write_pct * r.total_aborts for r in rows)
    assert rw + ww > 0
    assert rw / (rw + ww) >= 0.75, "paper: >=75% of aborts are read-write"
    # every individual benchmark with enough aborts is read-write dominated
    for row in rows:
        if row.total_aborts >= 20:
            assert row.read_write_pct >= 50.0, row.workload
