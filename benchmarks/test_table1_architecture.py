"""Table 1: the simulated architecture parameters."""

from repro.common.config import table1_dict


def test_table1_parameters(once, benchmark):
    table = once(table1_dict)
    benchmark.extra_info["table1"] = table
    assert table == {
        "CPU Cores": 32,
        "CPU Clock (GHz)": 3.0,
        "L1D cache size (KB)": 32,
        "L1 associativity": 4,
        "L1 latency (cycles)": 4,
        "L2 cache size (KB)": 256,
        "L2 associativity": 8,
        "L2 latency (cycles)": 8,
        "L3 cache size (MB)": 32,
        "L3 MVM partition (MB)": 8,
        "L3 associativity": 16,
        "L3 latency (cycles)": 30,
        "Memory controllers": 4,
        "Memory bandwidth (GB/s)": 10.0,
        "Memory latency (cycles)": 100,
    }
