"""Table 2 / Appendix A: accesses per MVM version depth, unbounded cap.

Paper claim: with 32 threads, fewer than 1% of transactional accesses
target versions older than the 4th — justifying the 4-version MVM.  At
our reduced thread count and scale we check the same shape with headroom:
the 1st version dominates and the beyond-4th tail stays marginal.
"""

from repro.harness.experiments import census_tail_fraction, table2

from conftest import PROFILE, THREADS

WORKLOADS = ["array", "list", "rbtree", "genome", "intruder",
             "kmeans", "vacation", "ssca2", "bayes", "labyrinth"]


def test_table2_version_census(once, benchmark):
    results = once(table2, profile=PROFILE, threads=THREADS,
                   workloads=WORKLOADS)
    benchmark.extra_info["census"] = results
    for workload, rows in results.items():
        counts = {r["version"]: r["accesses"] for r in rows}
        total = sum(counts.values())
        assert total > 0, workload
        # the newest version dominates (Table 2's first row)
        assert counts["1st"] / total > 0.5, workload
        # the beyond-4th tail is marginal (paper: <1% at 32 threads;
        # we allow 5% headroom at reduced scale)
        assert census_tail_fraction(rows, 4) < 0.05, workload
