"""Ablation (section 3.1, Figure 4): version coalescing.

Coalescing bounds live versions per line by the number of concurrent
transactions; without it, version counts are limited only by GC, so the
maximum live depth grows and the 4-version cap starts biting.
"""

from repro.common.config import MVMConfig, SimConfig, VersionCapPolicy
from repro.harness.runner import run_once

from conftest import PROFILE, THREADS


def run(coalescing):
    config = SimConfig(mvm=MVMConfig(
        cap_policy=VersionCapPolicy.UNBOUNDED, coalescing=coalescing))
    result = run_once("list", "SI-TM", THREADS, seed=1, profile=PROFILE,
                      config=config)
    return result.mvm_stats


def test_coalescing_bounds_live_versions(once, benchmark):
    def experiment():
        return {"on": run(True), "off": run(False)}

    stats = once(experiment)
    benchmark.extra_info["stats"] = stats
    assert stats["on"]["versions_coalesced"] > 0
    assert stats["off"]["versions_coalesced"] == 0
    # with coalescing the retained depth never exceeds the bound the
    # paper derives (concurrent transactions + 1 = threads + 1)
    assert stats["on"]["max_live_versions"] <= THREADS + 1
    # and coalescing retains no more versions than the uncoalesced MVM
    assert stats["on"]["max_live_versions"] <= \
        stats["off"]["max_live_versions"]
