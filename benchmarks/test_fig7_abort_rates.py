"""Figure 7: abort counts of SONTM and SI-TM relative to the 2PL baseline.

Shape targets from the paper (section 6.3), checked loosely because our
substrate is an operation-level simulator at reduced scale:

* Array and List: SI-TM collapses aborts by orders of magnitude; SONTM
  sits between 2PL and SI-TM.
* Vacation: SI-TM under a few percent of 2PL.
* Intruder: SI-TM well below both 2PL and SONTM.
* Kmeans: no dramatic SI win (read-modify-write sets).
* SSCA2/Labyrinth: low absolute aborts everywhere; policy barely matters.
"""

from repro.harness.experiments import figure7

from conftest import PROFILE, SEEDS, THREADS

WORKLOADS = ["array", "list", "rbtree", "genome", "intruder",
             "kmeans", "labyrinth", "vacation", "ssca2", "bayes"]


def test_fig7_abort_rates(once, benchmark):
    cells = once(figure7, profile=PROFILE, thread_counts=(THREADS,),
                 seeds=SEEDS, workloads=WORKLOADS)
    table = {c.workload: c for c in cells}
    benchmark.extra_info["cells"] = [
        {"workload": c.workload, "threads": c.threads,
         "aborts": c.aborts, "relative": c.relative} for c in cells]

    def rel(workload, system):
        value = table[workload].relative[system]
        return 1.0 if value is None else value

    # SI-TM's showcase benchmarks: large reductions
    assert rel("array", "SI-TM") < 0.30
    assert rel("list", "SI-TM") < 0.30
    assert rel("vacation", "SI-TM") < 0.35
    assert rel("intruder", "SI-TM") < 0.60
    # CS sits between 2PL and SI on the read-heavy microbenchmarks
    assert rel("array", "SONTM") < 1.0
    assert rel("list", "SONTM") < 1.0
    # kmeans: RMW transactions -> no order-of-magnitude SI win
    assert rel("kmeans", "SI-TM") > 0.30
    # low-contention kernels: tiny absolute abort counts for everyone
    for workload in ("ssca2", "labyrinth"):
        for system in ("2PL", "SONTM", "SI-TM"):
            assert table[workload].aborts[system] < 60
    # SI-TM never does dramatically worse than 2PL anywhere the baseline
    # has a meaningful abort count (ratios of near-zero counts are noise)
    for workload in WORKLOADS:
        if table[workload].aborts["2PL"] >= 10:
            assert rel(workload, "SI-TM") < 3.0, workload
        else:
            assert table[workload].aborts["SI-TM"] < 30, workload
