"""Extension: contention sweep (STAMP's low/high configuration analogue).

STAMP ships low- and high-contention variants of several applications;
the paper runs the standard simulator configurations.  This bench sweeps
our contention classes and checks the expected monotonicity: SI-TM's
advantage over 2PL *grows* with contention on read-heavy workloads (more
read-write conflicts to forgive), while on kmeans (pure RMW) higher
contention hurts every system.
"""

import dataclasses

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.sim.engine import Engine
from repro.workloads import REGISTRY

from conftest import PROFILE, THREADS

LEVELS = ("low", "standard", "high")


def run(workload, system, contention, seed=1):
    bench = REGISTRY.create(workload, profile=PROFILE, contention=contention)
    machine = Machine()
    instance = bench.setup(machine, THREADS, SplitRandom(seed))
    tm = SYSTEMS[system](machine, SplitRandom(seed + 100))
    stats = Engine(tm, instance.programs).run()
    return stats


def test_contention_sweep(once, benchmark):
    def experiment():
        results = {}
        for workload in ("array", "kmeans"):
            for level in LEVELS:
                for system in ("2PL", "SI-TM"):
                    stats = run(workload, system, level)
                    results[(workload, level, system)] = {
                        "aborts": stats.total_aborts,
                        "abort_rate": stats.abort_rate,
                    }
        return {f"{w}/{l}/{s}": v for (w, l, s), v in results.items()}

    results = once(experiment)
    benchmark.extra_info["results"] = results

    def aborts(workload, level, system):
        return results[f"{workload}/{level}/{system}"]["aborts"]

    # contention monotonicity under the eager baseline
    assert aborts("array", "high", "2PL") >= aborts("array", "low", "2PL")
    assert aborts("kmeans", "high", "2PL") >= aborts("kmeans", "low", "2PL")
    # SI keeps array aborts low even at high contention (snapshots forgive
    # the read-write conflicts that multiply)
    assert aborts("array", "high", "SI-TM") < aborts("array", "high", "2PL")
    # kmeans at high contention is painful for SI too (true WW conflicts)
    assert aborts("kmeans", "high", "SI-TM") > \
        aborts("kmeans", "low", "SI-TM")
