"""Figures 2 and 6: the example schedules under each consistency model."""

from repro.harness.experiments import figure2, figure6


def test_fig2_example_schedule(once, benchmark):
    outcomes = once(figure2)
    by_system = {o.system: o for o in outcomes}
    benchmark.extra_info["outcomes"] = {
        o.system: {"committed": o.committed, "aborted": o.aborted}
        for o in outcomes}
    # the paper's Figure 2 narrative, exactly:
    assert sorted(by_system["2PL"].aborted) == ["TX1", "TX2", "TX3"]
    assert sorted(by_system["SONTM"].committed) == ["TX0", "TX1"]
    assert sorted(by_system["SONTM"].aborted) == ["TX2", "TX3"]
    assert sorted(by_system["SI-TM"].committed) == ["TX0", "TX1", "TX2"]
    assert by_system["SI-TM"].aborted == ["TX3"]
    assert by_system["SI-TM"].abort_causes["TX3"] == "write-write"


def test_fig6_temporal_vs_type_dependencies(once, benchmark):
    outcomes = once(figure6)
    by_system = {o.system: o for o in outcomes}
    benchmark.extra_info["outcomes"] = {
        o.system: {"committed": o.committed, "aborted": o.aborted}
        for o in outcomes}
    # CS's temporal cycle aborts the long reader...
    assert "TX0" in by_system["SONTM"].aborted
    # ...while SI and SSI (type-based, same-direction edges) commit it
    assert sorted(by_system["SI-TM"].committed) == ["TX0", "TX1"]
    assert sorted(by_system["SSI-TM"].committed) == ["TX0", "TX1"]
