"""Telemetry overhead contract: disabled-by-default must stay free.

The observability subsystem (:mod:`repro.obs`) promises that a run
without ``telemetry=True`` pays nothing beyond one ``is not None`` test
per hot-path site.  Two checks enforce it:

* **structural** — a default run constructs no telemetry objects at
  all (the registry and span recorder classes are poisoned and must
  never be instantiated);
* **temporal** — ``run_once(telemetry=False)`` stays within 5% (plus
  measured machine noise) of a hand-rolled engine loop with no
  telemetry plumbing around it, i.e. the pre-telemetry execution path.

Both sides of the wall-clock comparison use min-of-N, which on a noisy
CI box is the stable estimator of the true cost floor.
"""

import dataclasses
import time

from repro.common.config import SimConfig
from repro.common.rng import SplitRandom, derive_seed
from repro.harness.runner import run_once
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.workloads import REGISTRY

from conftest import PROFILE

WORKLOAD = "rbtree"
SYSTEM = "SI-TM"
THREADS = 4
#: timing repetitions (min-of-N absorbs scheduler noise)
REPS = 5
#: the contract: telemetry off may cost at most this fraction extra
MAX_OVERHEAD = 0.05


def _bare_run():
    """run_once's simulation core with zero telemetry plumbing."""
    config = SimConfig()
    if THREADS > config.machine.cores:
        config = config.replace(
            machine=dataclasses.replace(config.machine, cores=THREADS))
    machine = Machine(config)
    rng = SplitRandom(derive_seed(1, WORKLOAD, SYSTEM, THREADS))
    bench = REGISTRY.create(WORKLOAD, profile=PROFILE)
    instance = bench.setup(machine, THREADS, rng.split("workload"))
    tm = SYSTEMS[SYSTEM](machine, rng.split("tm"))
    return Engine(tm, instance.programs).run()


def _min_seconds(fn, reps=REPS):
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_disabled_run_constructs_no_telemetry_objects(monkeypatch):
    """telemetry=False/profiling=False must never touch repro.obs at all."""
    import repro.obs.metrics as metrics_mod
    import repro.obs.profile as profile_mod
    import repro.obs.spans as spans_mod

    def poison(*args, **kwargs):
        raise AssertionError("telemetry object built in a disabled run")

    monkeypatch.setattr(metrics_mod.MetricsRegistry, "__init__", poison)
    monkeypatch.setattr(spans_mod.SpanRecorder, "__init__", poison)
    monkeypatch.setattr(profile_mod.CycleProfiler, "__init__", poison)
    result = run_once(WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE)
    assert result.metrics is None and result.spans is None
    assert result.phases is None


def test_telemetry_off_overhead_within_contract(once, benchmark):
    def experiment():
        # interleave to keep cache/frequency drift symmetric
        bare = _min_seconds(_bare_run)
        off = _min_seconds(lambda: run_once(
            WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE))
        bare2 = _min_seconds(_bare_run)
        on = _min_seconds(lambda: run_once(
            WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE,
            telemetry=True))
        return {"bare_s": min(bare, bare2), "off_s": off, "on_s": on,
                "noise": abs(bare - bare2) / min(bare, bare2)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    noise = results["noise"]
    assert noise < 0.5, f"machine too noisy to measure: {results}"
    overhead = results["off_s"] / results["bare_s"] - 1.0
    benchmark.extra_info["telemetry_off_overhead"] = overhead
    assert overhead <= MAX_OVERHEAD + noise, results
    # Sanity: the telemetry-on path works; its cost lands on the
    # enabled run only (it may legitimately be slower than both).
    assert results["on_s"] > 0
