"""Telemetry overhead contract: disabled-by-default must stay free.

The observability subsystem (:mod:`repro.obs`) promises that a run
without ``telemetry=True`` pays nothing beyond one ``is not None`` test
per hot-path site.  Two checks enforce it:

* **structural** — a default run constructs no telemetry objects at
  all (the registry and span recorder classes are poisoned and must
  never be instantiated);
* **temporal** — ``run_once(telemetry=False)`` stays within 5% (plus
  measured machine noise) of a hand-rolled engine loop with no
  telemetry plumbing around it, i.e. the pre-telemetry execution path.

Both sides of the wall-clock comparison use min-of-N, which on a noisy
CI box is the stable estimator of the true cost floor.
"""

import dataclasses
import time

from repro.common.config import SimConfig
from repro.common.rng import SplitRandom, derive_seed
from repro.harness.runner import run_once
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.workloads import REGISTRY

from conftest import PROFILE

WORKLOAD = "rbtree"
SYSTEM = "SI-TM"
THREADS = 4
#: timing repetitions (min-of-N absorbs scheduler noise)
REPS = 5
#: the contract: telemetry off may cost at most this fraction extra
MAX_OVERHEAD = 0.05


def _bare_run():
    """run_once's simulation core with zero telemetry plumbing."""
    config = SimConfig()
    if THREADS > config.machine.cores:
        config = config.replace(
            machine=dataclasses.replace(config.machine, cores=THREADS))
    machine = Machine(config)
    rng = SplitRandom(derive_seed(1, WORKLOAD, SYSTEM, THREADS))
    bench = REGISTRY.create(WORKLOAD, profile=PROFILE)
    instance = bench.setup(machine, THREADS, rng.split("workload"))
    tm = SYSTEMS[SYSTEM](machine, rng.split("tm"))
    return Engine(tm, instance.programs).run()


def _min_seconds(fn, reps=REPS):
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_disabled_run_constructs_no_telemetry_objects(monkeypatch):
    """telemetry=False/profiling=False must never touch repro.obs at all."""
    import repro.obs.flight as flight_mod
    import repro.obs.live as live_mod
    import repro.obs.metrics as metrics_mod
    import repro.obs.profile as profile_mod
    import repro.obs.spans as spans_mod

    def poison(*args, **kwargs):
        raise AssertionError("telemetry object built in a disabled run")

    monkeypatch.setattr(metrics_mod.MetricsRegistry, "__init__", poison)
    monkeypatch.setattr(spans_mod.SpanRecorder, "__init__", poison)
    monkeypatch.setattr(spans_mod.StreamingSpanRecorder, "__init__", poison)
    monkeypatch.setattr(profile_mod.CycleProfiler, "__init__", poison)
    monkeypatch.setattr(live_mod.TimeSeriesSampler, "__init__", poison)
    monkeypatch.setattr(flight_mod.FlightRecorder, "__init__", poison)
    result = run_once(WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE)
    assert result.metrics is None and result.spans is None
    assert result.phases is None and result.timeseries is None


def test_streaming_holds_memory_at_cap_on_long_run():
    """The bounded-memory claim at scale: a heavily contended run of
    over a million engine steps (hundreds of thousands of closed spans)
    never holds more than one cap's worth of commits plus one cap's
    worth of aborts, while the online aggregates still count every
    span exactly."""
    from repro.obs import StreamingSpanRecorder
    from repro.sim.engine import TransactionSpec
    from repro.tm.ops import Read, Write

    machine = Machine(SimConfig())
    addr = machine.mvmalloc(1)

    def body():
        value = yield Read(addr)
        yield Write(addr, value + 1)

    programs = [[TransactionSpec(body, "ctr") for _ in range(22_000)]
                for _ in range(4)]
    recorder = StreamingSpanRecorder(cap=256, seed=1)
    tm = SYSTEMS[SYSTEM](machine, SplitRandom(3))
    engine = Engine(tm, programs, tracer=recorder)
    stats = engine.run()
    closed = stats.total_commits + stats.total_aborts
    assert engine.steps_taken >= 1_000_000
    assert closed >= 100_000
    assert recorder.max_retained <= 2 * recorder.cap
    assert len(recorder) <= 2 * recorder.cap
    assert recorder.total_commits == stats.total_commits
    assert recorder.total_aborts == stats.total_aborts
    assert recorder.aggregate()["total_spans"] == closed


def test_telemetry_off_overhead_within_contract(once, benchmark):
    def experiment():
        # interleave to keep cache/frequency drift symmetric
        bare = _min_seconds(_bare_run)
        off = _min_seconds(lambda: run_once(
            WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE))
        bare2 = _min_seconds(_bare_run)
        on = _min_seconds(lambda: run_once(
            WORKLOAD, SYSTEM, THREADS, seed=1, profile=PROFILE,
            telemetry=True))
        return {"bare_s": min(bare, bare2), "off_s": off, "on_s": on,
                "noise": abs(bare - bare2) / min(bare, bare2)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    noise = results["noise"]
    assert noise < 0.5, f"machine too noisy to measure: {results}"
    overhead = results["off_s"] / results["bare_s"] - 1.0
    benchmark.extra_info["telemetry_off_overhead"] = overhead
    assert overhead <= MAX_OVERHEAD + noise, results
    # Sanity: the telemetry-on path works; its cost lands on the
    # enabled run only (it may legitimately be slower than both).
    assert results["on_s"] > 0
