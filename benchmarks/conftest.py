"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation DESIGN.md calls out), asserts its *shape* claims — who wins, by
roughly what factor — and attaches the regenerated rows/series to
pytest-benchmark's ``extra_info`` so ``--benchmark-json`` output carries
the data.

Profiles: benches default to the ``test`` profile and modest thread
counts so the whole suite stays in CI-friendly time; the harness CLI
(``python -m repro.harness.cli``) regenerates the same experiments at
``quick``/``full`` scale.
"""

import pytest

#: profile used by every benchmark
PROFILE = "test"
#: thread count standing in for the paper's 32-core runs
THREADS = 8
#: seeds per cell (the paper averages 5; 2 keeps CI fast while still
#: catching seed-sensitive flakiness)
SEEDS = 2


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep benchmark runs out of the repository's result cache.

    Benchmarks time actual execution; serving a run from
    ``results/.cache`` (or polluting it) would corrupt both the timings
    and later harness invocations.
    """
    monkeypatch.setenv("SITM_CACHE_DIR", str(tmp_path / "result-cache"))
    monkeypatch.setenv("SITM_FUZZ_DIR", str(tmp_path / "fuzz"))
    monkeypatch.setenv("SITM_BENCH_DIR", str(tmp_path / "bench"))
    monkeypatch.setenv("SITM_FLIGHT_DIR", str(tmp_path / "flight"))


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic and expensive; statistical
    repetition belongs to the seed loop inside the experiment, not to
    wall-clock re-runs.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
