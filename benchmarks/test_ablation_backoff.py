"""Ablation (section 6.4): exponential backoff for the eager baselines.

The paper: "the two eager mechanisms utilize exponential backoff to avoid
livelock ... Without exponential backoff 2PL and CS show even higher
abort rates and consequently lower performance."  We measure 2PL with and
without backoff on the livelock-prone benchmarks.
"""

from repro.common.config import SimConfig, TMConfig
from repro.harness.runner import run_seeds

from conftest import PROFILE, SEEDS

# Read-heavy workloads only, at 4 threads: without backoff, eager
# requester-wins on write-hot kernels (kmeans) devolves into a mutual-
# abort storm that takes minutes to grind through — which is precisely
# the livelock the paper says backoff exists to prevent, but a CI bench
# must demonstrate the effect without re-enacting it at full scale.
WORKLOADS = ["genome", "list"]
THREADS = 4


def run(backoff_enabled):
    config = SimConfig(tm=TMConfig(backoff_enabled=backoff_enabled))
    results = {}
    for workload in WORKLOADS:
        agg = run_seeds(workload, "2PL", THREADS, profile=PROFILE,
                        seeds=SEEDS, config=config)
        results[workload] = {"aborts": agg.aborts,
                             "makespan": agg.makespan}
    return results


def test_backoff_reduces_aborts(once, benchmark):
    def experiment():
        return {"with": run(True), "without": run(False)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    total_with = sum(results["with"][w]["aborts"] for w in WORKLOADS)
    total_without = sum(results["without"][w]["aborts"] for w in WORKLOADS)
    assert total_without > total_with, (total_without, total_with)
