"""Ablation (section 4.2): word-granularity commit filtering.

SI-TM can compare conflicting lines word by word at commit to dismiss
false-sharing and silent-store conflicts; the evaluation runs everything
line-granular, so the filter's headroom is extra ("the performance
results ... can be regarded as a lower bound").  We build a workload with
deliberate false sharing — threads updating *different words of the same
lines* — and measure the filter's effect.
"""

from repro.common.config import SimConfig, TMConfig
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SnapshotIsolationTM
from repro.tm.ops import Compute, Read, Write

LINES = 16
TXNS_PER_THREAD = 40
THREADS = 4


def false_sharing_run(word_filter):
    config = SimConfig(tm=TMConfig(word_grain_commit_filter=word_filter))
    machine = Machine(config)
    per_line = machine.address_map.words_per_line
    base = machine.mvmalloc(LINES * per_line)
    rng = SplitRandom(77)

    def update(thread_id, line):
        # every thread owns one word per line: conflicts are pure false
        # sharing at line granularity
        addr = base + line * per_line + thread_id

        def body():
            value = yield Read(addr)
            yield Compute(5)
            yield Write(addr, value + 1)

        return body

    programs = []
    for tid in range(THREADS):
        thread_rng = rng.split(tid)
        programs.append([
            TransactionSpec(update(tid, thread_rng.randrange(LINES)), "upd")
            for _ in range(TXNS_PER_THREAD)])
    tm = SnapshotIsolationTM(machine, rng.split("tm"))
    stats = Engine(tm, programs).run()
    # correctness: every committed update survives in its own word
    total = sum(machine.plain_load(base + line * per_line + tid)
                for line in range(LINES) for tid in range(THREADS))
    assert total == THREADS * TXNS_PER_THREAD
    return {"aborts": stats.total_aborts,
            "filtered": machine.mvm.ww_conflicts_filtered}


def test_word_filter_removes_false_sharing_aborts(once, benchmark):
    def experiment():
        return {"line": false_sharing_run(False),
                "word": false_sharing_run(True)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    assert results["word"]["filtered"] > 0
    assert results["word"]["aborts"] < results["line"]["aborts"]
