"""Extension (section 5.2): the price of full serializability.

SSI-TM adds dangerous-structure detection on top of SI-TM: read sets are
tracked, committed transactions leave flag records, and pivots abort.
This bench quantifies what that buys and costs relative to plain SI-TM on
the microbenchmarks — the paper leaves SSI's evaluation to future work,
so this is reproduction-extending measurement, not a paper figure.

Expectations: read-only-heavy benchmarks barely pay (read-only
transactions can never be pivots); update-heavy structures pay extra
aborts for the serializability guarantee.
"""

from repro.harness.runner import run_seeds

from conftest import PROFILE, SEEDS, THREADS

WORKLOADS = ["array", "list", "rbtree", "vacation"]


def test_ssi_cost_over_si(once, benchmark):
    def experiment():
        results = {}
        for workload in WORKLOADS:
            row = {}
            for system in ("SI-TM", "SSI-TM"):
                agg = run_seeds(workload, system, THREADS,
                                profile=PROFILE, seeds=SEEDS)
                row[system] = {"aborts": agg.aborts,
                               "abort_rate": agg.abort_rate,
                               "makespan": agg.makespan,
                               "verified": agg.all_verified}
            results[workload] = row
        return results

    results = once(experiment)
    benchmark.extra_info["results"] = results
    for workload, row in results.items():
        # serializability must never corrupt a structure
        assert row["SSI-TM"]["verified"], workload
        # the serializability premium is real but bounded: SSI must keep
        # making progress, not collapse into an abort storm.  List is the
        # worst case — every operation's long prefix traversal is an edge
        # source, so update transactions become pivots frequently.
        assert row["SSI-TM"]["abort_rate"] < 0.60, (workload, row)
    # on the read-dominated Array, SSI stays close to SI (read-only
    # transactions can never be pivots)
    array = results["array"]
    assert array["SSI-TM"]["abort_rate"] <= \
        array["SI-TM"]["abort_rate"] + 0.10
