"""Ablation (section 4.2): the Δ-commit timestamp protocol.

A committing transaction reserves ``global + Δ`` as its end timestamp;
transactions starting while a commit is in flight stall once Δ-1 starts
have been handed out.  A small Δ therefore trades commit-race safety for
begin stalls; the paper argues the stall case "is rare as the commit
process is usually of short duration" for a sensible Δ.
"""

from repro.common.config import MVMConfig, SimConfig
from repro.harness.runner import run_once

from conftest import PROFILE, THREADS


def run(delta):
    config = SimConfig(mvm=MVMConfig(commit_delta=delta))
    result = run_once("vacation", "SI-TM", THREADS, seed=1,
                      profile=PROFILE, config=config)
    return {"stalls": result.mvm_stats["start_stalls"],
            "makespan": result.makespan_cycles,
            "aborts": result.aborts}


def test_delta_headroom_eliminates_stalls(once, benchmark):
    def experiment():
        return {delta: run(delta) for delta in (2, 4, 64)}

    results = once(experiment)
    benchmark.extra_info["results"] = results
    # stalls vanish (or nearly so) with the default Δ=64
    assert results[64]["stalls"] <= results[2]["stalls"]
    assert results[64]["stalls"] == 0
    # abort behaviour is essentially Δ-independent: Δ affects begin
    # stalls, and only through the schedule perturbation they cause can
    # abort counts drift slightly
    drift = abs(results[2]["aborts"] - results[64]["aborts"])
    assert drift <= max(3, 0.5 * results[64]["aborts"] + 3)
