"""Section 3.2: the MVM capacity/bandwidth overhead arithmetic."""

import pytest

from repro.harness.experiments import overheads


def test_overhead_model(once, benchmark):
    rows = once(overheads)
    benchmark.extra_info["rows"] = rows
    by_bundle = {r["bundle_lines"]: r for r in rows}
    # the paper's quoted numbers
    assert by_bundle[1]["overhead_full_versions_pct"] == pytest.approx(12.5)
    assert by_bundle[1]["overhead_worst_case_pct"] == pytest.approx(50.0)
    assert by_bundle[1]["bandwidth_best_case_pct"] == pytest.approx(12.5)
    # bundling 8 lines divides the worst case by 8 ("reduced ... to 6%")
    assert by_bundle[8]["overhead_worst_case_pct"] == pytest.approx(6.25)
