"""Execution-layer smoke benchmarks: parallel speedup and cache hits.

Acceptance targets for the spec/executor refactor:

* ``fig7 --jobs 4`` must produce numerically identical cells to
  ``--jobs 1`` (checked on every run, whatever the core count);
* on a >=4-core runner, 4 jobs must beat serial by >=1.8x wall-clock;
* a second invocation must be served >=90% from cache.

The speedup assertion is gated on the machine actually having the
cores: a 1-core container still checks equality and cache behaviour,
but process-pool wall-clock there measures scheduling, not the
refactor.
"""

import dataclasses
import os
import time

import pytest

from repro.harness.executor import Executor
from repro.harness.experiments import figure7

from conftest import SEEDS

#: enough grid cells (3 workloads x 2 thread counts x 3 systems x seeds)
#: that pool startup is amortised, small enough to stay CI-friendly
WORKLOADS = ["rbtree", "list", "vacation"]
THREAD_COUNTS = (8, 16)
PROFILE = "quick"


def _cells_key(cells):
    return [dataclasses.asdict(c) for c in cells]


def _run(jobs, tmp_path, cache=False):
    executor = Executor(jobs=jobs, cache=cache,
                        cache_dir=tmp_path / "cache")
    start = time.perf_counter()
    cells = figure7(PROFILE, THREAD_COUNTS, SEEDS,
                    workloads=WORKLOADS, executor=executor)
    return cells, time.perf_counter() - start, executor


def test_parallel_fig7_identical_and_faster(tmp_path, benchmark):
    serial_cells, serial_secs, _ = _run(jobs=1, tmp_path=tmp_path)
    parallel_cells, parallel_secs, _ = _run(jobs=4, tmp_path=tmp_path)

    # numerically identical rows, serial vs 4 workers
    assert _cells_key(parallel_cells) == _cells_key(serial_cells)

    speedup = serial_secs / parallel_secs if parallel_secs else 0.0
    benchmark.extra_info["serial_secs"] = serial_secs
    benchmark.extra_info["parallel_secs"] = parallel_secs
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpus"] = os.cpu_count()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.8, (
            f"4 jobs gave only {speedup:.2f}x over serial "
            f"({serial_secs:.1f}s -> {parallel_secs:.1f}s)")


def test_cached_rerun_mostly_hits(tmp_path, benchmark):
    first_cells, _, first = _run(jobs=1, tmp_path=tmp_path, cache=True)
    second_cells, second_secs, second = _run(jobs=1, tmp_path=tmp_path,
                                             cache=True)

    counters = second.counters()
    benchmark.extra_info["counters"] = counters
    benchmark.extra_info["cached_secs"] = second_secs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert counters["hit_rate"] >= 0.90
    assert counters["executed"] == 0
    assert _cells_key(second_cells) == _cells_key(first_cells)
