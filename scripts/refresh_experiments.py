#!/usr/bin/env python
"""Refresh the measured tables embedded in EXPERIMENTS.md from results/.

EXPERIMENTS.md quotes the quick-profile harness outputs verbatim.  After
regenerating ``results/fig1_quick.txt`` etc. with the CLI, run this script
to splice the fresh tables into the document, keeping the narrative
untouched.  Each spliced block is the fenced code block immediately
following a known heading.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = ROOT / "EXPERIMENTS.md"

#: heading marker -> (results file, lines to drop from its head)
SPLICES = {
    "## Figure 1 — read-write vs write-write aborts under 2PL":
        ("fig1_quick.txt", 1),
    "## Figure 7 — aborts relative to 2PL":
        ("fig7_quick.txt", 1),
    "## Figure 8 — application speedup":
        ("fig8_quick.txt", 1),
    "## Table 2 / Appendix A — accesses per MVM version (unbounded, census)":
        ("table2_quick.txt", 1),
}


def splice_block(text: str, heading: str, table: str) -> str:
    """Replace the first fenced block after ``heading`` with ``table``."""
    pattern = re.compile(
        re.escape(heading) + r"(.*?```\n)(.*?)(\n```)", re.DOTALL)
    match = pattern.search(text)
    if not match:
        raise SystemExit(f"heading not found or has no fenced block: "
                         f"{heading!r}")
    return (text[:match.start(2)] + table.rstrip("\n")
            + text[match.end(2):])


def main() -> int:
    text = DOC.read_text()
    for heading, (filename, drop) in SPLICES.items():
        source = ROOT / "results" / filename
        if not source.is_file():
            print(f"skip {filename}: not generated")
            continue
        lines = source.read_text().splitlines()[drop:]
        text = splice_block(text, heading, "\n".join(lines))
        print(f"spliced {filename}")
    DOC.write_text(text)
    print("EXPERIMENTS.md refreshed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
