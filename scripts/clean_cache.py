#!/usr/bin/env python
"""Maintain the experiment result cache (`results/.cache`).

Usage::

    PYTHONPATH=src python scripts/clean_cache.py            # print stats
    PYTHONPATH=src python scripts/clean_cache.py --clear    # delete all
    PYTHONPATH=src python scripts/clean_cache.py --prune    # delete stale

``--prune`` removes only entries whose code fingerprint no longer
matches the working tree — i.e. results no current invocation could ever
be served (the executor keys its cache on a hash of every ``repro/*.py``
source file, so any edit orphans old entries).  Equivalent CLI:
``sitm-harness cache --stats/--clear``.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    """Entry point: stats by default, ``--clear``/``--prune`` to delete."""
    from repro.harness.executor import ResultCache, code_fingerprint

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default results/.cache, "
                             "or $SITM_CACHE_DIR)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    group.add_argument("--prune", action="store_true",
                       help="delete only entries from old code versions")
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.clear:
        print(f"removed {cache.clear()} entries from {cache.root}")
        return 0
    if args.prune:
        removed = 0
        current = code_fingerprint()
        for path in sorted(cache.root.glob("*.json")) \
                if cache.root.is_dir() else []:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = {}
            if payload.get("fingerprint") != current:
                path.unlink()
                removed += 1
        print(f"pruned {removed} stale entries from {cache.root}")
        return 0
    for key, value in cache.stats().items():
        print(f"{key:14s} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
