#!/usr/bin/env python
"""Checkpointing on the multiversioned memory (section 3.3).

The MVM's indirection layer gives checkpoints for free: a checkpoint is a
pinned snapshot timestamp — creating one copies nothing, reading through
one is an ordinary snapshot read, and rolling back truncates version
history (the old versions *are* the recovery data).

This script runs a "risky optimisation pass" over a transactional
red-black tree: checkpoint, mutate concurrently, then either keep the
result or roll the whole memory image back — the speculation/resiliency
use cases the paper sketches.

Run:  python examples/checkpoint_rollback.py
"""

from repro import (
    Engine,
    Machine,
    MVMConfig,
    SimConfig,
    SplitRandom,
    TransactionSpec,
    VersionCapPolicy,
)
from repro.mvm.checkpoint import CheckpointManager
from repro.structures import TxRedBlackTree


def mutate_concurrently(machine, tree, keys_by_thread, seed):
    programs = []
    for keys in keys_by_thread:
        programs.append([TransactionSpec(lambda k=k: tree.insert(k), "ins")
                         for k in keys])
    from repro.tm import SnapshotIsolationTM

    tm = SnapshotIsolationTM(machine, SplitRandom(seed))
    return Engine(tm, programs).run()


def main():
    # a pinned checkpoint holds history: run with unbounded versions (the
    # paper's fallback for deep history is page-level copy-on-write)
    machine = Machine(SimConfig(mvm=MVMConfig(
        cap_policy=VersionCapPolicy.UNBOUNDED)))
    manager = CheckpointManager(machine)
    tree = TxRedBlackTree(machine, skew_safe=True)
    tree.populate(range(0, 50))
    print(f"initial tree:       {len(tree.keys_inorder())} keys, "
          f"invariants ok = {tree.check_invariants()}")

    checkpoint = manager.create()
    print(f"checkpoint taken:   timestamp {checkpoint.timestamp} "
          f"(zero bytes copied)")

    stats = mutate_concurrently(
        machine, tree,
        [range(100 + t * 25, 100 + (t + 1) * 25) for t in range(4)],
        seed=7)
    print(f"speculative phase:  {stats.total_commits} commits, "
          f"{stats.total_aborts} aborts -> "
          f"{len(tree.keys_inorder())} keys")

    # read *through* the checkpoint while the new state exists
    sample = tree.root_ptr
    print(f"checkpoint view of the root pointer: "
          f"{manager.read(checkpoint, sample):#x} "
          f"(current: {machine.plain_load(sample):#x})")

    # the speculation "fails": roll everything back
    dropped = manager.rollback(checkpoint)
    print(f"rollback:           discarded {dropped} versions")
    print(f"restored tree:      {len(tree.keys_inorder())} keys, "
          f"invariants ok = {tree.check_invariants()}")
    assert tree.keys_inorder() == list(range(0, 50))

    manager.release(checkpoint)
    print("checkpoint released; memory continues normally")

    # prove the machine still works after rollback
    stats = mutate_concurrently(machine, tree, [range(60, 70)], seed=9)
    assert 65 in tree.keys_inorder()
    print(f"post-rollback work: {stats.total_commits} commits, "
          f"tree healthy = {tree.check_invariants()}")


if __name__ == "__main__":
    main()
