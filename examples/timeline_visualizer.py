#!/usr/bin/env python
"""Watch the abort-rate difference: ASCII timelines per TM system.

Runs the same contended program — one long scanning reader per pair of
update threads — under 2PL and SI-TM and draws per-thread Gantt charts:
``#`` spans are committed transactions, ``x`` spans aborted attempts.
Under 2PL the scanner rows fill with ``x`` (every concurrent update kills
the scan); under SI-TM the same rows are solid ``#``.

Run:  python examples/timeline_visualizer.py
"""

from repro import (
    Compute,
    Engine,
    Machine,
    Read,
    SplitRandom,
    TransactionSpec,
    Write,
)
from repro.sim.timeline import TimelineRecorder
from repro.tm import SYSTEMS

CELLS = 64
WORDS_PER_LINE = 8


def build_programs(machine, rng):
    base = machine.mvmalloc(CELLS * WORDS_PER_LINE)
    for i in range(CELLS):
        machine.plain_store(base + i * WORDS_PER_LINE, 1)

    def scan():
        total = 0
        for i in range(CELLS):
            value = yield Read(base + i * WORDS_PER_LINE)
            total += value
        return total

    def update(a, b):
        def body():
            va = yield Read(base + a * WORDS_PER_LINE)
            yield Compute(3)
            yield Write(base + a * WORDS_PER_LINE, va + 1)
            vb = yield Read(base + b * WORDS_PER_LINE)
            yield Write(base + b * WORDS_PER_LINE, vb + 1)
        return body

    programs = [[TransactionSpec(scan, "scan") for _ in range(6)]]
    for tid in range(1, 4):
        thread_rng = rng.split(tid)
        specs = []
        for _ in range(25):
            a, b = thread_rng.distinct(2, 0, CELLS)
            specs.append(TransactionSpec(update(a, b), "update"))
        programs.append(specs)
    return programs


def main():
    for name in ("2PL", "SI-TM"):
        rng = SplitRandom(11)
        machine = Machine()
        programs = build_programs(machine, rng)
        timeline = TimelineRecorder()
        tm = SYSTEMS[name](machine, rng.split("tm"))
        engine = Engine(tm, programs, tracer=timeline)
        timeline.attach(engine)
        stats = engine.run()
        print(f"=== {name}: {stats.total_commits} commits, "
              f"{stats.total_aborts} aborts, "
              f"makespan {stats.makespan_cycles} cycles ===")
        print(timeline.render(width=96))
        print()
    print("T0 is the scanner. Under 2PL its row is mostly 'x' — every "
          "concurrent update aborts the scan, and the whole run takes "
          "far longer.  Under SI-TM the scans are invisible readers: "
          "solid '#' and a short makespan.")


if __name__ == "__main__":
    main()
