#!/usr/bin/env python
"""Unbounded transactions (section 4.3).

Conventional HTMs use the L1 cache as the version buffer: Intel's Haswell
"aborts every transaction that accesses more than 16 KByte of data", and
associativity conflicts can kill transactions after a handful of writes.
SI-TM spills versions to multiversioned memory instead, so transaction
footprint is bounded only by memory.

This script runs a bulk-update transaction with a growing write set under

* a bounded 2PL HTM (version buffer limited to 64 lines), and
* SI-TM (unbounded),

and prints where the bounded system stops committing.

Run:  python examples/unbounded_transactions.py
"""

from repro import (
    Engine,
    Machine,
    SimConfig,
    SplitRandom,
    TMConfig,
    TransactionSpec,
    Write,
)
from repro.common.errors import SimulationError
from repro.tm import SnapshotIsolationTM, TwoPhaseLockingTM

BUFFER_LINES = 64


def bulk_update(base, lines, words_per_line):
    """One transaction writing one word in each of ``lines`` lines."""

    def body():
        for i in range(lines):
            yield Write(base + i * words_per_line, i)

    return body


def try_commit(system_cls, config, lines):
    machine = Machine(config)
    words_per_line = machine.address_map.words_per_line
    base = machine.mvmalloc(lines * words_per_line)
    tm = system_cls(machine, SplitRandom(1))
    engine = Engine(
        tm, [[TransactionSpec(bulk_update(base, lines, words_per_line),
                              "bulk")]])
    try:
        stats = engine.run()
    except SimulationError:
        return False  # exceeded the retry bound: hopeless
    return stats.total_commits == 1 and stats.total_aborts == 0


def main():
    bounded = SimConfig(tm=TMConfig(version_buffer_lines=BUFFER_LINES,
                                    max_retries=3))
    unbounded = SimConfig(tm=TMConfig(max_retries=3))
    print(f"{'write set (lines)':>18s}  {'bounded 2PL':>12s}  {'SI-TM':>6s}")
    for lines in (16, 32, 64, 65, 128, 1024, 4096):
        ok_2pl = try_commit(TwoPhaseLockingTM, bounded, lines)
        ok_si = try_commit(SnapshotIsolationTM, unbounded, lines)
        print(f"{lines:18d}  {'commit' if ok_2pl else 'ABORT':>12s}  "
              f"{'commit' if ok_si else 'ABORT':>6s}")
    print(f"\nThe bounded HTM dies the moment the write set exceeds its "
          f"{BUFFER_LINES}-line version buffer; SI-TM writes versions to "
          f"multiversioned memory and never hits a capacity wall "
          f"(section 4.3).")


if __name__ == "__main__":
    main()
