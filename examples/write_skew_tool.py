#!/usr/bin/env python
"""The section 5 workflow: detect write skew, auto-fix it, verify.

Reproduces the paper's two anomalies end to end:

* **Listing 1** — a bank's ``withdraw`` checks ``checking + saving``
  but debits only one account; two concurrent withdraws under SI can
  overdraw the customer.
* **Listing 2** — the linked list's ``remove``; concurrent removes of
  adjacent elements corrupt the list.

For each, the script runs the program under SI-TM across many schedules
with tracing, builds the Cahill-style dependency graph, prints the
witnesses (with source attribution), applies automatic **read promotion**,
and shows that the fixed program is clean and consistent.

Run:  python examples/write_skew_tool.py
"""

from repro import Machine, Read, Write, Compute, TransactionSpec
from repro.skew import Scenario, WriteSkewTool
from repro.structures import TxLinkedList


def withdraw_scenario(rng):
    """Listing 1: the write-skew-prone bank withdraw."""
    machine = Machine()
    checking = machine.mvmalloc(1)
    saving = machine.mvmalloc(1)
    machine.plain_store(checking, 60)
    machine.plain_store(saving, 60)

    def withdraw(from_checking):
        def body():
            checking_balance = yield Read(
                checking, site="withdraw.py:2 read checking")
            saving_balance = yield Read(
                saving, site="withdraw.py:2 read saving")
            yield Compute(20)
            if checking_balance + saving_balance > 100:
                if from_checking:
                    yield Write(checking, checking_balance - 100,
                                site="withdraw.py:4 debit checking")
                else:
                    yield Write(saving, saving_balance - 100,
                                site="withdraw.py:6 debit saving")
        return body

    programs = [[TransactionSpec(withdraw(True), "withdraw")],
                [TransactionSpec(withdraw(False), "withdraw")]]

    def invariant_holds():
        return (machine.plain_load(checking)
                + machine.plain_load(saving)) >= 0

    return Scenario(machine, programs, invariant_holds)


def list_scenario(rng):
    """Listing 2: adjacent removes on the unsafe linked list."""
    machine = Machine()
    lst = TxLinkedList(machine)  # skew_safe=False: the library bug
    lst.populate([1, 2, 3, 4, 5, 6])
    programs = [
        [TransactionSpec(lambda: lst.remove(2), "list.remove")],
        [TransactionSpec(lambda: lst.remove(3), "list.remove")],
        [TransactionSpec(lambda: lst.remove(4), "list.remove")],
        [TransactionSpec(lambda: lst.remove(5), "list.remove")],
    ]

    def consistent():
        return lst.to_list() == [1, 6]

    return Scenario(machine, programs, consistent)


def analyse(name, scenario_factory):
    print(f"=== {name} ===")
    tool = WriteSkewTool(scenario_factory, schedules=12)
    result = tool.analyse()
    print(f"schedules run:            {result.schedules_run}")
    print(f"write-skew witnesses:     {len(result.witnesses)}")
    print(f"inconsistent schedules:   {result.inconsistent_schedules}")
    if result.witnesses:
        witness = result.witnesses[0]
        print(f"example witness:          transactions {witness.labels}")
        for site in sorted(witness.read_sites):
            print(f"  anomalous read at:      {site}")
    promoted = tool.fix(result)
    print(f"reads promoted:           {len(promoted)}")
    verified = tool.verify_fix(promoted)
    print(f"after fix — witnesses:    {len(verified.witnesses)}, "
          f"inconsistent schedules: {verified.inconsistent_schedules}")
    print()


def main():
    analyse("Listing 1: bank withdraw", withdraw_scenario)
    analyse("Listing 2: linked-list remove", list_scenario)
    print("Read promotion inserted the anomalous reads into the write set "
          "for validation (creating no versions), forcing a write-write "
          "conflict in exactly the anomalous schedules — the paper's fix.")


if __name__ == "__main__":
    main()
