#!/usr/bin/env python
"""A miniature of the paper's evaluation: abort rates and throughput for
the three RSTM microbenchmarks (Array, List, Red-Black Tree) under 2PL,
SONTM and SI-TM — Figure 7/8 in one screen.

The Array benchmark is the paper's showcase: long full-array read
transactions make 2PL livelock while SI commits every one of them.

Run:  python examples/microbenchmark_tour.py          (~1 minute)
      python examples/microbenchmark_tour.py --threads 16
"""

import argparse

from repro.harness.runner import run_seeds
from repro.harness.report import format_table

SYSTEMS = ("2PL", "SONTM", "SI-TM")
BENCHMARKS = ("array", "list", "rbtree")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--profile", default="test",
                        choices=("test", "quick", "full"))
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    rows = []
    for benchmark in BENCHMARKS:
        baseline = None
        for system in SYSTEMS:
            agg = run_seeds(benchmark, system, args.threads,
                            profile=args.profile, seeds=args.seeds)
            if system == "2PL":
                baseline = agg.aborts or 1.0
            rows.append([
                benchmark, system, f"{agg.aborts:.0f}",
                f"{agg.aborts / baseline:.3f}",
                f"{agg.throughput:.1f}",
                "yes" if agg.all_verified else "NO",
            ])
    print(format_table(
        ["benchmark", "system", "aborts", "vs 2PL",
         "commits/Mcycle", "consistent"],
        rows,
        title=f"Microbenchmarks at {args.threads} threads "
              f"({args.profile} profile, {args.seeds} seeds)"))
    print("\nSI-TM's abort column collapses on Array and List (read-write "
          "conflicts vanish under snapshots); RBTree narrows because "
          "rebalancing writes still collide — the paper's Figure 7 shape.")


if __name__ == "__main__":
    main()
