#!/usr/bin/env python
"""The full write-skew tool pipeline, including the offline and static
paths (section 5.1 and the Dias et al. comparison).

Three ways to find the same linked-list anomaly:

1. **dynamic online** — run schedules under SI-TM with tracing and
   analyse the dependency graph in process (the paper's tool);
2. **dynamic offline** — dump the trace to JSONL during execution and
   post-process it separately (how the paper's PIN tool actually works);
3. **static footprints** — extract per-operation read/write footprints
   from ONE state and check pairs for the skew precondition, no schedule
   exploration at all.

Run:  python examples/skew_analysis_pipeline.py
"""

import io

from repro import Machine, TransactionSpec, SplitRandom
from repro.sim.engine import Engine
from repro.skew import (
    FootprintAnalyzer,
    TraceRecorder,
    find_write_skews,
)
from repro.structures import TxLinkedList
from repro.tm import SnapshotIsolationTM


def build(machine):
    lst = TxLinkedList(machine)  # the unsafe library version
    lst.populate([1, 2, 3, 4, 5, 6])
    return lst


def dynamic_online():
    machine = Machine()
    lst = build(machine)
    recorder = TraceRecorder()
    programs = [[TransactionSpec(lambda: lst.remove(2), "rm2")],
                [TransactionSpec(lambda: lst.remove(3), "rm3")]]
    tm = SnapshotIsolationTM(machine, SplitRandom(4))
    Engine(tm, programs, tracer=recorder).run()
    report = find_write_skews(recorder)
    return recorder, report


def main():
    print("=== 1. dynamic online analysis ===")
    recorder, report = dynamic_online()
    print(f"trace events: {len(recorder.events)}, "
          f"witnesses: {len(report.witnesses)}")
    for witness in report.witnesses:
        print(f"  cycle {witness.labels} via reads at "
              f"{sorted(witness.read_sites)}")

    print("\n=== 2. dynamic offline (JSONL round trip) ===")
    buffer = io.StringIO()
    recorder.dump_jsonl(buffer)
    print(f"dumped {buffer.tell()} bytes of JSONL")
    loaded = TraceRecorder.load_jsonl(buffer.getvalue().splitlines())
    offline = find_write_skews(loaded)
    print(f"offline analysis found {len(offline.witnesses)} witnesses "
          f"(same as online: {len(offline.witnesses) == len(report.witnesses)})")

    print("\n=== 3. static footprint analysis (one state, no schedules) ===")
    machine = Machine()
    lst = build(machine)
    analyzer = FootprintAnalyzer(machine)
    for key in (2, 3, 4, 5):
        analyzer.add_operation(f"remove({key})",
                               lambda k=key: lst.remove(k))
    static = analyzer.analyse()
    print(f"operation pairs flagged: {len(static.candidates)}")
    for candidate in static.candidates:
        print(f"  {candidate.ops[0]} x {candidate.ops[1]} -> promote "
              f"{sorted(candidate.read_sites)}")
    print(f"\npromotion set from static analysis: "
          f"{sorted(static.promotion_sites())}")
    print("(adjacent removes are flagged; distant removes are not — the "
          "skew needs crossing read/write sets)")


if __name__ == "__main__":
    main()
