#!/usr/bin/env python
"""Quickstart: run one transactional program under every TM system.

A shared bank of accounts receives concurrent transfers while auditor
transactions scan every balance.  The script prints, per system, the
commit/abort counts and the simulated makespan — a miniature of the
paper's headline: under snapshot isolation the read-only audits never
abort, so SI-TM's abort count collapses to the rare write-write transfer
collisions.

Run:  python examples/quickstart.py
"""

from repro import (
    Compute,
    Engine,
    Machine,
    Read,
    SplitRandom,
    SYSTEMS,
    TransactionSpec,
    Write,
)

ACCOUNTS = 16
INITIAL = 100
THREADS = 8
TRANSFERS_PER_THREAD = 30
WORDS_PER_LINE = 8  # keep one account per cache line


def make_transfer(accounts, src, dst, amount):
    """Move money between two accounts (read-modify-write both)."""

    def body():
        src_balance = yield Read(accounts + src * WORDS_PER_LINE)
        yield Compute(3)
        if src_balance >= amount:
            yield Write(accounts + src * WORDS_PER_LINE,
                        src_balance - amount)
            dst_balance = yield Read(accounts + dst * WORDS_PER_LINE)
            yield Write(accounts + dst * WORDS_PER_LINE,
                        dst_balance + amount)

    return body


def make_audit(accounts, result_slot):
    """Scan every balance; record the observed total in a private slot.

    The slot write is transactional, so only *committed* audits leave a
    record: eager systems may observe torn totals mid-flight, but those
    attempts abort, and their record rolls back with them.
    """

    def body():
        total = 0
        for index in range(ACCOUNTS):
            value = yield Read(accounts + index * WORDS_PER_LINE)
            total += value
        yield Write(result_slot, total)

    return body


def run(system_name):
    machine = Machine()
    accounts = machine.mvmalloc(ACCOUNTS * WORDS_PER_LINE)
    for index in range(ACCOUNTS):
        machine.plain_store(accounts + index * WORDS_PER_LINE, INITIAL)

    rng = SplitRandom(2024)
    audit_slots = []
    programs = []
    for tid in range(THREADS):
        thread_rng = rng.split(tid)
        specs = []
        for i in range(TRANSFERS_PER_THREAD):
            if i % 5 == 0:
                slot = machine.mvmalloc(1)
                audit_slots.append(slot)
                specs.append(TransactionSpec(
                    make_audit(accounts, slot), "audit"))
            else:
                src, dst = thread_rng.distinct(2, 0, ACCOUNTS)
                specs.append(TransactionSpec(
                    make_transfer(accounts, src, dst,
                                  thread_rng.randrange(1, 40)),
                    "transfer"))
        programs.append(specs)

    tm = SYSTEMS[system_name](machine, rng.split("tm"))
    stats = Engine(tm, programs).run()

    total = sum(machine.plain_load(accounts + i * WORDS_PER_LINE)
                for i in range(ACCOUNTS))
    assert total == ACCOUNTS * INITIAL, "money was created or destroyed!"
    for slot in audit_slots:
        observed = machine.plain_load(slot)
        assert observed == ACCOUNTS * INITIAL, \
            f"a committed audit saw an inconsistent total {observed}!"
    return stats


def main():
    print(f"{'system':8s} {'commits':>8s} {'aborts':>8s} "
          f"{'audit aborts':>12s} {'makespan':>10s}")
    for name in SYSTEMS:
        stats = run(name)
        audit_aborts = stats.per_label.get("audit", {}).get("aborts", 0)
        print(f"{name:8s} {stats.total_commits:8d} {stats.total_aborts:8d} "
              f"{audit_aborts:12d} {stats.makespan_cycles:10d}")
    print("\nEvery system conserved the total balance.  Under snapshot "
          "isolation the read-only audits never abort (they read a "
          "consistent snapshot instead of fighting the transfers), which "
          "is why SI-TM finishes in a fraction of 2PL's makespan.")


if __name__ == "__main__":
    main()
