"""The write-skew detection and prevention tool (section 5.1).

A best-effort *dynamic* analyser: it executes a transactional program
under SI-TM across many seeds (schedules), records traces, builds the
dependency graph, and reports write-skew witnesses with source
attribution.  Like the paper's PIN-based tool it is not sound in the
"finds every skew" sense — quality grows with schedule coverage — but it
found every library anomaly within seconds in our runs, matching the
paper's experience ("the tool detected anomalies within minutes").

``fix()`` applies the paper's automatic remedy: **read promotion** for
every transactional read participating in a witness cycle.  Promoted
reads join commit validation (triggering an abort in the skew schedule)
but create no data version.  The returned site set plugs directly into
:class:`~repro.sim.engine.Engine` via ``promote_sites``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set

from repro.common.errors import SkewToolError
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.skew.graph import SkewReport, find_write_skews
from repro.skew.trace import TraceRecorder
from repro.tm.sitm import SnapshotIsolationTM

#: builds one scenario: returns (machine, per-thread program lists)
ScenarioFactory = Callable[[SplitRandom], "Scenario"]


@dataclass
class Scenario:
    """One analysable configuration: a machine plus thread programs."""

    machine: Machine
    programs: Sequence[Sequence[TransactionSpec]]
    #: optional consistency oracle run after the schedule (True = healthy)
    check: Optional[Callable[[], bool]] = None


@dataclass
class ToolResult:
    """Aggregate result of a multi-schedule analysis."""

    schedules_run: int = 0
    reports: List[SkewReport] = field(default_factory=list)
    #: schedules whose post-run consistency oracle failed
    inconsistent_schedules: int = 0

    @property
    def witnesses(self) -> list:
        """All witnesses across schedules."""
        return [w for report in self.reports for w in report.witnesses]

    @property
    def clean(self) -> bool:
        """No witness in any schedule."""
        return not self.witnesses

    def read_sites(self) -> Set[str]:
        """Union of anomalous read sites (the promotion set)."""
        sites: Set[str] = set()
        for report in self.reports:
            sites |= report.all_read_sites()
        return sites

    def labels(self) -> Set[str]:
        """Transaction labels implicated in any witness."""
        labels: Set[str] = set()
        for report in self.reports:
            labels |= report.all_labels()
        return labels


class WriteSkewTool:
    """Multi-schedule dynamic write-skew analyser with automatic fixing."""

    def __init__(self, scenario_factory: ScenarioFactory,
                 schedules: int = 10, seed: int = 0,
                 promote_sites: Optional[Set[str]] = None):
        if schedules < 1:
            raise SkewToolError("need at least one schedule")
        self._factory = scenario_factory
        self._schedules = schedules
        self._root = SplitRandom(seed)
        self._promote_sites = set(promote_sites or ())

    def analyse(self) -> ToolResult:
        """Run all schedules under SI-TM with tracing and analyse traces."""
        result = ToolResult()
        for i in range(self._schedules):
            rng = self._root.split("schedule", i)
            scenario = self._factory(rng)
            recorder = TraceRecorder()
            tm = SnapshotIsolationTM(scenario.machine, rng.split("tm"))
            engine = Engine(tm, scenario.programs, tracer=recorder,
                            promote_sites=self._promote_sites)
            engine.run()
            result.schedules_run += 1
            result.reports.append(find_write_skews(recorder))
            if scenario.check is not None and not scenario.check():
                result.inconsistent_schedules += 1
        return result

    def fix(self, result: Optional[ToolResult] = None) -> Set[str]:
        """Compute the read-promotion set that removes the found skews.

        Returns the union of the current promotion set and every read site
        participating in a witness; pass it to the engine (or to a new
        :class:`WriteSkewTool`) to re-run with the fix applied.
        """
        if result is None:
            result = self.analyse()
        return self._promote_sites | result.read_sites()

    def verify_fix(self, promote_sites: Set[str]) -> ToolResult:
        """Re-analyse with promotions applied (fixed programs stay clean)."""
        fixed = WriteSkewTool(self._factory, self._schedules,
                              seed=0, promote_sites=promote_sites)
        fixed._root = self._root.split("verify")
        return fixed.analyse()
