"""Write-skew dependency-graph analysis (section 5.1, after Cahill [11]).

From a recorded trace we build the *write-skew dependency graph*: vertices
are committed transactions; a directed edge ``R -> W`` exists when ``R``
transactionally read an address that concurrent transaction ``W``
transactionally wrote (a read-write antidependency between overlapping
transactions).  A **cycle** in this graph is the necessary condition for a
write skew; reporting cycles is safe but may include false positives,
exactly as the paper says.

Cycle enumeration uses :mod:`networkx` simple-cycle search on the (small)
committed-transaction graph; for each cycle we collect the *reads that
participate* — the paper's fix (read promotion) applies to precisely
those reads, attributed by their source site.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import networkx as nx

from repro.skew.trace import TracedTransaction, TraceRecorder


@dataclass(frozen=True)
class SkewWitness:
    """One dependency cycle: a candidate write-skew anomaly."""

    #: transaction uids around the cycle, in order
    cycle: Tuple[int, ...]
    #: labels of the transactions involved (e.g. "list.remove")
    labels: Tuple[str, ...]
    #: source sites of the reads participating in the cycle's rw-edges
    read_sites: FrozenSet[str]
    #: addresses on which the cycle's rw-edges were formed
    addrs: FrozenSet[int]


@dataclass
class SkewReport:
    """Everything the tool found in one analysis pass."""

    witnesses: List[SkewWitness] = field(default_factory=list)
    committed: int = 0
    edges: int = 0

    @property
    def clean(self) -> bool:
        """True when no write-skew candidate was found."""
        return not self.witnesses

    def all_read_sites(self) -> Set[str]:
        """Union of read sites across all witnesses (promotion targets)."""
        sites: Set[str] = set()
        for witness in self.witnesses:
            sites |= witness.read_sites
        return sites

    def all_labels(self) -> Set[str]:
        """Transaction labels implicated in any witness."""
        labels: Set[str] = set()
        for witness in self.witnesses:
            labels |= set(witness.labels)
        return labels


def rw_antidependency_edges(transactions: Sequence[TracedTransaction]):
    """Yield (reader, writer, addr, read_site) antidependency edges.

    An edge reader ``rw->`` writer means the reader read an address that a
    *concurrent* committed transaction wrote.  Shared by the write-skew
    tool below and by the SSI dangerous-structure check in
    :mod:`repro.oracle.checker`.  Indexes writers by address first so the
    pass is near-linear in trace size rather than quadratic in
    transactions.
    """
    writers_of: Dict[int, List[TracedTransaction]] = defaultdict(list)
    for txn in transactions:
        for addr in txn.write_addrs:
            writers_of[addr].append(txn)
    for reader in transactions:
        for addr, site in reader.reads:
            for writer in writers_of.get(addr, ()):
                if writer.uid == reader.uid:
                    continue
                if addr in reader.write_addrs:
                    # write-write conflicts are detected by SI itself;
                    # both committing means they were not concurrent
                    continue
                if reader.concurrent_with(writer):
                    yield reader, writer, addr, site


def build_graph(trace: TraceRecorder) -> "nx.MultiDiGraph":
    """Build the write-skew dependency graph from a trace."""
    graph = nx.MultiDiGraph()
    committed = trace.committed_transactions()
    for txn in committed:
        graph.add_node(txn.uid, label=txn.label)
    for reader, writer, addr, site in rw_antidependency_edges(committed):
        graph.add_edge(reader.uid, writer.uid, addr=addr, site=site)
    return graph


def find_write_skews(trace: TraceRecorder,
                     max_cycle_length: int = 6) -> SkewReport:
    """Analyse a trace and report dependency cycles (write-skew witnesses).

    ``max_cycle_length`` bounds the cycle search: real write skews are
    short (the canonical anomaly is a 2-cycle); very long cycles are
    overwhelmingly false positives and expensive to enumerate.
    """
    graph = build_graph(trace)
    report = SkewReport(committed=graph.number_of_nodes(),
                        edges=graph.number_of_edges())
    seen: Set[FrozenSet[int]] = set()
    for cycle in nx.simple_cycles(nx.DiGraph(graph)):
        if len(cycle) > max_cycle_length:
            continue
        key = frozenset(cycle)
        if key in seen:
            continue
        seen.add(key)
        sites: Set[str] = set()
        addrs: Set[int] = set()
        ring = list(cycle) + [cycle[0]]
        for src, dst in zip(ring, ring[1:]):
            if graph.has_edge(src, dst):
                for _, data in graph[src][dst].items():
                    sites.add(data["site"])
                    addrs.add(data["addr"])
        labels = tuple(graph.nodes[uid]["label"] for uid in cycle)
        report.witnesses.append(SkewWitness(
            cycle=tuple(cycle), labels=labels,
            read_sites=frozenset(sites), addrs=frozenset(addrs)))
    return report
