"""Serialization-graph testing oracle.

Builds the classic precedence (conflict) graph over the *committed*
transactions of a recorded trace: an edge ``A -> B`` means A must precede
B in any equivalent serial order, induced by

* **ww** — A and B wrote the same address; writes serialise in commit
  order;
* **wr** — B read the version A installed;
* **rw** — A read a version that B overwrote (antidependency).

A history is conflict-serializable iff this graph is acyclic — so the
graph is an *oracle*: run any workload under a TM system with a
:class:`~repro.skew.trace.TraceRecorder` attached and assert acyclicity
for the serializable systems (2PL, SONTM, SSI-TM, LogTM).  For plain
SI-TM, cycles are exactly the write-skew anomalies of section 5 — and by
the classic SI theorem every such cycle must contain two consecutive
``rw`` edges, which :func:`si_anomaly_cycles` checks.

Which version a read observed depends on the system's read semantics:

* ``"latest"`` — eager/CS systems read the newest version committed
  before the *read event*;
* ``"snapshot"`` — SI systems read the newest version committed before
  the transaction's *begin event*.

Reads of a transaction's own writes induce no edges.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.errors import SkewToolError
from repro.skew.trace import TracedTransaction, TraceRecorder

READ_MODES = ("latest", "snapshot")


def _writer_history(trace: TraceRecorder):
    """Per-address committed writers sorted by commit index."""
    history: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for txn in trace.committed_transactions():
        for addr in txn.write_addrs:
            history[addr].append((txn.commit_index, txn.uid))
    for writers in history.values():
        writers.sort()
    return history


def _version_read(writers: List[Tuple[int, int]],
                  before_index: int) -> Tuple[int, Optional[int]]:
    """(position, uid) of the newest writer committed before ``before_index``.

    Position -1 / uid None is the initial (pre-transactional) version.
    """
    position = bisect_left(writers, (before_index, -1)) - 1
    if position < 0:
        return -1, None
    return position, writers[position][1]


def _read_events(trace: TraceRecorder, txn: TracedTransaction):
    """(addr, event_index) for the first read of each address, skipping
    reads that followed the transaction's own write to that address."""
    own_written = set()
    first_reads = {}
    for event in trace.events[txn.begin_index:txn.commit_index or 0]:
        if event.txn_uid != txn.uid:
            continue
        if event.kind.value == "TM_WRITE":
            own_written.add(event.addr)
        elif event.kind.value == "TM_READ":
            if event.addr not in own_written \
                    and event.addr not in first_reads:
                first_reads[event.addr] = event.index
    return first_reads.items()


def precedence_graph(trace: TraceRecorder,
                     read_mode: str = "latest") -> "nx.DiGraph":
    """The conflict graph over committed transactions."""
    if read_mode not in READ_MODES:
        raise SkewToolError(
            f"unknown read mode {read_mode!r}; expected one of {READ_MODES}")
    graph = nx.DiGraph()
    committed = trace.committed_transactions()
    for txn in committed:
        graph.add_node(txn.uid, label=txn.label)
    history = _writer_history(trace)

    # ww: writers of an address serialise in commit order
    for writers in history.values():
        for (_, earlier), (_, later) in zip(writers, writers[1:]):
            graph.add_edge(earlier, later, kind="ww")

    for txn in committed:
        for addr, read_index in _read_events(trace, txn):
            writers = history.get(addr, [])
            if not writers:
                continue
            reference = (read_index if read_mode == "latest"
                         else txn.begin_index)
            position, writer_uid = _version_read(writers, reference)
            if writer_uid is not None and writer_uid != txn.uid:
                graph.add_edge(writer_uid, txn.uid, kind="wr")
            # antidependency to the next version's writer
            next_position = position + 1
            while next_position < len(writers) \
                    and writers[next_position][1] == txn.uid:
                next_position += 1
            if next_position < len(writers):
                graph.add_edge(txn.uid, writers[next_position][1],
                               kind="rw")
    return graph


def is_conflict_serializable(trace: TraceRecorder,
                             read_mode: str = "latest") -> bool:
    """True when the committed history has an acyclic conflict graph."""
    return nx.is_directed_acyclic_graph(precedence_graph(trace, read_mode))


def cycles(trace: TraceRecorder, read_mode: str = "latest",
           limit: int = 20) -> List[List[int]]:
    """Up to ``limit`` simple cycles of the conflict graph."""
    graph = precedence_graph(trace, read_mode)
    found = []
    for cycle in nx.simple_cycles(graph):
        found.append(cycle)
        if len(found) >= limit:
            break
    return found


def si_anomaly_cycles(trace: TraceRecorder) -> List[List[int]]:
    """Cycles of an SI history (snapshot reads) — each must contain two
    consecutive ``rw`` edges, per the classic SI serializability theorem;
    a violation would indicate an oracle or runtime bug."""
    graph = precedence_graph(trace, read_mode="snapshot")
    anomalies = []
    for cycle in nx.simple_cycles(graph):
        ring = list(cycle) + [cycle[0], cycle[1]]
        kinds = [graph[a][b]["kind"] for a, b in zip(ring, ring[1:])]
        if not any(kinds[i] == "rw" and kinds[i + 1] == "rw"
                   for i in range(len(kinds) - 1)):
            raise SkewToolError(
                f"SI cycle without consecutive rw edges: {cycle} {kinds}")
        anomalies.append(cycle)
    return anomalies
