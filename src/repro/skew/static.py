"""Static-style write-skew analysis of structure operations (section 5.1).

The paper cites Dias et al.'s static analysis (separation logic over
transactional programs) as sound but too expensive for large applications,
which motivated their dynamic tool.  This module provides the middle
ground for *library* code: it extracts the read/write footprint of each
transactional operation by driving the operation's generator against the
current committed state (recording accesses instead of applying
transactional semantics), then checks **operation pairs** for the write-
skew precondition:

    A reads something B writes,  B reads something A writes,
    and their write sets are disjoint.

Because footprints are extracted on concrete states, the analysis is
complete only for the states explored (like the dynamic tool, coverage
matters) — but it needs *no schedule exploration at all*: a single state
yields every pairwise skew candidate among the operations, which is how
it finds the Listing 2 list anomaly from one look at the list.

Typical use::

    analyzer = FootprintAnalyzer(machine)
    analyzer.add_operation("remove(2)", lambda: lst.remove(2))
    analyzer.add_operation("remove(3)", lambda: lst.remove(3))
    report = analyzer.analyse()
    report.candidates  # [SkewCandidate(ops=("remove(2)", "remove(3)"), ...)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Generator, List, Set, Tuple

from repro.common.errors import SkewToolError
from repro.sim.machine import Machine
from repro.tm.ops import Abort, Compute, Read, Write


@dataclass(frozen=True)
class Footprint:
    """Read/write address sets of one operation on one state."""

    name: str
    reads: FrozenSet[int]
    writes: FrozenSet[int]
    #: (address, source site) pairs for every read
    read_site_map: Tuple[Tuple[int, str], ...]

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    def sites_of(self, addrs: FrozenSet[int]) -> FrozenSet[str]:
        """Source sites of the reads touching ``addrs``."""
        return frozenset(site for addr, site in self.read_site_map
                         if addr in addrs)


@dataclass(frozen=True)
class SkewCandidate:
    """A pair of operations satisfying the write-skew precondition."""

    ops: Tuple[str, str]
    #: addresses read by each side and written by the other
    crossing_addrs: FrozenSet[int]
    #: read sites involved (promotion targets)
    read_sites: FrozenSet[str]


@dataclass
class StaticReport:
    """All candidates found across the analysed states."""

    footprints: List[Footprint] = field(default_factory=list)
    candidates: List[SkewCandidate] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.candidates

    def promotion_sites(self) -> Set[str]:
        """Union of read sites across candidates (the static fix set)."""
        sites: Set[str] = set()
        for candidate in self.candidates:
            sites |= candidate.read_sites
        return sites


class FootprintAnalyzer:
    """Pairwise write-skew precondition checker over operation footprints."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._operations: List[Tuple[str, Callable[[], Generator]]] = []

    def add_operation(self, name: str,
                      factory: Callable[[], Generator]) -> None:
        """Register one operation (a fresh-generator factory)."""
        self._operations.append((name, factory))

    def _footprint(self, name: str,
                   factory: Callable[[], Generator]) -> Footprint:
        """Drive the operation against committed state, recording accesses.

        Reads return the *current committed value* (so control flow takes
        the same path a real transaction would from this state); writes
        are recorded but NOT applied, keeping the state pristine for the
        other operations.
        """
        reads: Set[int] = set()
        writes: Set[int] = set()
        site_map: Set[Tuple[int, str]] = set()
        shadow: Dict[int, int] = {}
        gen = factory()
        try:
            op = next(gen)
            while True:
                if isinstance(op, Read):
                    reads.add(op.addr)
                    site_map.add((op.addr, op.site))
                    value = shadow.get(op.addr,
                                       self.machine.plain_load(op.addr))
                    op = gen.send(value)
                elif isinstance(op, Write):
                    writes.add(op.addr)
                    shadow[op.addr] = op.value
                    op = gen.send(None)
                elif isinstance(op, (Compute, Abort)):
                    op = gen.send(None)
                else:
                    raise SkewToolError(f"unknown operation {op!r}")
        except StopIteration:
            pass
        return Footprint(name, frozenset(reads), frozenset(writes),
                         tuple(sorted(site_map)))

    def analyse(self) -> StaticReport:
        """Extract all footprints and test every operation pair."""
        if not self._operations:
            raise SkewToolError("no operations registered")
        report = StaticReport()
        footprints = [self._footprint(name, factory)
                      for name, factory in self._operations]
        report.footprints = footprints
        for i, a in enumerate(footprints):
            for b in footprints[i + 1:]:
                candidate = self._check_pair(a, b)
                if candidate is not None:
                    report.candidates.append(candidate)
        return report

    @staticmethod
    def _check_pair(a: Footprint, b: Footprint):
        """The write-skew precondition on a pair of footprints."""
        if a.is_read_only or b.is_read_only:
            return None  # a read-only side cannot complete a skew
        if a.writes & b.writes:
            return None  # overlapping writes: SI detects this itself
        a_reads_b = frozenset(a.reads & b.writes)
        b_reads_a = frozenset(b.reads & a.writes)
        if not a_reads_b or not b_reads_a:
            return None  # no cycle without both antidependencies
        return SkewCandidate(
            ops=(a.name, b.name),
            crossing_addrs=a_reads_b | b_reads_a,
            read_sites=a.sites_of(a_reads_b) | b.sites_of(b_reads_a))
