"""Write-skew detection, analysis and read-promotion (section 5)."""

from repro.skew.graph import (
    SkewReport,
    SkewWitness,
    build_graph,
    find_write_skews,
)
from repro.skew.serialization import (
    cycles,
    is_conflict_serializable,
    precedence_graph,
    si_anomaly_cycles,
)
from repro.skew.static import (
    Footprint,
    FootprintAnalyzer,
    SkewCandidate,
    StaticReport,
)
from repro.skew.tool import Scenario, ToolResult, WriteSkewTool
from repro.skew.trace import (
    EventKind,
    TracedTransaction,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "EventKind",
    "Footprint",
    "FootprintAnalyzer",
    "SkewCandidate",
    "StaticReport",
    "Scenario",
    "SkewReport",
    "SkewWitness",
    "ToolResult",
    "TraceEvent",
    "TraceRecorder",
    "TracedTransaction",
    "WriteSkewTool",
    "build_graph",
    "cycles",
    "find_write_skews",
    "is_conflict_serializable",
    "precedence_graph",
    "si_anomaly_cycles",
]
