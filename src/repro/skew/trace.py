"""Transactional trace capture (section 5.1).

The paper's tool instruments applications with PIN, intercepting
TM BEGIN / TM READ / TM WRITE / TM COMMIT and recording a globally ordered
trace plus the source location of every access.  Here the TM runtime *is*
ours, so the recorder is simply an engine :class:`~repro.sim.engine.Tracer`
— strictly easier, equally faithful (see DESIGN.md).

Like the paper's tool, the heavy lifting is deferred to post-processing
(:mod:`repro.skew.graph`): recording appends one event object per
operation and nothing more, minimising perturbation of the schedule under
test.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Tuple

from repro.common.errors import AbortCause
from repro.sim.engine import Tracer
from repro.tm.api import Txn


class EventKind(enum.Enum):
    """Trace event types, matching the paper's intercepted operations."""

    BEGIN = "TM_BEGIN"
    READ = "TM_READ"
    WRITE = "TM_WRITE"
    COMMIT = "TM_COMMIT"
    ABORT = "TM_ABORT"


@dataclass(frozen=True)
class TraceEvent:
    """One globally ordered transactional event."""

    index: int
    kind: EventKind
    txn_uid: int
    thread_id: int
    label: str
    addr: Optional[int] = None
    site: str = ""


@dataclass
class TracedTransaction:
    """Reassembled per-transaction view of the trace."""

    uid: int
    thread_id: int
    label: str
    begin_index: int
    commit_index: Optional[int] = None
    aborted: bool = False
    #: (addr, site) pairs in program order
    reads: List[Tuple[int, str]] = field(default_factory=list)
    writes: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        """True when the transaction committed."""
        return self.commit_index is not None

    @property
    def read_addrs(self) -> set:
        """Distinct read addresses."""
        return {addr for addr, _ in self.reads}

    @property
    def write_addrs(self) -> set:
        """Distinct written addresses."""
        return {addr for addr, _ in self.writes}

    def concurrent_with(self, other: "TracedTransaction") -> bool:
        """Did the two transactions overlap in the global event order?"""
        if self.commit_index is None or other.commit_index is None:
            return False
        return (self.begin_index < other.commit_index
                and other.begin_index < self.commit_index)


class TraceRecorder(Tracer):
    """Engine tracer that records a globally ordered transactional trace."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._next_uid = 0
        self._open: Dict[int, int] = {}  # thread_id -> txn uid
        self.transactions: Dict[int, TracedTransaction] = {}

    def _emit(self, kind: EventKind, txn: Txn, addr: Optional[int] = None,
              site: str = "") -> TraceEvent:
        uid = self._open[txn.thread_id]
        event = TraceEvent(len(self.events), kind, uid, txn.thread_id,
                           txn.label, addr, site)
        self.events.append(event)
        return event

    def on_begin(self, txn: Txn) -> None:
        uid = self._next_uid
        self._next_uid += 1
        self._open[txn.thread_id] = uid
        self.transactions[uid] = TracedTransaction(
            uid, txn.thread_id, txn.label, begin_index=len(self.events))
        self.events.append(TraceEvent(
            len(self.events), EventKind.BEGIN, uid, txn.thread_id, txn.label))

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        event = self._emit(EventKind.READ, txn, addr, site)
        self.transactions[event.txn_uid].reads.append((addr, site))

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        event = self._emit(EventKind.WRITE, txn, addr, site)
        self.transactions[event.txn_uid].writes.append((addr, site))

    def on_commit(self, txn: Txn) -> None:
        event = self._emit(EventKind.COMMIT, txn)
        self.transactions[event.txn_uid].commit_index = event.index

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        event = self._emit(EventKind.ABORT, txn)
        self.transactions[event.txn_uid].aborted = True

    # ------------------------------------------------------------------

    def committed_transactions(self) -> List[TracedTransaction]:
        """All committed transactions, in begin order."""
        return sorted((t for t in self.transactions.values() if t.committed),
                      key=lambda t: t.begin_index)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # persistence — the paper's tool writes the trace during execution and
    # defers analysis to an offline post-processing pass; these make the
    # same split possible here (one JSON object per line).

    def dump_jsonl(self, stream: IO[str]) -> int:
        """Write the trace as JSON lines; returns the event count."""
        for event in self.events:
            stream.write(json.dumps({
                "index": event.index,
                "kind": event.kind.value,
                "txn": event.txn_uid,
                "thread": event.thread_id,
                "label": event.label,
                "addr": event.addr,
                "site": event.site,
            }) + "\n")
        return len(self.events)

    @classmethod
    def load_jsonl(cls, lines: Iterable[str]) -> "TraceRecorder":
        """Rebuild a recorder (events + per-transaction views) from JSONL."""
        recorder = cls()
        for line in lines:
            if not line.strip():
                continue
            raw = json.loads(line)
            kind = EventKind(raw["kind"])
            event = TraceEvent(raw["index"], kind, raw["txn"], raw["thread"],
                               raw["label"], raw["addr"], raw["site"])
            recorder.events.append(event)
            uid = event.txn_uid
            if kind is EventKind.BEGIN:
                recorder.transactions[uid] = TracedTransaction(
                    uid, event.thread_id, event.label,
                    begin_index=event.index)
                recorder._next_uid = max(recorder._next_uid, uid + 1)
            elif kind is EventKind.READ:
                recorder.transactions[uid].reads.append(
                    (event.addr, event.site))
            elif kind is EventKind.WRITE:
                recorder.transactions[uid].writes.append(
                    (event.addr, event.site))
            elif kind is EventKind.COMMIT:
                recorder.transactions[uid].commit_index = event.index
            elif kind is EventKind.ABORT:
                recorder.transactions[uid].aborted = True
        return recorder
