"""SI-TM: snapshot-isolation transactional memory (ASPLOS 2014 reproduction).

Public API quick tour::

    from repro import Machine, Engine, TransactionSpec, Read, Write, SplitRandom
    from repro.tm import SnapshotIsolationTM

    machine = Machine()
    counter = machine.mvmalloc(1)

    def increment():
        value = yield Read(counter)
        yield Write(counter, value + 1)

    tm = SnapshotIsolationTM(machine, SplitRandom(7))
    specs = [[TransactionSpec(increment, "inc")] for _ in range(4)]
    stats = Engine(tm, specs).run()

Higher layers: :mod:`repro.structures` (transactional data structures),
:mod:`repro.workloads` (STAMP-like kernels + RSTM-like microbenchmarks),
:mod:`repro.skew` (write-skew detection and read promotion), and
:mod:`repro.harness` (the per-figure experiment drivers).
"""

from repro.common import (
    AbortCause,
    MachineConfig,
    MVMConfig,
    SimConfig,
    SplitRandom,
    TMConfig,
    TransactionAborted,
    VersionCapPolicy,
)
from repro.faults import FaultPlan
from repro.sim import Engine, Machine, RetryPolicy, RunStats, TransactionSpec
from repro.tm import (
    SYSTEMS,
    Abort,
    Compute,
    HybridHTM,
    Read,
    SerializableSITM,
    SnapshotIsolationTM,
    SONTM,
    TwoPhaseLockingTM,
    Write,
)

__version__ = "1.0.0"

__all__ = [
    "Abort",
    "AbortCause",
    "Compute",
    "Engine",
    "FaultPlan",
    "HybridHTM",
    "Machine",
    "MachineConfig",
    "MVMConfig",
    "Read",
    "RetryPolicy",
    "RunStats",
    "SONTM",
    "SYSTEMS",
    "SerializableSITM",
    "SimConfig",
    "SnapshotIsolationTM",
    "SplitRandom",
    "TMConfig",
    "TransactionAborted",
    "TransactionSpec",
    "TwoPhaseLockingTM",
    "VersionCapPolicy",
    "Write",
    "__version__",
]
