"""Greedy delta-debugging of failing fuzz schedules.

When the fuzzer finds a violating schedule, :func:`shrink_schedule`
minimises it: repeatedly remove whole transactions, then individual
operations, keeping each removal only if the reduced schedule still
fails the caller's predicate, until a fixpoint (or an evaluation
budget) is reached.  The result is the smallest schedule this greedy
process can reach — typically the two or three transactions that
actually race — which :func:`persist_repro` writes as a self-contained
JSON repro replayable by ``sitm-harness fuzz --replay`` and by the
regression corpus tests.

Empty threads are left in place during op-level shrinking and removed
only through predicate-checked steps: deleting a thread renumbers the
others, which perturbs the engine's deterministic tie-breaking, so the
predicate must confirm the violation survives.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pathlib
from typing import Callable, List, Optional


def _txn_count(schedule: dict) -> int:
    return sum(len(thread) for thread in schedule["threads"])


def shrink_schedule(schedule: dict, failing: Callable[[dict], bool],
                    max_evals: int = 400) -> dict:
    """Minimise ``schedule`` while ``failing(schedule)`` stays true.

    ``failing`` re-runs the reduced candidate (through whatever systems
    and checks the caller cares about) and returns True when the
    violation is still present.  Raises :class:`ValueError` when the
    input schedule does not fail to begin with.
    """
    if not failing(schedule):
        raise ValueError("shrink_schedule: input schedule does not fail")
    evals = 0

    def still_fails(candidate: dict) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return failing(candidate)

    current = copy.deepcopy(schedule)
    changed = True
    while changed and evals < max_evals:
        changed = False
        # whole transactions, last first so indices stay valid
        for t in reversed(range(len(current["threads"]))):
            for j in reversed(range(len(current["threads"][t]))):
                if _txn_count(current) <= 1:
                    break
                candidate = copy.deepcopy(current)
                del candidate["threads"][t][j]
                if still_fails(candidate):
                    current = candidate
                    changed = True
        # now-empty threads (renumbers the rest, so predicate-checked)
        for t in reversed(range(len(current["threads"]))):
            if current["threads"][t] or len(current["threads"]) <= 1:
                continue
            candidate = copy.deepcopy(current)
            del candidate["threads"][t]
            if still_fails(candidate):
                current = candidate
                changed = True
        # individual operations
        for t in reversed(range(len(current["threads"]))):
            for j in reversed(range(len(current["threads"][t]))):
                for k in reversed(range(len(current["threads"][t][j]["ops"]))):
                    if len(current["threads"][t][j]["ops"]) <= 1:
                        break
                    candidate = copy.deepcopy(current)
                    del candidate["threads"][t][j]["ops"][k]
                    if still_fails(candidate):
                        current = candidate
                        changed = True
    return current


def schedule_digest(schedule: dict) -> str:
    """Short content hash identifying a schedule."""
    canonical = json.dumps(schedule, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def persist_repro(out_dir, schedule: dict, systems: List[str], seed: int,
                  violations: List[dict],
                  broken: Optional[str] = None,
                  span_log: Optional[str] = None) -> pathlib.Path:
    """Write a minimal failing schedule as a replayable JSON repro.

    ``span_log`` names a sibling JSONL span file (see
    :func:`repro.oracle.fuzz._persist_span_log`); the pointer is
    embedded so ``fuzz --replay`` can find the telemetry without
    guessing filenames.
    """
    root = pathlib.Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    payload = {
        "schedule": schedule,
        "systems": list(systems),
        "seed": seed,
        "broken": broken,
        "violations": violations,
    }
    if span_log is not None:
        payload["span_log"] = span_log
    path = root / f"repro-{schedule_digest(schedule)}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_repro(path) -> dict:
    """Read a repro written by :func:`persist_repro` (or a bare schedule)."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if "schedule" not in payload:
        # a bare schedule file (e.g. a corpus entry) is accepted as-is
        payload = {"schedule": payload, "systems": [], "seed": 0,
                   "broken": None, "violations": []}
    return payload
