"""Adya-style isolation checking of recorded histories.

:func:`check_history` verifies a :class:`~repro.oracle.history.History`
against the isolation level its system declared
(:class:`repro.tm.api.IsolationLevel`) and returns the violations found
(empty = the history is consistent with the declaration):

* **snapshot** (SI-TM) — every committed read observes its transaction's
  snapshot (the newest version committed at or before ``start_ts``, or
  the transaction's own earlier write), the first committer of two
  overlapping writers wins, no aborted or intermediate values are read
  (Adya's G1a/G1b fall out of exact value replay), and no committed
  cycle violates the SI theorem (every cycle must carry two consecutive
  rw antidependencies — a pure ww/wr cycle would be a G1c violation);
* **conflict-serializable** (2PL, SONTM, LogTM) — committed reads
  observe the newest value committed before the read event, and the
  direct serialization graph (ww/wr/rw edges) is acyclic;
* **serializable-snapshot** (SSI-TM) — all the snapshot guarantees, an
  acyclic serialization graph, and no committed *pivot*: no committed
  transaction with both an inbound and an outbound rw antidependency to
  concurrent committed transactions (Cahill's dangerous structure, which
  SSI must have aborted).

All levels additionally check that every abort cause the run produced is
one the system declared legal (``TMSystem.ABORT_CAUSES``) and that
timestamp metadata is coherent (committed SI writers carry
``start_ts < commit_ts``).

Value replay makes the read checks exact rather than heuristic: the
expected value of every read is reconstructed from the committed writes
and the initial memory image, so lost updates, dirty reads and reads
from aborted transactions all surface as concrete value mismatches.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.errors import SkewToolError
from repro.oracle.history import History
from repro.skew.graph import rw_antidependency_edges
from repro.skew.serialization import precedence_graph, si_anomaly_cycles
from repro.tm.api import IsolationLevel


@dataclass(frozen=True)
class Violation:
    """One isolation-contract violation found in a history."""

    rule: str
    detail: str
    txns: Tuple[int, ...] = ()
    addr: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-safe form for fuzz results and persisted repros."""
        return {"rule": self.rule, "detail": self.detail,
                "txns": list(self.txns), "addr": self.addr}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        """Inverse of :meth:`to_dict`."""
        return cls(data["rule"], data["detail"],
                   tuple(data.get("txns", ())), data.get("addr"))

    def __str__(self) -> str:
        where = f" @{self.addr:#x}" if self.addr is not None else ""
        who = f" txns={list(self.txns)}" if self.txns else ""
        return f"[{self.rule}]{where}{who} {self.detail}"


def check_history(history: History) -> List[Violation]:
    """Check ``history`` against its declared isolation level."""
    violations = _check_abort_causes(history)
    level = IsolationLevel(history.isolation)
    if level is IsolationLevel.CONFLICT_SERIALIZABLE:
        violations += _check_latest_reads(history)
        violations += _check_serializable(history, read_mode="latest")
    elif level is IsolationLevel.SNAPSHOT:
        violations += _check_timestamps(history)
        violations += _check_snapshot_reads(history)
        violations += _check_first_committer_wins(history)
        violations += _check_si_cycles(history)
    elif level is IsolationLevel.SERIALIZABLE_SNAPSHOT:
        violations += _check_timestamps(history)
        violations += _check_snapshot_reads(history)
        violations += _check_first_committer_wins(history)
        violations += _check_serializable(history, read_mode="snapshot")
        violations += _check_no_committed_pivot(history)
    return violations


# ----------------------------------------------------------------------
# shared checks

def _check_abort_causes(history: History) -> List[Violation]:
    """Every abort must carry a cause the system declared legal."""
    allowed = set(history.abort_causes)
    found = []
    for rec in history.aborts():
        if rec.abort_cause not in allowed:
            found.append(Violation(
                "abort-cause", f"{rec.label} (uid {rec.uid}) aborted with "
                f"undeclared cause {rec.abort_cause!r}", (rec.uid,)))
    return found


def _check_timestamps(history: History) -> List[Violation]:
    """Committed SI transactions need coherent start/commit timestamps."""
    found = []
    for rec in history.committed():
        if rec.start_ts is None:
            found.append(Violation(
                "timestamps", f"committed {rec.label} (uid {rec.uid}) "
                "has no start timestamp", (rec.uid,)))
        elif rec.writes and rec.commit_ts is None:
            found.append(Violation(
                "timestamps", f"committed writer {rec.label} (uid "
                f"{rec.uid}) has no commit timestamp", (rec.uid,)))
        elif rec.commit_ts is not None and rec.commit_ts <= rec.start_ts:
            found.append(Violation(
                "timestamps", f"{rec.label} (uid {rec.uid}) commit_ts "
                f"{rec.commit_ts} <= start_ts {rec.start_ts}", (rec.uid,)))
    return found


# ----------------------------------------------------------------------
# snapshot-family checks (timestamp-based version visibility)

def _committed_versions(history: History
                        ) -> Dict[int, List[Tuple[Tuple[int, int],
                                                  int, int]]]:
    """Per-address committed versions, sorted by (epoch, commit_ts).

    Timestamps only compare within an epoch: an overflow reset (section
    4.1) restarts the counter from zero after flushing all history to
    base versions, so every commit of an earlier epoch is visible to
    every snapshot of a later one.  Ordering by the (epoch, commit_ts)
    pair models exactly that.
    """
    versions: Dict[int, List[Tuple[Tuple[int, int],
                                   int, int]]] = defaultdict(list)
    for rec in history.committed():
        if rec.commit_ts is None:
            continue  # flagged by _check_timestamps if it also wrote
        for addr, value in rec.final_writes().items():
            versions[addr].append(((rec.epoch, rec.commit_ts),
                                   value, rec.uid))
    for entries in versions.values():
        entries.sort()
    return versions


def _snapshot_value(history: History,
                    versions: Dict[int, List[Tuple[Tuple[int, int],
                                                   int, int]]],
                    addr: int, epoch: int,
                    start_ts: int) -> Tuple[int, Optional[int]]:
    """(value, writer uid) visible to a snapshot at (epoch, start_ts)."""
    entries = versions.get(addr, [])
    # newest version with (epoch, commit_ts) <= (epoch, start_ts)
    idx = bisect_right(entries,
                       ((epoch, start_ts), float("inf"), -1)) - 1
    if idx < 0:
        return history.initial.get(addr, 0), None
    _, value, uid = entries[idx]
    return value, uid


def _check_snapshot_reads(history: History) -> List[Violation]:
    """Exact value replay of every committed read against its snapshot."""
    versions = _committed_versions(history)
    found = []
    for rec in history.committed():
        if rec.start_ts is None:
            continue  # flagged by _check_timestamps
        own: Dict[int, int] = {}
        for kind, addr, value, index in rec.ops_in_order():
            if kind == "write":
                own[addr] = value
                continue
            if addr in own:
                expected, writer = own[addr], rec.uid
            else:
                expected, writer = _snapshot_value(
                    history, versions, addr, rec.epoch, rec.start_ts)
            if value != expected:
                found.append(Violation(
                    "snapshot-read",
                    f"{rec.label} (uid {rec.uid}, start_ts {rec.start_ts}) "
                    f"read {value} at event {index} but its snapshot holds "
                    f"{expected} (from "
                    f"{'initial state' if writer is None else f'uid {writer}'})",
                    (rec.uid,), addr))
    return found


def _check_first_committer_wins(history: History) -> List[Violation]:
    """Overlapping committed writers must not both modify an address.

    Two committed transactions overlap iff they ran in the same
    timestamp epoch (an overflow reset aborts everything active, so
    nothing spans epochs) and each began before the other committed
    (``a.start_ts < b.commit_ts`` both ways).  Writers of the *same
    value* are tolerated: under the word-granularity commit filter
    (section 4.2) a silent store legitimately commits past a concurrent
    writer, and the outcome is unobservable either way.
    """
    versions = _committed_versions(history)
    records = history.transactions
    found = []
    for addr, entries in sorted(versions.items()):
        for i, (_, value_a, uid_a) in enumerate(entries):
            a = records[uid_a]
            if a.start_ts is None:
                continue  # flagged by _check_timestamps
            for _, value_b, uid_b in entries[i + 1:]:
                b = records[uid_b]
                if b.start_ts is None:
                    continue
                if (a.epoch == b.epoch
                        and a.start_ts < b.commit_ts
                        and b.start_ts < a.commit_ts
                        and value_a != value_b):
                    found.append(Violation(
                        "first-committer-wins",
                        f"overlapping writers both committed: {a.label} "
                        f"(uid {uid_a}, [{a.start_ts},{a.commit_ts}]) wrote "
                        f"{value_a}, {b.label} (uid {uid_b}, "
                        f"[{b.start_ts},{b.commit_ts}]) wrote {value_b}",
                        (uid_a, uid_b), addr))
    return found


def _check_si_cycles(history: History) -> List[Violation]:
    """Committed SI cycles must obey the SI theorem (no G1c).

    Write-skew cycles (two consecutive rw edges) are *legal* under plain
    snapshot isolation; a cycle without them — e.g. one built purely from
    ww/wr dependencies, Adya's G1c — is not.
    """
    try:
        si_anomaly_cycles(history.to_trace())
    except SkewToolError as exc:
        return [Violation("si-cycle", str(exc))]
    return []


# ----------------------------------------------------------------------
# conflict-serializable checks (event-order version visibility)

def _check_latest_reads(history: History) -> List[Violation]:
    """Value replay under latest-committed read semantics.

    Eager/CS systems isolate uncommitted writes (2PL dooms conflicting
    owners, SONTM buffers, LogTM NACKs conflicting requesters), so a
    committed read must observe its transaction's own latest write or the
    newest value whose writer committed before the read event.
    """
    versions: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for rec in history.committed():
        for addr, value in rec.final_writes().items():
            versions[addr].append((rec.commit_index, value))
    for entries in versions.values():
        entries.sort()
    found = []
    for rec in history.committed():
        own: Dict[int, int] = {}
        for kind, addr, value, index in rec.ops_in_order():
            if kind == "write":
                own[addr] = value
                continue
            if addr in own:
                expected = own[addr]
            else:
                entries = versions.get(addr, [])
                idx = bisect_right(entries, (index, float("inf"))) - 1
                expected = (entries[idx][1] if idx >= 0
                            else history.initial.get(addr, 0))
            if value != expected:
                found.append(Violation(
                    "latest-read",
                    f"{rec.label} (uid {rec.uid}) read {value} at event "
                    f"{index} but the latest committed value is {expected}",
                    (rec.uid,), addr))
    return found


def _check_serializable(history: History,
                        read_mode: str) -> List[Violation]:
    """The direct serialization graph of committed txns must be acyclic."""
    graph = precedence_graph(history.to_trace(), read_mode=read_mode)
    if nx.is_directed_acyclic_graph(graph):
        return []
    cycle = [edge[0] for edge in nx.find_cycle(graph)]
    labels = [history.transactions[uid].label for uid in cycle]
    return [Violation(
        "serialization-cycle",
        f"dependency cycle among committed transactions: "
        f"{list(zip(cycle, labels))} ({read_mode} read semantics)",
        tuple(cycle))]


def _check_no_committed_pivot(history: History) -> List[Violation]:
    """SSI: no committed txn may carry both rw-antidependency directions.

    Every dangerous structure contains such a pivot, and a correct SSI
    aborts at least one of its three participants before all commit
    (section 5.2 / Cahill); a fully committed pivot means the detection
    missed an edge.
    """
    committed = history.to_trace().committed_transactions()
    inbound: Dict[int, Tuple[int, int]] = {}
    outbound: Dict[int, Tuple[int, int]] = {}
    for reader, writer, addr, _ in rw_antidependency_edges(committed):
        outbound.setdefault(reader.uid, (writer.uid, addr))
        inbound.setdefault(writer.uid, (reader.uid, addr))
    found = []
    for uid in sorted(inbound.keys() & outbound.keys()):
        rec = history.transactions[uid]
        found.append(Violation(
            "dangerous-structure",
            f"committed pivot {rec.label} (uid {uid}): inbound rw from uid "
            f"{inbound[uid][0]} at {inbound[uid][1]:#x}, outbound rw to uid "
            f"{outbound[uid][0]} at {outbound[uid][1]:#x}", (uid,)))
    return found
