"""Live SI monitoring: stream store sessions through the oracle checker.

The offline oracle (:mod:`repro.oracle.checker`) consumes complete
:class:`~repro.oracle.history.History` objects recorded by the engine.
The live store cannot wait for "the end of the run" — it streams one
**session row** per completed transaction (the same span-schema-
compatible JSONL it persists as corpus artifacts), and
:class:`LiveHistoryMonitor` turns that stream into checkable per-shard
histories:

* each shard is an independent SI domain, so the monitor maintains one
  window of transaction records *per shard*, keyed by the per-shard
  ``start_ts``/``commit_ts`` the row carries;
* string keys are interned to integer addresses and JSON values to
  integer value ids (canonical ``json.dumps`` form; a missing key reads
  as 0, matching the checker's ``initial`` default), so exact value
  replay works over arbitrary JSON payloads;
* every ``check()`` rebuilds each shard's window as a ``History`` and
  runs the standard snapshot checks — abort causes, timestamp
  coherence, snapshot-read value replay, first-committer-wins, and the
  SI-theorem cycle check;
* **watermark folding** bounds memory: once the server reports that no
  future transaction can start below timestamp ``W`` on a shard
  (:meth:`note_watermark`, fed from the shard's oldest pinned
  snapshot), committed writers with ``commit_ts <= W`` are folded into
  the window's initial image in commit order and dropped, and checked
  aborts/read-only commits are dropped immediately — so an always-on
  monitor retains only the overlap frontier, not the whole run.

Violations are deduplicated, kept on :attr:`violations`, and — when a
dump directory is configured — dumped as a replayable JSONL artifact of
the retained rows (``sitm-store check`` replays them offline, and the
golden corpus under ``tests/corpus/store/`` pins the format).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import StoreError
from repro.oracle.checker import Violation, check_history
from repro.oracle.history import (ABORT, BEGIN, COMMIT, READ, WRITE,
                                  History, HistoryEvent, TxnRecord)

__all__ = ["LiveHistoryMonitor", "STORE_ABORT_CAUSES", "check_rows"]

#: abort causes the store declares legal in its histories
STORE_ABORT_CAUSES = ("disconnect", "explicit", "overloaded",
                      "shard-crashed", "timeout", "write-write")


class _ShardWindow:
    """One shard's retained transactions plus its folded initial image."""

    __slots__ = ("txns", "raw", "initial", "watermark")

    def __init__(self) -> None:
        #: retained (record, committed_writer) pairs in arrival order
        self.txns: List[TxnRecord] = []
        #: uid -> raw row (for violation dumps / replay artifacts)
        self.raw: Dict[int, dict] = {}
        self.initial: Dict[int, int] = {}
        self.watermark: Optional[int] = None


class LiveHistoryMonitor:
    """Streams completed store transactions through the SI checker."""

    def __init__(self, shards: int, dump_dir: Optional[object] = None,
                 check_every: int = 64, si_cycle_check: bool = True):
        if shards < 1:
            raise StoreError("monitor needs at least one shard")
        self.shards = shards
        self.check_every = max(1, check_every)
        self.si_cycle_check = si_cycle_check
        self.dump_dir = pathlib.Path(dump_dir) if dump_dir else None
        self._windows = [_ShardWindow() for _ in range(shards)]
        self._addrs: Dict[str, int] = {}
        self._value_ids: Dict[str, int] = {}
        self.rows_seen = 0
        self.checks_run = 0
        self.violations: List[Violation] = []
        self._seen_violations: set = set()
        self.dumps: List[pathlib.Path] = []

    # ------------------------------------------------------------------
    # interning

    def _addr_of(self, key: str) -> int:
        addr = self._addrs.get(key)
        if addr is None:
            addr = self._addrs[key] = len(self._addrs) + 1
        return addr

    def _value_id(self, value: object) -> int:
        """Intern a JSON value; ``None`` is the never-written value 0."""
        if value is None:
            return 0
        canonical = json.dumps(value, sort_keys=True)
        vid = self._value_ids.get(canonical)
        if vid is None:
            vid = self._value_ids[canonical] = len(self._value_ids) + 1
        return vid

    # ------------------------------------------------------------------
    # ingest

    def feed_row(self, row: dict) -> List[Violation]:
        """Ingest one completed transaction's session row.

        Returns the *new* violations surfaced by any check this row
        triggered (empty on quiet rows).  Malformed rows raise
        :class:`~repro.common.errors.StoreError` — the monitor is the
        correctness instrument, so it refuses garbage loudly.
        """
        store = row.get("store")
        if not isinstance(store, dict):
            raise StoreError("session row has no 'store' section")
        outcome = row.get("outcome")
        if outcome not in ("commit", "abort"):
            raise StoreError(f"session row outcome {outcome!r} is not "
                             "a completed transaction")
        uid = row["uid"]
        shard_meta: Dict[str, dict] = store.get("shards", {})
        ops: Sequence = store.get("ops", ())
        per_shard_ops: Dict[int, List[Tuple[str, int, int, int]]] = {}
        for position, op in enumerate(ops):
            kind, shard_id, key, value = op
            if kind == "w" and value is None:
                raise StoreError(
                    f"txn {uid} wrote null to {key!r}; null is the "
                    "never-written sentinel, not a storable value")
            per_shard_ops.setdefault(int(shard_id), []).append(
                (kind, self._addr_of(key), self._value_id(value),
                 position))
        touched = set(per_shard_ops) | {int(s) for s in shard_meta}
        for shard_id in sorted(touched):
            if not 0 <= shard_id < self.shards:
                raise StoreError(f"txn {uid} names unknown shard "
                                 f"{shard_id}")
            meta = shard_meta.get(str(shard_id), {})
            record = TxnRecord(
                uid=uid, thread_id=row["thread"], label=row["label"],
                begin_index=-1,  # assigned when the window is built
                start_ts=meta.get("start_ts"),
                commit_ts=meta.get("commit_ts"),
                abort_cause=row.get("cause") if outcome == "abort"
                else None)
            if outcome == "commit":
                record.commit_index = -1
            # the op position rides in the index slot so the rebuilt
            # history can interleave reads and writes in true op order
            # (read-your-own-write replay depends on it)
            for kind, addr, vid, position in per_shard_ops.get(
                    shard_id, ()):
                if kind == "r":
                    record.reads.append((addr, vid, position))
                else:
                    record.writes.append((addr, vid, position))
            window = self._windows[shard_id]
            window.txns.append(record)
            window.raw[uid] = row
        self.rows_seen += 1
        if self.rows_seen % self.check_every == 0:
            return self.check()
        return []

    def note_watermark(self, shard_id: int, watermark: Optional[int]
                       ) -> None:
        """Record that no future txn can start below ``watermark``.

        The server feeds each shard's oldest pinned snapshot (open
        transactions plus the recovery checkpoint at the publish
        frontier); shard clocks are monotonic, so every later begin
        gets a strictly larger start timestamp.
        """
        if watermark is not None:
            self._windows[shard_id].watermark = watermark

    # ------------------------------------------------------------------
    # checking

    def _build_history(self, window: _ShardWindow) -> History:
        """Materialise a window as a checkable per-shard History.

        Events are synthesized in arrival (completion) order with
        sequential indices; op order within a transaction is preserved,
        which is all the value-replay and cycle checks need.
        """
        history = History(system="sitm-store", isolation="snapshot",
                          abort_causes=STORE_ABORT_CAUSES,
                          initial=dict(window.initial))
        for record in window.txns:
            rebuilt = TxnRecord(
                uid=record.uid, thread_id=record.thread_id,
                label=record.label,
                begin_index=len(history.events),
                start_ts=record.start_ts, commit_ts=record.commit_ts,
                abort_cause=record.abort_cause)
            history.events.append(HistoryEvent(
                len(history.events), BEGIN, record.uid,
                record.thread_id, record.label))
            ordered = sorted(
                [(position, READ, addr, vid)
                 for addr, vid, position in record.reads]
                + [(position, WRITE, addr, vid)
                   for addr, vid, position in record.writes])
            for _, kind, addr, vid in ordered:
                index = len(history.events)
                history.events.append(HistoryEvent(
                    index, kind, record.uid, record.thread_id,
                    record.label, addr, vid))
                if kind is READ:
                    rebuilt.reads.append((addr, vid, index))
                else:
                    rebuilt.writes.append((addr, vid, index))
            closing = COMMIT if record.committed else ABORT
            index = len(history.events)
            history.events.append(HistoryEvent(
                index, closing, record.uid, record.thread_id,
                record.label))
            if record.committed:
                rebuilt.commit_index = index
            history.transactions[record.uid] = rebuilt
        return history

    def check(self) -> List[Violation]:
        """Check every shard window now; fold and return new violations."""
        self.checks_run += 1
        fresh: List[Violation] = []
        for shard_id, window in enumerate(self._windows):
            if not window.txns:
                continue
            history = self._build_history(window)
            found = check_history(history)
            if not self.si_cycle_check:
                found = [v for v in found if v.rule != "si-cycle"]
            new_here: List[Violation] = []
            for violation in found:
                dedup = (violation.rule, violation.txns, violation.addr)
                if dedup in self._seen_violations:
                    continue
                self._seen_violations.add(dedup)
                self.violations.append(violation)
                new_here.append(violation)
            if new_here:
                self._dump(shard_id, window, new_here)
                fresh.extend(new_here)
            self._fold(window)
        return fresh

    def _fold(self, window: _ShardWindow) -> None:
        """Drop checked rows that can no longer constrain the future.

        Aborts and read-only commits drop immediately (their replay is
        done and they constrain nothing later).  A committed writer
        folds into the initial image only when **both** hold:

        * ``commit_ts <= watermark`` — no future transaction's snapshot
          can predate it, and
        * ``commit_ts <=`` every *remaining* record's ``start_ts`` — no
          retained transaction's replay still needs the pre-write value
          (folding collapses versions, so a writer inside a retained
          transaction's snapshot window must stay).

        What survives is exactly the overlap frontier.
        """
        watermark = window.watermark
        writers = [r for r in window.txns
                   if r.committed and r.commit_ts is not None]
        folded: set = set()
        if watermark is not None:
            # stage 1: once the watermark passes a writer's commit_ts,
            # no future transaction can overlap it — every replay and
            # cycle check involving its reads has already run, so the
            # reads are stripped and stop blocking folds (this is what
            # keeps retention bounded under continuous overlap chains)
            for record in writers:
                if record.reads and record.commit_ts <= watermark:
                    record.reads = []
            # stage 2: fold in commit order while no remaining record
            # still replays a snapshot older than the writer's commit
            ordered = sorted(writers, key=lambda r: r.commit_ts)
            for index, record in enumerate(ordered):
                if record.commit_ts > watermark:
                    break
                later = [r.start_ts for r in ordered[index + 1:]
                         if r.reads and r.start_ts is not None]
                if later and record.commit_ts > min(later):
                    break  # a live replay still needs pre-fold values
                for addr, vid, _ in record.writes:
                    window.initial[addr] = vid
                folded.add(id(record))
        window.txns = [r for r in writers if id(r) not in folded]
        keep = {r.uid for r in window.txns}
        window.raw = {uid: row for uid, row in window.raw.items()
                      if uid in keep}

    def retained(self) -> int:
        """Transactions currently retained across all shard windows."""
        return sum(len(w.txns) for w in self._windows)

    # ------------------------------------------------------------------
    # violation artifacts

    def _dump(self, shard_id: int, window: _ShardWindow,
              violations: List[Violation]) -> None:
        if self.dump_dir is None:
            return
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = (self.dump_dir
                / f"store-violation-{len(self.dumps):03d}.jsonl")
        rows = sorted(window.raw.values(),
                      key=lambda r: r.get("end_cycle") or 0)
        with path.open("w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        summary = path.with_suffix(".violations.json")
        summary.write_text(json.dumps(
            {"shard": shard_id,
             "violations": [v.to_dict() for v in violations]},
            indent=2, sort_keys=True) + "\n", encoding="utf-8")
        self.dumps.append(path)


def check_rows(rows: Sequence[dict], shards: int,
               si_cycle_check: bool = True) -> List[Violation]:
    """Replay session rows through a fresh monitor; return violations.

    The offline half of the live monitor: ``sitm-store check`` and the
    corpus replay test feed persisted JSONL rows through exactly the
    ingest/check path the live server uses, so live-path regressions are
    caught without a running server.
    """
    monitor = LiveHistoryMonitor(shards=shards,
                                 si_cycle_check=si_cycle_check)
    for row in rows:
        monitor.feed_row(row)
    monitor.check()
    return monitor.violations
