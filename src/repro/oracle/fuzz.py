"""Deterministic schedule fuzzing across every TM backend.

A **schedule** is a small JSON document describing per-thread transaction
mixes over a handful of MVM cells (one cache line each)::

    {"name": "...", "initial": [5, 0, 7],
     "threads": [[{"label": "t0.0", "ops": [["a", 0, 3], ["r", 1]]}], ...],
     "config": {"mvm": {"max_versions": 2}}}        # optional patch

Operations: ``["r", cell]`` read, ``["w", cell, value]`` blind write,
``["a", cell, delta]`` read-modify-write add, ``["c", n]`` compute.

:func:`generate_schedule` derives randomized schedules from a seed
(pure function of ``(seed, index, shape)``), :func:`run_schedule` runs
one schedule under one backend with a
:class:`~repro.oracle.history.HistoryRecorder` attached, and
:class:`FuzzSpec` packages a single (schedule, system) cell in the same
canonical-JSON shape as :class:`~repro.harness.spec.ExperimentSpec`, so
fuzz batches fan out across the harness executor's process pool and
land in its content-addressed cache.  :func:`fuzz_batch` drives the
whole campaign: every schedule through every backend, each history
checked against its declared isolation level, final states compared
differentially across backends, and the first violation shrunk
(:mod:`repro.oracle.shrink`) and persisted as a minimal JSON repro.

Two cross-cutting invariants make the differential comparison sound even
though final values of blindly written cells depend on commit order:

* **add-only cells** (touched only by commutative ``["a", ...]`` ops)
  must reach ``initial + sum(deltas)`` in *every* backend, because the
  engine retries each transaction until it commits — any deviation is a
  lost update, the signature anomaly of a broken SI implementation;
* consequently all backends must agree exactly on add-only cells, which
  :func:`fuzz_batch` checks pairwise from the cached per-run results.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.rng import SplitRandom, derive_seed
from repro.oracle.checker import Violation, check_history
from repro.oracle.history import History, HistoryRecorder
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.tm.ops import Compute, Read, Write

#: default location for persisted fuzz repros
DEFAULT_FUZZ_DIR = os.path.join("results", "fuzz")
#: environment override for the repro location
FUZZ_DIR_ENV = "SITM_FUZZ_DIR"


# ----------------------------------------------------------------------
# schedule generation

def generate_schedule(seed: int, index: int, threads: int = 3,
                      txns: int = 2, cells: int = 4,
                      ops: int = 3) -> dict:
    """Derive one randomized schedule: a pure function of its arguments.

    Cells are split into *counter* cells (targets of add ops only, so
    their final value is order-independent) and *scratch* cells (blind
    writes and write-skew shapes); reads may target anything.
    """
    rng = SplitRandom(derive_seed(seed, "fuzz", index, threads, txns,
                                  cells, ops))
    counters = max(1, (cells + 1) // 2)
    scratch = list(range(counters, cells))
    initial = [rng.randrange(0, 50) for _ in range(cells)]
    uniq = iter(range(10_000, 10_000 + 100_000, 7))
    patterns = ["increment", "transfer", "scan", "blind", "skew"]
    weights = [3, 2, 2, 1 if scratch else 0, 2 if scratch else 0]
    thread_programs = []
    for t in range(threads):
        program = []
        for j in range(txns):
            kind = rng.weighted_choice(patterns, weights)
            body: List[list] = []
            if kind == "increment":
                for cell in rng.sample(range(counters),
                                       min(rng.randrange(1, 3), counters)):
                    body.append(["a", cell, rng.randrange(1, 10)])
            elif kind == "transfer" and counters >= 2:
                src, dst = rng.sample(range(counters), 2)
                amount = rng.randrange(1, 10)
                body.append(["a", src, -amount])
                body.append(["a", dst, amount])
            elif kind == "scan":
                for cell in rng.sample(range(cells),
                                       min(max(2, ops), cells)):
                    body.append(["r", cell])
                if rng.random() < 0.5:
                    body.append(["c", rng.randrange(1, 4)])
            elif kind == "blind":
                body.append(["w", rng.choice(scratch), next(uniq)])
            elif kind == "skew" and len(scratch) >= 2:
                a, b = rng.sample(scratch, 2)
                body.append(["r", a])
                body.append(["r", b])
                if rng.random() < 0.5:
                    body.append(["c", rng.randrange(1, 3)])
                body.append(["w", rng.choice([a, b]), next(uniq)])
            if not body:  # degenerate shape fallback: a counter bump
                body.append(["a", rng.randrange(counters),
                             rng.randrange(1, 10)])
            program.append({"label": f"t{t}.{j}", "ops": body[:max(1, ops)]})
        thread_programs.append(program)
    return {"name": f"fuzz-s{seed}-i{index}", "initial": initial,
            "threads": thread_programs}


def addonly_cells(schedule: dict) -> List[int]:
    """Cells written exclusively through commutative add ops."""
    added, blind = set(), set()
    for thread in schedule["threads"]:
        for txn in thread:
            for op in txn["ops"]:
                if op[0] == "a":
                    added.add(op[1])
                elif op[0] == "w":
                    blind.add(op[1])
    return sorted(added - blind)


def expected_counters(schedule: dict) -> Dict[int, int]:
    """Final value each add-only cell must reach once everything commits."""
    totals = {cell: schedule["initial"][cell]
              for cell in addonly_cells(schedule)}
    for thread in schedule["threads"]:
        for txn in thread:
            for op in txn["ops"]:
                if op[0] == "a" and op[1] in totals:
                    totals[op[1]] += op[2]
    return totals


# ----------------------------------------------------------------------
# schedule execution

def _patched_config(patch: Optional[dict]) -> Optional[SimConfig]:
    """Default config with a partial nested dict merged over it."""
    if not patch:
        return None
    base = SimConfig().to_dict()

    def merge(dst: dict, src: dict) -> None:
        for key, value in src.items():
            if isinstance(value, dict) and isinstance(dst.get(key), dict):
                merge(dst[key], value)
            else:
                dst[key] = value

    merge(base, patch)
    return SimConfig.from_dict(base)


def _make_body(ops: Sequence[list], base: int, stride: int, label: str):
    """Transaction body factory for one schedule transaction."""
    frozen = [list(op) for op in ops]

    def body():
        for op in frozen:
            kind = op[0]
            if kind == "r":
                yield Read(base + op[1] * stride, site=f"{label}:r{op[1]}")
            elif kind == "w":
                yield Write(base + op[1] * stride, op[2],
                            site=f"{label}:w{op[1]}")
            elif kind == "a":
                addr = base + op[1] * stride
                value = yield Read(addr, site=f"{label}:a{op[1]}")
                yield Write(addr, value + op[2], site=f"{label}:a{op[1]}")
            elif kind == "c":
                yield Compute(op[1])
            else:
                raise ValueError(f"unknown schedule op {op!r}")
    return body


def run_schedule(schedule: dict, system: str, seed: int = 0,
                 broken: Optional[str] = None, tracer=None,
                 ) -> Tuple[History, List[int]]:
    """Run one schedule under one backend; return (history, final state).

    ``broken="no-ww"`` disables SI-TM's commit-time write-write
    validation (the oracle test hook), deliberately producing lost
    updates the checker must catch; ``broken="no-lock"`` removes the
    serialization of HybridHTM's lock fallback, letting untracked
    fallback accesses race live hardware transactions.  Each hook is a
    no-op for backends that do not consult it.

    ``tracer`` rides alongside the history recorder in the engine's
    single tracer slot (composed via :class:`~repro.obs.spans.
    MultiTracer`), so a replay can capture telemetry spans without
    changing the recorded history.
    """
    config = _patched_config(schedule.get("config"))
    machine = Machine(config)
    stride = machine.address_map.words_per_line  # one line per cell
    initial = list(schedule["initial"])
    base = machine.mvmalloc(max(1, len(initial)) * stride)
    for cell, value in enumerate(initial):
        machine.plain_store(base + cell * stride, value)
    tm = SYSTEMS[system](
        machine, SplitRandom(derive_seed(seed, "fuzz-run",
                                         schedule.get("name", ""), system)))
    if broken == "no-ww":
        tm.ww_validation = False
    elif broken == "no-lock":
        tm.fallback_serializes = False
    recorder = HistoryRecorder.for_system(
        tm, initial={base + cell * stride: value
                     for cell, value in enumerate(initial)})
    programs = [
        [TransactionSpec(_make_body(txn["ops"], base, stride, txn["label"]),
                         txn["label"])
         for txn in thread]
        for thread in schedule["threads"]]
    total_ops = sum(len(txn["ops"]) + 2
                    for thread in schedule["threads"] for txn in thread)
    engine_tracer = recorder
    if tracer is not None:
        from repro.obs import MultiTracer
        engine_tracer = MultiTracer(recorder, tracer)
    engine = Engine(tm, programs, tracer=engine_tracer)
    engine.run(max_steps=1000 * max(1, total_ops) + 20_000)
    final = [machine.plain_load(base + cell * stride)
             for cell in range(len(initial))]
    return recorder.history, final


def check_schedule_run(schedule: dict, system: str, seed: int = 0,
                       broken: Optional[str] = None,
                       ) -> Tuple[List[Violation], List[int],
                                  Optional[History]]:
    """Run + check one schedule; returns (violations, final state, history).

    A run that cannot make progress (engine step-limit hit, e.g. a
    livelocked broken backend) is itself reported as a violation.
    """
    try:
        history, final = run_schedule(schedule, system, seed, broken)
    except SimulationError as exc:
        return ([Violation("no-progress", f"{system}: {exc}")],
                list(schedule["initial"]), None)
    violations = check_history(history)
    expected = expected_counters(schedule)
    for cell, want in sorted(expected.items()):
        if final[cell] != want:
            violations.append(Violation(
                "lost-update",
                f"{system}: add-only cell {cell} ended at {final[cell]}, "
                f"expected {want} (all transactions commit)", (), cell))
    return violations, final, history


def schedule_violations(schedule: dict, systems: Sequence[str],
                        seed: int = 0,
                        broken: Optional[str] = None) -> List[Violation]:
    """All violations of one schedule across ``systems`` (serial).

    Used by the shrinker's predicate: per-system isolation checks plus
    the cross-backend differential comparison on add-only cells.
    """
    violations: List[Violation] = []
    finals: Dict[str, List[int]] = {}
    for system in systems:
        found, final, _ = check_schedule_run(schedule, system, seed, broken)
        violations += found
        finals[system] = final
    violations += differential_violations(schedule, finals)
    return violations


def differential_violations(schedule: dict,
                            finals: Dict[str, List[int]]) -> List[Violation]:
    """Backends must agree on every add-only cell's final value."""
    cells = addonly_cells(schedule)
    found = []
    systems = sorted(finals)
    for cell in cells:
        values = {system: finals[system][cell] for system in systems}
        if len(set(values.values())) > 1:
            found.append(Violation(
                "differential",
                f"add-only cell {cell} diverges across backends: {values}",
                (), cell))
    return found


# ----------------------------------------------------------------------
# executor integration

@dataclass(frozen=True)
class FuzzSpec:
    """One fuzz cell: a single schedule under a single backend.

    Mirrors :class:`~repro.harness.spec.ExperimentSpec`'s canonical-JSON
    contract (``kind`` discriminates the two in worker payloads and
    cache entries) so the harness executor runs fuzz batches through the
    same process pool and content-addressed cache as figure grids.
    ``schedule_json`` replays an explicit schedule (corpus/repro files);
    otherwise the schedule is regenerated from the shape parameters.
    """

    system: str
    seed: int = 0
    index: int = 0
    threads: int = 3
    txns: int = 2
    cells: int = 4
    ops: int = 3
    broken: Optional[str] = None
    schedule_json: Optional[str] = None

    kind = "fuzz"

    def schedule(self) -> dict:
        """The schedule this spec runs (explicit or regenerated)."""
        if self.schedule_json is not None:
            return json.loads(self.schedule_json)
        return generate_schedule(self.seed, self.index, self.threads,
                                 self.txns, self.cells, self.ops)

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set)."""
        return {"kind": "fuzz", "system": self.system, "seed": self.seed,
                "index": self.index, "threads": self.threads,
                "txns": self.txns, "cells": self.cells, "ops": self.ops,
                "broken": self.broken, "schedule_json": self.schedule_json}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(system=data["system"], seed=data["seed"],
                   index=data["index"], threads=data["threads"],
                   txns=data["txns"], cells=data["cells"], ops=data["ops"],
                   broken=data.get("broken"),
                   schedule_json=data.get("schedule_json"))

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for hashing."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @staticmethod
    def result_from_dict(data: dict) -> "FuzzResult":
        """Deserialize this spec kind's result (executor/cache hook)."""
        return FuzzResult.from_dict(data)

    def run(self) -> "FuzzResult":
        """Execute this fuzz cell in the current process."""
        schedule = self.schedule()
        violations, final, history = check_schedule_run(
            schedule, self.system, self.seed, self.broken)
        committed = aborted = 0
        causes: Counter = Counter()
        if history is not None:
            committed = len(history.committed())
            aborted = len(history.aborts())
            for rec in history.aborts():
                causes[rec.abort_cause] += 1
        return FuzzResult(
            system=self.system, index=self.index,
            schedule_name=schedule.get("name", ""),
            committed=committed, aborted=aborted,
            abort_causes=dict(sorted(causes.items())),
            final_state=final, addonly=addonly_cells(schedule),
            violations=[v.to_dict() for v in violations])

    def __str__(self) -> str:
        tag = self.schedule_name_hint()
        return f"fuzz/{self.system}/{tag}" + (
            f"/broken={self.broken}" if self.broken else "")

    def schedule_name_hint(self) -> str:
        """Short human-readable identity for logs and labels."""
        if self.schedule_json is not None:
            return json.loads(self.schedule_json).get("name", "explicit")
        return f"s{self.seed}-i{self.index}"


@dataclass
class FuzzResult:
    """Outcome of one fuzz cell, serializable for the executor cache."""

    system: str
    index: int
    schedule_name: str
    committed: int
    aborted: int
    abort_causes: Dict[str, int] = field(default_factory=dict)
    final_state: List[int] = field(default_factory=list)
    addonly: List[int] = field(default_factory=list)
    violations: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe form (stable key set)."""
        return {"system": self.system, "index": self.index,
                "schedule_name": self.schedule_name,
                "committed": self.committed, "aborted": self.aborted,
                "abort_causes": dict(self.abort_causes),
                "final_state": list(self.final_state),
                "addonly": list(self.addonly),
                "violations": list(self.violations)}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzResult":
        """Inverse of :meth:`to_dict`."""
        return cls(system=data["system"], index=data["index"],
                   schedule_name=data["schedule_name"],
                   committed=data["committed"], aborted=data["aborted"],
                   abort_causes=dict(data.get("abort_causes", {})),
                   final_state=list(data.get("final_state", [])),
                   addonly=list(data.get("addonly", [])),
                   violations=list(data.get("violations", [])))


# ----------------------------------------------------------------------
# the fuzz campaign driver

@dataclass
class FuzzReport:
    """Everything one fuzz campaign produced, for the CLI report."""

    systems: List[str]
    schedules: int
    seed: int
    per_system: Dict[str, dict] = field(default_factory=dict)
    #: (system, schedule index, violation dict) triples
    violations: List[Tuple[str, int, dict]] = field(default_factory=list)
    repro_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when no backend violated its declared isolation level."""
        return not self.violations


def apply_config_patch(schedule: dict,
                       config_patch: Optional[dict]) -> dict:
    """Copy of ``schedule`` with ``config_patch`` merged over its config.

    The patch is a partial nested :class:`SimConfig` dict — e.g.
    ``{"faults": plan.to_dict(), "retry": policy.to_dict()}`` — merged
    key-by-key over any config the schedule already carries, so fault
    campaigns ride through :func:`run_schedule`'s existing
    ``_patched_config`` path with no replay changes at all.
    """
    if not config_patch:
        return schedule
    patched = copy.deepcopy(schedule)
    config = patched.setdefault("config", {})
    config.update(copy.deepcopy(config_patch))
    return patched


def fuzz_batch(executor, systems: Sequence[str], schedules: int,
               seed: int = 0, threads: int = 3, txns: int = 2,
               cells: int = 4, ops: int = 3, broken: Optional[str] = None,
               out_dir: Optional[str] = None,
               config_patch: Optional[dict] = None,
               persist: bool = True) -> FuzzReport:
    """Run ``schedules`` randomized schedules through every backend.

    Fan-out and memoization come from the harness ``executor``; the
    per-(schedule, system) results are then cross-checked differentially
    and the first violating schedule is shrunk to a minimal repro and
    persisted under ``out_dir`` (default ``$SITM_FUZZ_DIR`` or
    ``results/fuzz``).

    ``config_patch`` applies a partial config (typically a fault plan
    plus retry policy — ``sitm-harness fuzz --faults``) to every
    generated schedule; ``persist=False`` skips the shrink-and-persist
    step, for campaigns whose violations are the *expected* outcome
    (the escalation-disabled livelock demonstration).
    """
    from repro.oracle.shrink import persist_repro, shrink_schedule

    def make_schedule(index: int) -> dict:
        return apply_config_patch(
            generate_schedule(seed, index, threads, txns, cells, ops),
            config_patch)

    if config_patch:
        # the patch must reach the worker processes, so patched
        # schedules travel as explicit schedule_json payloads
        specs = [FuzzSpec(system=system, seed=seed, index=index,
                          broken=broken,
                          schedule_json=json.dumps(make_schedule(index),
                                                   sort_keys=True))
                 for index in range(schedules) for system in systems]
    else:
        specs = [FuzzSpec(system=system, seed=seed, index=index,
                          threads=threads, txns=txns, cells=cells, ops=ops,
                          broken=broken)
                 for index in range(schedules) for system in systems]
    results = executor.run(specs)
    report = FuzzReport(systems=list(systems), schedules=schedules,
                        seed=seed)
    for system in systems:
        rows = [results[s] for s in specs if s.system == system]
        report.per_system[system] = {
            "schedules": len(rows),
            "committed": sum(r.committed for r in rows),
            "aborted": sum(r.aborted for r in rows),
            "violations": sum(len(r.violations) for r in rows),
        }
    for spec in specs:
        for violation in results[spec].violations:
            report.violations.append((spec.system, spec.index, violation))
    # differential comparison per schedule index, from the cached results
    for index in range(schedules):
        finals = {system: results[spec].final_state
                  for spec in specs if spec.index == index
                  for system in [spec.system]}
        for violation in differential_violations(make_schedule(index),
                                                 finals):
            report.violations.append(("*", index, violation.to_dict()))
    if report.violations and persist:
        report.repro_path = str(_persist_first_violation(
            report, systems, seed, threads, txns, cells, ops, broken,
            out_dir, shrink_schedule, persist_repro, config_patch))
    return report


def fault_campaign(executor, systems: Optional[Sequence[str]] = None,
                   seeds: Sequence[int] = (0, 1, 2), schedules: int = 3,
                   escalation: bool = True,
                   out_dir: Optional[str] = None) -> FuzzReport:
    """The pinned adversarial fault campaign, oracle-checked end to end.

    Every backend runs ``schedules`` fuzz schedules per seed under
    :func:`repro.faults.adversarial_plan` (version-cap squeeze + forced
    timestamp overflows + begin-stall storms + spurious-abort bursts +
    GC pauses) with a tight retry policy, and every history goes
    through the isolation oracle plus the cross-backend differential
    check.  With ``escalation=True`` the golden-token path guarantees
    termination and the report must come back clean; with
    ``escalation=False`` the campaign hardens the spurious-abort site
    into a total storm (``abort_rate=1.0``) so that no commit attempt
    can ever succeed: every backend deterministically fails to make
    progress (``no-progress`` violations) — the A/B evidence that the
    escalation path is what buys termination.  The hardening is needed
    because the pinned 0.9-rate plan still lets ~1 in 10 commits
    through, which is enough for small fuzz schedules to terminate by
    luck.
    """
    from repro.faults import adversarial_plan
    from repro.sim.retry import RetryPolicy
    systems = list(systems or SYSTEMS)
    seeds = list(seeds)
    policy = RetryPolicy(attempt_budget=4, stall_budget=16,
                         starvation_age_cycles=50_000,
                         escalation=escalation)
    merged = FuzzReport(systems=systems, schedules=schedules * len(seeds),
                        seed=seeds[0] if seeds else 0)
    for seed in seeds:
        plan = adversarial_plan(seed)
        if not escalation:
            plan = dataclasses.replace(plan, abort_rate=1.0, abort_burst=1)
        patch = {"faults": plan.to_dict(),
                 "retry": policy.to_dict()}
        report = fuzz_batch(executor, systems, schedules, seed=seed,
                            config_patch=patch, persist=escalation,
                            out_dir=out_dir)
        for system, row in report.per_system.items():
            into = merged.per_system.setdefault(
                system, {"schedules": 0, "committed": 0, "aborted": 0,
                         "violations": 0})
            for key in into:
                into[key] += row[key]
        merged.violations += report.violations
        merged.repro_path = merged.repro_path or report.repro_path
    return merged


def _persist_first_violation(report: FuzzReport, systems: Sequence[str],
                             seed: int, threads: int, txns: int, cells: int,
                             ops: int, broken: Optional[str],
                             out_dir: Optional[str],
                             shrink, persist,
                             config_patch: Optional[dict] = None
                             ) -> os.PathLike:
    """Shrink the first violating schedule and write its repro."""
    first_index = min(index for _, index, _ in report.violations)
    schedule = apply_config_patch(
        generate_schedule(seed, first_index, threads, txns, cells, ops),
        config_patch)

    def failing(candidate: dict) -> bool:
        return bool(schedule_violations(candidate, systems, seed, broken))

    try:
        minimal = shrink(schedule, failing)
    except ValueError:
        # flaky (e.g. cache from different code): persist unshrunk
        minimal = copy.deepcopy(schedule)
    final_violations = schedule_violations(minimal, systems, seed, broken)
    target = out_dir or os.environ.get(FUZZ_DIR_ENV) or DEFAULT_FUZZ_DIR
    span_log = _persist_span_log(target, minimal, systems, seed, broken)
    return persist(target, minimal, list(systems), seed,
                   [v.to_dict() for v in final_violations], broken,
                   span_log=span_log)


def _persist_span_log(out_dir, schedule: dict, systems: Sequence[str],
                      seed: int, broken: Optional[str]) -> Optional[str]:
    """Replay the minimal schedule with span telemetry; persist the log.

    One JSONL file holds every system's spans (each line stamped with
    its backend), written next to the repro so ``fuzz --replay`` can
    re-emit a Chrome trace without re-running anything by hand.
    Telemetry rides outside the recorded history, so the replayed
    violations are the ones the repro documents.
    """
    import pathlib

    from repro.obs import SpanRecorder, spans_to_jsonl
    from repro.oracle.shrink import schedule_digest

    chunks = []
    for system in systems:
        recorder = SpanRecorder()
        try:
            run_schedule(schedule, system, seed, broken, tracer=recorder)
        except SimulationError:
            pass  # livelocked runs still leave their partial spans
        chunks.append(spans_to_jsonl(recorder.spans,
                                     extra={"system": system}))
    name = f"repro-{schedule_digest(schedule)}.spans.jsonl"
    root = pathlib.Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    (root / name).write_text("".join(chunks), encoding="utf-8")
    return name
