"""Isolation-level oracle: full-history recording, checking, fuzzing.

The oracle closes the loop the paper leaves implicit: every TM system
*declares* an isolation level (:class:`repro.tm.api.IsolationLevel`) and
this package *verifies* it.  A :class:`~repro.oracle.history.HistoryRecorder`
captures the complete global history of a run — begins with start
timestamps, reads with the value observed, writes, commits with end
timestamps, aborts with their cause — and the Adya-style checker
(:mod:`repro.oracle.checker`) validates the history against the declared
level.  The deterministic schedule fuzzer (:mod:`repro.oracle.fuzz`) then
drives randomized transaction mixes through every backend, cross-checks
them, and shrinks any violation to a minimal persisted repro
(:mod:`repro.oracle.shrink`).
"""

from repro.oracle.checker import Violation, check_history
from repro.oracle.fuzz import (FuzzResult, FuzzSpec, fuzz_batch,
                               generate_schedule, run_schedule)
from repro.oracle.history import History, HistoryRecorder, TxnRecord
from repro.oracle.shrink import persist_repro, shrink_schedule

__all__ = [
    "FuzzResult",
    "FuzzSpec",
    "History",
    "HistoryRecorder",
    "TxnRecord",
    "Violation",
    "check_history",
    "fuzz_batch",
    "generate_schedule",
    "persist_repro",
    "run_schedule",
    "shrink_schedule",
]
