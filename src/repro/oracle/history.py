"""Full-history recording for the isolation oracle.

The write-skew tool's :class:`~repro.skew.trace.TraceRecorder` records
*which* addresses were touched; verifying an isolation level needs more —
the **value** every read observed, every write stored, and the start/end
timestamps the system assigned.  :class:`HistoryRecorder` is an engine
:class:`~repro.sim.engine.Tracer` capturing exactly that into a
serializable :class:`History`, which the checker
(:mod:`repro.oracle.checker`) consumes and the fuzzer persists as JSON
repros.

A :class:`History` converts losslessly to a
:class:`~repro.skew.trace.TraceRecorder` (:meth:`History.to_trace`), so
all the serialization-graph machinery of :mod:`repro.skew` applies to it
unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import AbortCause
from repro.sim.engine import Tracer
from repro.skew.trace import (EventKind, TracedTransaction, TraceEvent,
                              TraceRecorder)
from repro.tm.api import TMSystem, Txn

#: event kinds, as the short strings used in serialized histories
BEGIN, READ, WRITE, COMMIT, ABORT = "begin", "read", "write", "commit", "abort"

_TRACE_KINDS = {
    BEGIN: EventKind.BEGIN,
    READ: EventKind.READ,
    WRITE: EventKind.WRITE,
    COMMIT: EventKind.COMMIT,
    ABORT: EventKind.ABORT,
}


@dataclass(frozen=True)
class HistoryEvent:
    """One globally ordered event of a recorded history."""

    index: int
    kind: str
    txn_uid: int
    thread_id: int
    label: str
    addr: Optional[int] = None
    value: Optional[int] = None
    site: str = ""

    def to_dict(self) -> dict:
        """JSON-safe form (stable key set)."""
        return {"index": self.index, "kind": self.kind, "txn": self.txn_uid,
                "thread": self.thread_id, "label": self.label,
                "addr": self.addr, "value": self.value, "site": self.site}

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(data["index"], data["kind"], data["txn"], data["thread"],
                   data["label"], data.get("addr"), data.get("value"),
                   data.get("site", ""))


@dataclass
class TxnRecord:
    """Per-attempt transaction view of a history.

    One record exists per *attempt*: a retry after an abort begins a new
    record, mirroring the engine's one-:class:`~repro.tm.api.Txn`-per-
    attempt contract.  ``reads``/``writes`` hold ``(addr, value, index)``
    triples in program order.
    """

    uid: int
    thread_id: int
    label: str
    begin_index: int
    start_ts: Optional[int] = None
    commit_index: Optional[int] = None
    commit_ts: Optional[int] = None
    abort_cause: Optional[str] = None
    reads: List[Tuple[int, int, int]] = field(default_factory=list)
    writes: List[Tuple[int, int, int]] = field(default_factory=list)
    #: timestamp epoch the attempt ran in (section 4.1: each overflow
    #: reset restarts the counter, so timestamps of different epochs are
    #: incomparable; no attempt spans epochs).  0 for untimestamped
    #: systems and for all histories recorded before overflow support.
    epoch: int = 0

    @property
    def committed(self) -> bool:
        """True when this attempt committed."""
        return self.commit_index is not None

    @property
    def aborted(self) -> bool:
        """True when this attempt aborted."""
        return self.abort_cause is not None

    def final_writes(self) -> Dict[int, int]:
        """Last written value per address — what a commit publishes."""
        return {addr: value for addr, value, _ in self.writes}

    def ops_in_order(self) -> List[Tuple[str, int, int, int]]:
        """Reads and writes merged as ``(kind, addr, value, index)``."""
        ops = ([(READ, a, v, i) for a, v, i in self.reads]
               + [(WRITE, a, v, i) for a, v, i in self.writes])
        ops.sort(key=lambda op: op[3])
        return ops

    def to_dict(self) -> dict:
        """JSON-safe form (stable key set)."""
        return {"uid": self.uid, "thread": self.thread_id,
                "label": self.label, "begin_index": self.begin_index,
                "start_ts": self.start_ts, "commit_index": self.commit_index,
                "commit_ts": self.commit_ts, "abort_cause": self.abort_cause,
                "reads": [list(r) for r in self.reads],
                "writes": [list(w) for w in self.writes],
                "epoch": self.epoch}

    @classmethod
    def from_dict(cls, data: dict) -> "TxnRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(data["uid"], data["thread"], data["label"],
                   data["begin_index"], data.get("start_ts"),
                   data.get("commit_index"), data.get("commit_ts"),
                   data.get("abort_cause"),
                   [tuple(r) for r in data.get("reads", [])],
                   [tuple(w) for w in data.get("writes", [])],
                   data.get("epoch", 0))


@dataclass
class History:
    """The complete recorded global history of one run.

    ``initial`` maps addresses to their pre-transactional values (the
    state non-transactional setup code established); reads that precede
    every committed write resolve against it.  ``abort_causes`` carries
    the system's declared legal causes so a serialized history is
    self-contained for checking.
    """

    system: str
    isolation: str
    abort_causes: Tuple[str, ...] = ()
    events: List[HistoryEvent] = field(default_factory=list)
    transactions: Dict[int, TxnRecord] = field(default_factory=dict)
    initial: Dict[int, int] = field(default_factory=dict)

    def committed(self) -> List[TxnRecord]:
        """Committed transaction records, in begin order."""
        return sorted((t for t in self.transactions.values() if t.committed),
                      key=lambda t: t.begin_index)

    def aborts(self) -> List[TxnRecord]:
        """Aborted attempts, in begin order."""
        return sorted((t for t in self.transactions.values() if t.aborted),
                      key=lambda t: t.begin_index)

    def to_trace(self) -> TraceRecorder:
        """Project onto the write-skew tool's trace representation.

        The projection drops values and timestamps, keeping the global
        event order — everything :mod:`repro.skew.serialization` needs.
        """
        recorder = TraceRecorder()
        for ev in self.events:
            recorder.events.append(TraceEvent(
                ev.index, _TRACE_KINDS[ev.kind], ev.txn_uid, ev.thread_id,
                ev.label, ev.addr, ev.site))
        for uid, rec in self.transactions.items():
            traced = TracedTransaction(
                uid, rec.thread_id, rec.label, rec.begin_index,
                rec.commit_index, rec.aborted)
            traced.reads = [(addr, self._site_of(idx))
                            for addr, _, idx in rec.reads]
            traced.writes = [(addr, self._site_of(idx))
                             for addr, _, idx in rec.writes]
            recorder.transactions[uid] = traced
            recorder._next_uid = max(recorder._next_uid, uid + 1)
        return recorder

    def _site_of(self, index: int) -> str:
        return self.events[index].site

    def to_dict(self) -> dict:
        """JSON-safe form of the whole history."""
        return {
            "system": self.system,
            "isolation": self.isolation,
            "abort_causes": list(self.abort_causes),
            "events": [ev.to_dict() for ev in self.events],
            "transactions": [rec.to_dict()
                             for _, rec in sorted(self.transactions.items())],
            "initial": {str(addr): value
                        for addr, value in sorted(self.initial.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        """Inverse of :meth:`to_dict`."""
        return cls(
            system=data["system"],
            isolation=data["isolation"],
            abort_causes=tuple(data.get("abort_causes", ())),
            events=[HistoryEvent.from_dict(e) for e in data["events"]],
            transactions={rec["uid"]: TxnRecord.from_dict(rec)
                          for rec in data["transactions"]},
            initial={int(addr): value
                     for addr, value in data.get("initial", {}).items()})

    def dumps(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "History":
        """Deserialize from :meth:`dumps` output."""
        return cls.from_dict(json.loads(text))


class HistoryRecorder(Tracer):
    """Engine tracer that captures a complete, checkable history."""

    def __init__(self, system: str, isolation: str,
                 abort_causes: Tuple[str, ...] = (),
                 initial: Optional[Dict[int, int]] = None):
        self.history = History(system=system, isolation=isolation,
                               abort_causes=tuple(sorted(abort_causes)),
                               initial=dict(initial or {}))
        self._next_uid = 0
        self._open: Dict[int, int] = {}  # thread_id -> txn uid

    @classmethod
    def for_system(cls, tm: TMSystem,
                   initial: Optional[Dict[int, int]] = None
                   ) -> "HistoryRecorder":
        """A recorder carrying ``tm``'s declared isolation metadata."""
        return cls(tm.name, tm.isolation.value,
                   tuple(c.value for c in tm.ABORT_CAUSES), initial)

    def _append(self, kind: str, txn: Txn, addr: Optional[int] = None,
                value: Optional[int] = None, site: str = "") -> HistoryEvent:
        uid = self._open[txn.thread_id]
        event = HistoryEvent(len(self.history.events), kind, uid,
                             txn.thread_id, txn.label, addr, value, site)
        self.history.events.append(event)
        return event

    def on_begin(self, txn: Txn) -> None:
        uid = self._next_uid
        self._next_uid += 1
        self._open[txn.thread_id] = uid
        self.history.transactions[uid] = TxnRecord(
            uid, txn.thread_id, txn.label,
            begin_index=len(self.history.events), start_ts=txn.start_ts,
            epoch=getattr(txn, "epoch", 0))
        self.history.events.append(HistoryEvent(
            len(self.history.events), BEGIN, uid, txn.thread_id, txn.label))

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        event = self._append(READ, txn, addr, value, site)
        self.history.transactions[event.txn_uid].reads.append(
            (addr, value, event.index))

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        event = self._append(WRITE, txn, addr, value, site)
        self.history.transactions[event.txn_uid].writes.append(
            (addr, value, event.index))

    def on_commit(self, txn: Txn) -> None:
        event = self._append(COMMIT, txn)
        record = self.history.transactions[event.txn_uid]
        record.commit_index = event.index
        record.commit_ts = txn.commit_ts

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        event = self._append(ABORT, txn)
        self.history.transactions[event.txn_uid].abort_cause = cause.value

    def __len__(self) -> int:
        return len(self.history.events)
