"""Exception hierarchy for the SI-TM reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming errors.  Transaction
aborts are *control flow*, not errors, and are modelled by
:class:`TransactionAborted`, which carries a machine-readable
:class:`AbortCause` taxonomy used by the Figure 1 / Figure 7 experiments.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An invalid machine or workload configuration was supplied."""


class MemoryError_(ReproError):
    """An invalid memory operation (bad address, double free, ...)."""


class AllocationError(MemoryError_):
    """The heap allocator ran out of space or was misused."""


class MVMError(ReproError):
    """An invalid multiversioned-memory operation."""


class TimestampOverflowError(MVMError):
    """The global timestamp counter overflowed (section 4.1).

    The paper handles this by aborting all active transactions and raising an
    interrupt; the simulator surfaces it as this exception so the runtime can
    implement that policy.
    """


class CheckpointRollbackError(MVMError):
    """Checkpoint rollback was attempted with transactions in flight.

    Rolling back truncates version history; an active transaction's
    snapshot (or a commit's reserved end timestamp) would dangle.  The
    caller must drain or abort every active transaction first — the
    store's shard-crash recovery does exactly that before restoring.
    """


class TMError(ReproError):
    """Misuse of the transactional-memory API (e.g. read outside a txn)."""


class StoreError(ReproError):
    """A live-store (``repro.store``) server- or client-side failure."""


class ProtocolError(StoreError):
    """A malformed frame or request on the store's wire protocol.

    Servers answer these with a structured ``BAD_REQUEST`` error (and
    drop the connection when the framing itself is unparseable); clients
    raise them when a peer violates the framing contract.
    """


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency."""


class SkewToolError(ReproError):
    """The write-skew analysis tool was driven incorrectly."""


class StructureCorrupted(ReproError):
    """A transactional data structure reached an impossible shape.

    Raised by traversal guards when a pointer cycle (the observable result
    of an un-fixed write-skew anomaly, section 5) would otherwise loop a
    transaction forever.
    """


class AbortCause(enum.Enum):
    """Why a transaction aborted.

    The taxonomy follows the paper: 2PL aborts on read-write and write-write
    conflicts (Figure 1 splits these), SI-TM aborts only on write-write
    conflicts plus the MVM resource causes of section 3.1, and SSI-TM adds
    dangerous-structure aborts (section 5.2).
    """

    #: Eager read-write conflict (2PL: a reader hit a concurrent writer's
    #: write set, or a writer hit a concurrent reader's read set).
    READ_WRITE = "read-write"
    #: Write-write conflict (all systems).
    WRITE_WRITE = "write-write"
    #: SONTM: the serializability-order-number range became empty.
    SON_RANGE_EMPTY = "son-range-empty"
    #: SI-TM: creating this version would exceed the version cap (section 3.1).
    VERSION_OVERFLOW = "version-overflow"
    #: SI-TM drop-oldest policy: a read could not find a version old enough.
    SNAPSHOT_TOO_OLD = "snapshot-too-old"
    #: Conventional HTM: the L1 version buffer overflowed (section 4.3).
    VERSION_BUFFER_OVERFLOW = "version-buffer-overflow"
    #: Capacity-bounded HTM: the tracked read set outgrew the backend's
    #: declared ``read_set_limit`` (POWER-style limited-capacity HTM).
    READ_CAPACITY = "read-capacity"
    #: Capacity-bounded HTM: the tracked write set outgrew the backend's
    #: declared ``write_set_limit``.
    WRITE_CAPACITY = "write-capacity"
    #: Capacity-bounded HTM: the speculative version buffer (write buffer
    #: or undo log) outgrew the backend's declared ``version_buffer_limit``.
    VERSION_CAPACITY = "version-capacity"
    #: SSI-TM: incoming and outgoing rw-antidependency observed (section 5.2).
    DANGEROUS_STRUCTURE = "dangerous-structure"
    #: Global timestamp counter overflow (section 4.1).
    TIMESTAMP_OVERFLOW = "timestamp-overflow"
    #: The user's transaction body requested an explicit abort/retry.
    EXPLICIT = "explicit"

    @property
    def is_read_write(self) -> bool:
        """True when the cause counts as a read-write abort in Figure 1."""
        return self in (AbortCause.READ_WRITE, AbortCause.DANGEROUS_STRUCTURE)

    @property
    def is_write_write(self) -> bool:
        """True when the cause counts as a write-write abort in Figure 1."""
        return self is AbortCause.WRITE_WRITE


class TransactionAborted(Exception):
    """Raised inside a transaction body when the transaction must abort.

    This intentionally derives from :class:`Exception`, not
    :class:`ReproError`: it is control flow used by the retry loop in
    :mod:`repro.tm.api`, and user code should never swallow it.
    """

    def __init__(self, cause: AbortCause, detail: str = ""):
        self.cause = cause
        self.detail = detail
        super().__init__(f"transaction aborted ({cause.value})"
                         + (f": {detail}" if detail else ""))
