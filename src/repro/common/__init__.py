"""Shared substrate: errors, configuration, deterministic randomness."""

from repro.common.config import (
    CacheConfig,
    ConflictGranularity,
    MachineConfig,
    MVMConfig,
    SimConfig,
    TMConfig,
    VersionCapPolicy,
    table1_dict,
)
from repro.common.errors import (
    AbortCause,
    AllocationError,
    ConfigError,
    MVMError,
    ReproError,
    SimulationError,
    SkewToolError,
    StructureCorrupted,
    TimestampOverflowError,
    TMError,
    TransactionAborted,
)
from repro.common.rng import SplitRandom, derive_seed, seeds_for_runs

__all__ = [
    "AbortCause",
    "AllocationError",
    "CacheConfig",
    "ConfigError",
    "ConflictGranularity",
    "MachineConfig",
    "MVMConfig",
    "MVMError",
    "ReproError",
    "SimConfig",
    "SimulationError",
    "SkewToolError",
    "StructureCorrupted",
    "SplitRandom",
    "TimestampOverflowError",
    "TMConfig",
    "TMError",
    "TransactionAborted",
    "VersionCapPolicy",
    "derive_seed",
    "seeds_for_runs",
    "table1_dict",
]
