"""Machine and runtime configuration.

:class:`MachineConfig` defaults reproduce Table 1 of the paper (the simulated
Nehalem-class 32-core machine).  :class:`MVMConfig` captures the
multiversioned-memory parameters of section 3 (version cap of four, 32-bit
indirection pointers, coalescing) and :class:`TMConfig` the runtime policies
of sections 4 and 6 (lazy vs eager detection, backoff tuning, conflict
granularity).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.faults import FaultPlan
    from repro.sim.retry import RetryPolicy


class VersionCapPolicy(enum.Enum):
    """What the MVM does when a write would create one version too many.

    Section 3.1 describes three options and reports that the first two differ
    by less than 1% in abort rate and performance (our ablation bench checks
    this claim):

    * ``ABORT_WRITER`` — the paper's default: abort the transaction trying to
      create a fifth version.
    * ``DROP_OLDEST`` — discard the oldest version; readers abort with
      ``SNAPSHOT_TOO_OLD`` if no version old enough survives.
    * ``UNBOUNDED`` — keep every version (used for the Table 2 census).
    """

    ABORT_WRITER = "abort-writer"
    DROP_OLDEST = "drop-oldest"
    UNBOUNDED = "unbounded"


class ConflictGranularity(enum.Enum):
    """Granularity at which write-write conflicts are validated.

    The evaluation (section 6.1) uses cache-line granularity for every system
    so that false sharing affects them all equally; SI-TM additionally
    supports word granularity (section 4.2), which filters false sharing and
    silent stores — our ablation bench measures that headroom.
    """

    LINE = "line"
    WORD = "word"


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: geometry and access latency."""

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways x {self.line_bytes}B lines")

    @property
    def num_lines(self) -> int:
        """Total number of line frames in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of associative sets."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine; defaults are the paper's Table 1."""

    cores: int = 32
    clock_ghz: float = 3.0
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, associativity=4, latency_cycles=4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=256 * 1024, associativity=8, latency_cycles=8))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024 * 1024, associativity=16, latency_cycles=30))
    #: Portion of the L3 reserved for MVM version-list entries (Table 1).
    l3_mvm_partition_bytes: int = 8 * 1024 * 1024
    memory_controllers: int = 4
    memory_bandwidth_gbps: float = 10.0
    memory_latency_cycles: int = 100
    line_bytes: int = 64
    word_bytes: int = 8
    #: coherence-fabric topology: "mesh" (default), "bus", or "ideal"
    #: (constant-cost).  Eager TMs pay it on every conflict-detection
    #: broadcast; SI-TM's lazy design emits none (section 4.4).
    interconnect: str = "mesh"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if self.interconnect not in ("bus", "mesh", "ideal"):
            raise ConfigError(
                f"unknown interconnect {self.interconnect!r}")
        if self.line_bytes % self.word_bytes:
            raise ConfigError("line size must be a multiple of the word size")
        for level in (self.l1d, self.l2, self.l3):
            if level.line_bytes != self.line_bytes:
                raise ConfigError("all cache levels must share one line size")

    @property
    def words_per_line(self) -> int:
        """Number of machine words per cache line."""
        return self.line_bytes // self.word_bytes

    def scaled(self, factor: float) -> "MachineConfig":
        """Return a copy with cache capacities scaled by ``factor``.

        Used to model contention on scaled-down workloads: shrinking the
        working set without shrinking caches would remove all capacity
        misses that the paper's full-size runs experience.
        """
        def scale(c: CacheConfig) -> CacheConfig:
            lines = max(c.associativity, int(c.num_lines * factor))
            lines -= lines % c.associativity
            return dataclasses.replace(
                c, size_bytes=lines * c.line_bytes)
        return dataclasses.replace(
            self, l1d=scale(self.l1d), l2=scale(self.l2), l3=scale(self.l3),
            l3_mvm_partition_bytes=max(
                self.line_bytes,
                int(self.l3_mvm_partition_bytes * factor)))


@dataclass(frozen=True)
class MVMConfig:
    """Multiversioned-memory parameters (section 3)."""

    #: Maximum retained versions per line; the paper settles on 4 (section 3.1).
    max_versions: int = 4
    cap_policy: VersionCapPolicy = VersionCapPolicy.ABORT_WRITER
    #: Enable version coalescing (Figure 4).
    coalescing: bool = True
    #: Indirection pointer width in bits (section 3.2, 32-bit -> 256 GB).
    pointer_bits: int = 32
    #: Timestamp width in bits per version-list entry.
    timestamp_bits: int = 32
    #: Lines per allocation bundle (section 3.2: 8 lines -> 6% worst case).
    bundle_lines: int = 1
    #: Delta for the commit-race timestamp protocol (section 4.2).
    commit_delta: int = 64
    #: Timestamp-counter ceiling; ``None`` = practically unbounded.  A
    #: real 32-bit counter overflows; section 4.1 aborts all active
    #: transactions and traps to software when it does.
    max_timestamp: "int | None" = None
    #: Collect the per-version access census used by Table 2.
    census: bool = False
    #: Account HICAMP-style line-deduplication opportunity (section 3.3).
    dedup: bool = False

    def __post_init__(self) -> None:
        if self.max_versions < 1:
            raise ConfigError("max_versions must be >= 1")
        if self.bundle_lines < 1:
            raise ConfigError("bundle_lines must be >= 1")
        if self.commit_delta < 1:
            raise ConfigError("commit_delta must be >= 1")
        if self.max_timestamp is not None \
                and self.max_timestamp <= self.commit_delta:
            raise ConfigError(
                "max_timestamp must exceed commit_delta, or no commit can "
                "ever reserve an end timestamp")


@dataclass(frozen=True)
class TMConfig:
    """Transactional-memory runtime policies (sections 4 and 6.1)."""

    granularity: ConflictGranularity = ConflictGranularity.LINE
    #: Exponential backoff for the eager baselines (section 6.4): the paper
    #: tunes it for performance, not abort rate.
    backoff_enabled: bool = True
    backoff_base_cycles: int = 64
    backoff_max_exponent: int = 12
    #: Maximum automatic retries before the runtime raises (0 = unlimited).
    max_retries: int = 0
    #: L1-as-version-buffer capacity in lines for bounded baselines; 2PL with
    #: lazy versioning aborts when a transaction's write set exceeds this
    #: (section 4.3).  ``0`` disables the bound.
    version_buffer_lines: int = 0
    #: SI-TM word-granularity commit filtering of false sharing/silent stores.
    word_grain_commit_filter: bool = False
    #: Capacity bound on the tracked read set, in lines (POWER-style
    #: limited-capacity HTM).  Exceeding it aborts with ``read-capacity``.
    #: ``0`` (the default) disables the bound and is omitted from the
    #: canonical dict so pre-capacity fingerprints survive.
    read_set_limit: int = 0
    #: Capacity bound on the tracked write set, in lines.  Exceeding it
    #: aborts with ``write-capacity``.  ``0`` disables; omitted when unset.
    write_set_limit: int = 0
    #: Capacity bound on the speculative version buffer — buffered store
    #: words for lazy-versioning backends, undo-log entries for eager
    #: ones.  Exceeding it aborts with ``version-capacity``.  ``0``
    #: disables; omitted when unset.
    version_buffer_limit: int = 0
    #: HybridHTM only: hardware attempts before a transaction falls back
    #: to the serialized global-lock path.  ``0`` (the default) uses the
    #: backend's built-in budget; omitted when unset.
    hybrid_hw_attempts: int = 0

    def __post_init__(self) -> None:
        if self.backoff_base_cycles < 1:
            raise ConfigError("backoff_base_cycles must be >= 1")
        if self.backoff_max_exponent < 0:
            raise ConfigError("backoff_max_exponent must be >= 0")
        for name in ("read_set_limit", "write_set_limit",
                     "version_buffer_limit", "hybrid_hw_attempts"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")


@dataclass(frozen=True)
class SimConfig:
    """Bundle of all configuration consumed by a simulation run."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    mvm: MVMConfig = field(default_factory=MVMConfig)
    tm: TMConfig = field(default_factory=TMConfig)
    #: Cycles charged for one non-memory "compute" step inside a transaction.
    compute_cycles: int = 1
    #: Cycles charged for begin/commit bookkeeping (timestamp fetch etc.).
    txn_overhead_cycles: int = 20
    #: Fault-injection plan (:class:`repro.faults.FaultPlan`); ``None``
    #: (the default) injects nothing and is omitted from the canonical
    #: dict so every pre-existing config fingerprint is unchanged.
    faults: "Optional[FaultPlan]" = None
    #: Engine retry/escalation policy
    #: (:class:`repro.sim.retry.RetryPolicy`); ``None`` (the default)
    #: keeps the legacy behaviour — backend backoff only, unbounded
    #: retries — and is omitted from the canonical dict.
    retry: "Optional[RetryPolicy]" = None

    def replace(self, **kwargs) -> "SimConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Serialise to plain JSON-safe types (enums become their values)."""
        return _config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Inverse of :meth:`to_dict`; validates via each ``__post_init__``."""
        faults = data.get("faults")
        retry = data.get("retry")
        if faults is not None:
            # imported lazily: repro.faults itself imports this module
            from repro.faults import FaultPlan
            faults = FaultPlan.from_dict(faults)
        if retry is not None:
            from repro.sim.retry import RetryPolicy
            retry = RetryPolicy.from_dict(retry)
        return cls(
            machine=_machine_from_dict(data["machine"]),
            mvm=_mvm_from_dict(data["mvm"]),
            tm=_tm_from_dict(data["tm"]),
            compute_cycles=data["compute_cycles"],
            txn_overhead_cycles=data["txn_overhead_cycles"],
            faults=faults,
            retry=retry)

    def canonical_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace) for hashing."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """Stable hex digest of the full configuration.

        Two :class:`SimConfig` instances share a fingerprint iff every
        field (machine geometry, MVM, TM policies, cost model) is equal —
        the experiment cache keys results on it so a config change can
        never serve stale numbers.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]


#: Config fields serialized omitted-when-unset (0/None/False): their
#: defaults predate nothing — they were added after fingerprints, cache
#: keys and bench baselines already existed, so a default value must
#: leave the canonical dict byte-identical to the pre-feature form.
OMITTED_WHEN_UNSET = frozenset({
    "read_set_limit", "write_set_limit", "version_buffer_limit",
    "hybrid_hw_attempts",
})


def _config_to_dict(config) -> dict:
    """Recursively convert a config dataclass tree to JSON-safe types."""
    out = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name in ("faults", "retry"):
            # omitted-when-None so pre-existing fingerprints survive;
            # these carry their own canonical to_dict (tuple -> list)
            if value is not None:
                out[f.name] = value.to_dict()
        elif f.name in OMITTED_WHEN_UNSET:
            if value:
                out[f.name] = value
        elif dataclasses.is_dataclass(value):
            out[f.name] = _config_to_dict(value)
        elif isinstance(value, enum.Enum):
            out[f.name] = value.value
        else:
            out[f.name] = value
    return out


def _cache_from_dict(data: dict) -> CacheConfig:
    return CacheConfig(**data)


def _machine_from_dict(data: dict) -> MachineConfig:
    kwargs = dict(data)
    for level in ("l1d", "l2", "l3"):
        kwargs[level] = _cache_from_dict(kwargs[level])
    return MachineConfig(**kwargs)


def _mvm_from_dict(data: dict) -> MVMConfig:
    kwargs = dict(data)
    kwargs["cap_policy"] = VersionCapPolicy(kwargs["cap_policy"])
    return MVMConfig(**kwargs)


def _tm_from_dict(data: dict) -> TMConfig:
    kwargs = dict(data)
    kwargs["granularity"] = ConflictGranularity(kwargs["granularity"])
    return TMConfig(**kwargs)


def table1_dict() -> dict:
    """Table 1 of the paper as an ordered mapping, for reports and tests."""
    m = MachineConfig()
    return {
        "CPU Cores": m.cores,
        "CPU Clock (GHz)": m.clock_ghz,
        "L1D cache size (KB)": m.l1d.size_bytes // 1024,
        "L1 associativity": m.l1d.associativity,
        "L1 latency (cycles)": m.l1d.latency_cycles,
        "L2 cache size (KB)": m.l2.size_bytes // 1024,
        "L2 associativity": m.l2.associativity,
        "L2 latency (cycles)": m.l2.latency_cycles,
        "L3 cache size (MB)": m.l3.size_bytes // (1024 * 1024),
        "L3 MVM partition (MB)": m.l3_mvm_partition_bytes // (1024 * 1024),
        "L3 associativity": m.l3.associativity,
        "L3 latency (cycles)": m.l3.latency_cycles,
        "Memory controllers": m.memory_controllers,
        "Memory bandwidth (GB/s)": m.memory_bandwidth_gbps,
        "Memory latency (cycles)": m.memory_latency_cycles,
    }
