"""Deterministic random-number utilities.

All stochastic behaviour in the simulator — workload operation mixes, key
choices, backoff jitter — must be reproducible from a single integer seed so
that every figure regenerates bit-identically.  We derive independent child
streams from a root seed with a stable string-keyed splitting scheme, so
adding a new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root: int, *keys: object) -> int:
    """Derive a 64-bit child seed from ``root`` and a path of keys.

    The derivation hashes the textual path, so it is stable across Python
    versions and process runs (unlike ``hash()``).
    """
    text = str(int(root)) + "/" + "/".join(str(k) for k in keys)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SplitRandom(random.Random):
    """A :class:`random.Random` that can spawn independent child streams."""

    def __init__(self, seed: int, path: Sequence[object] = ()):  # noqa: D107
        self._root_seed = int(seed)
        self._path = tuple(path)
        super().__init__(derive_seed(self._root_seed, *self._path))

    def split(self, *keys: object) -> "SplitRandom":
        """Return a child stream independent of this one.

        Splitting is keyed, not sequential: ``rng.split("a")`` always yields
        the same stream regardless of how much of ``rng`` was consumed.
        """
        return SplitRandom(self._root_seed, self._path + tuple(keys))

    @property
    def path(self) -> tuple:
        """The key path of this stream, for debugging."""
        return self._path

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with the given (not necessarily normalised) weights."""
        return self.choices(list(items), weights=list(weights), k=1)[0]

    def distinct(self, n: int, lo: int, hi: int) -> List[int]:
        """Return ``n`` distinct integers uniformly drawn from ``[lo, hi)``."""
        if hi - lo < n:
            raise ValueError(f"cannot draw {n} distinct values from [{lo},{hi})")
        return self.sample(range(lo, hi), n)


def seeds_for_runs(root: int, count: int) -> Iterator[int]:
    """Yield ``count`` independent run seeds (the paper averages over 5)."""
    for i in range(count):
        yield derive_seed(root, "run", i)
