"""Memory substrate: addressing, backing store, heap, cache hierarchy."""

from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mem.backing import BackingStore
from repro.mem.cache import CacheHierarchy, CoreCaches, SetAssociativeCache
from repro.mem.heap import BumpAllocator, Heap

__all__ = [
    "MVM_REGION_BASE",
    "AddressMap",
    "BackingStore",
    "BumpAllocator",
    "CacheHierarchy",
    "CoreCaches",
    "Heap",
    "SetAssociativeCache",
]
