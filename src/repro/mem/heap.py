"""Heap allocators for the two memory regions.

Section 4.4: multiversioned memory "can be administered by a conventional
heap manager with the only difference that it spans a different memory
region".  We provide a bump-pointer allocator with a free list per size
class, and expose ``malloc()`` (conventional region) and ``mvmalloc()``
(multiversioned region) on :class:`Heap`, mirroring the paper's API.

Allocation is line-aligned when requested, because transactional objects
should not straddle lines unintentionally (false sharing is a measured
phenomenon, not an accident of the allocator).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.common.errors import AllocationError
from repro.mem.address import MVM_REGION_BASE, AddressMap


class BumpAllocator:
    """Bump-pointer allocator with size-class free lists."""

    def __init__(self, base: int, limit: int, address_map: AddressMap):
        if base >= limit:
            raise AllocationError("empty allocation region")
        self._base = base
        self._limit = limit
        self._next = base
        self._map = address_map
        self._free: Dict[int, List[int]] = defaultdict(list)
        self._sizes: Dict[int, int] = {}

    def alloc(self, words: int, line_aligned: bool = True) -> int:
        """Allocate ``words`` consecutive words; return the base address."""
        if words <= 0:
            raise AllocationError(f"invalid allocation size {words}")
        free = self._free.get(words)
        if free:
            addr = free.pop()
            self._sizes[addr] = words
            return addr
        addr = self._next
        if line_aligned:
            per_line = self._map.words_per_line
            rem = addr % per_line
            if rem:
                addr += per_line - rem
        if addr + words > self._limit:
            raise AllocationError("allocator region exhausted")
        self._next = addr + words
        self._sizes[addr] = words
        return addr

    def free(self, addr: int) -> None:
        """Return an allocation to the free list."""
        words = self._sizes.pop(addr, None)
        if words is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self._free[words].append(addr)

    def allocated_words(self) -> int:
        """Total words currently allocated (live)."""
        return sum(self._sizes.values())

    def contains(self, addr: int) -> bool:
        """True when ``addr`` lies inside this allocator's region."""
        return self._base <= addr < self._limit


class Heap:
    """Two-region heap: conventional ``malloc`` plus ``mvmalloc``."""

    def __init__(self, address_map: AddressMap = AddressMap()):
        self.address_map = address_map
        self._conventional = BumpAllocator(
            base=address_map.words_per_line,  # keep address 0 unused
            limit=MVM_REGION_BASE,
            address_map=address_map)
        self._mvm = BumpAllocator(
            base=MVM_REGION_BASE,
            limit=MVM_REGION_BASE * 2,
            address_map=address_map)

    def malloc(self, words: int, line_aligned: bool = True) -> int:
        """Allocate in the conventional (in-place-updated) region."""
        return self._conventional.alloc(words, line_aligned)

    def mvmalloc(self, words: int, line_aligned: bool = True) -> int:
        """Allocate in the multiversioned region (section 4.4).

        Only the address mapping is installed here; the MVM populates
        version-list entries lazily on first write, exactly as described
        in section 4.4 ("only on the first write to a cache line, the
        entry is populated and a data line is allocated").
        """
        return self._mvm.alloc(words, line_aligned)

    def free(self, addr: int) -> None:
        """Free an allocation from whichever region owns it."""
        if self._mvm.contains(addr):
            self._mvm.free(addr)
        else:
            self._conventional.free(addr)

    def mvm_allocated_words(self) -> int:
        """Live words in the multiversioned region."""
        return self._mvm.allocated_words()

    def conventional_allocated_words(self) -> int:
        """Live words in the conventional region."""
        return self._conventional.allocated_words()
