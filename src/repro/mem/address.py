"""Address arithmetic.

The simulator is word-addressed: every address names one machine word
(8 bytes by default).  Cache lines group ``words_per_line`` consecutive
words; conflict detection, caching and versioning all operate on *line*
identifiers, matching the paper's per-cache-line metadata (sections 3, 4.2).

Memory is split into two regions mirroring section 4.4:

* the **conventional region** — ordinary heap/stack data, updated in place;
* the **MVM region** — multiversioned shared memory handed out by
  ``mvmalloc()``; transactional copy-on-write versioning applies only here.
"""

from __future__ import annotations

from dataclasses import dataclass

#: First word address of the multiversioned region.  The value is arbitrary
#: but far above any conventional allocation, so region membership is a
#: single comparison (the hardware uses a physical-address partition).
MVM_REGION_BASE = 1 << 40


@dataclass(frozen=True)
class AddressMap:
    """Maps word addresses to lines, words-in-line, and regions."""

    words_per_line: int = 8

    def line_of(self, addr: int) -> int:
        """Line identifier containing word ``addr``."""
        return addr // self.words_per_line

    def word_in_line(self, addr: int) -> int:
        """Offset of ``addr`` within its line, in words."""
        return addr % self.words_per_line

    def line_base(self, line: int) -> int:
        """First word address of ``line``."""
        return line * self.words_per_line

    def words_of_line(self, line: int) -> range:
        """All word addresses belonging to ``line``."""
        base = self.line_base(line)
        return range(base, base + self.words_per_line)

    def is_mvm(self, addr: int) -> bool:
        """True when ``addr`` lies in the multiversioned region."""
        return addr >= MVM_REGION_BASE

    def is_mvm_line(self, line: int) -> bool:
        """True when ``line`` lies in the multiversioned region."""
        return self.line_base(line) >= MVM_REGION_BASE
