"""On-chip interconnect cost model.

The eager baselines broadcast every transactional access over the
coherence fabric (section 6.1); the cost of such a broadcast is not a
constant — it grows with the number of cores that must snoop or be
reached through a directory.  SI-TM's lazy design emits no coherence
traffic on transactional accesses, which is precisely why it scales; a
flat broadcast cost would understate that advantage at 32 cores.

Three topologies are modelled, selectable in
:class:`~repro.common.config.MachineConfig`:

* ``bus`` — snooping bus: every broadcast serialises all cores,
  cost = base + per_hop x cores;
* ``mesh`` — 2D mesh: messages travel ~2·sqrt(cores) hops to cross the
  die, multicast to ``n`` recipients costs the max route, so
  cost = base + per_hop x 2·sqrt(cores) (+ per-recipient delivery);
* ``ideal`` — a constant-cost fabric (the model used by many HTM
  evaluations; our pre-interconnect behaviour).

The model is deliberately latency-only (no occupancy/queuing): the
engine's per-thread clocks have no global "now" at access time, and the
paper's own evaluation does not model fabric contention either.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError

TOPOLOGIES = ("bus", "mesh", "ideal")


class Interconnect:
    """Latency model for coherence broadcasts and point-to-point messages."""

    #: cycles to inject a message into the fabric
    BASE_CYCLES = 8
    #: cycles per hop / per snooping core
    HOP_CYCLES = 2

    def __init__(self, cores: int, topology: str = "mesh"):
        if topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {topology!r}; expected one of {TOPOLOGIES}")
        if cores < 1:
            raise ConfigError("need at least one core")
        self.cores = cores
        self.topology = topology
        self.broadcasts = 0
        self.multicasts = 0

    def _diameter(self) -> int:
        """Worst-case hop count across the die."""
        side = math.ceil(math.sqrt(self.cores))
        return 2 * side

    def broadcast_cost(self) -> int:
        """Cycles for a broadcast that every core snoops (get-shared/
        get-exclusive of the eager baselines)."""
        self.broadcasts += 1
        if self.topology == "ideal":
            return self.BASE_CYCLES
        if self.topology == "bus":
            return self.BASE_CYCLES + self.HOP_CYCLES * self.cores
        return self.BASE_CYCLES + self.HOP_CYCLES * self._diameter()

    def multicast_cost(self, recipients: int) -> int:
        """Cycles to deliver to ``recipients`` specific cores (directory
        invalidations, write-set broadcast to read-history tables)."""
        self.multicasts += 1
        if recipients <= 0:
            return 0
        if self.topology == "ideal":
            return self.BASE_CYCLES
        if self.topology == "bus":
            return self.BASE_CYCLES + self.HOP_CYCLES * recipients
        # mesh: the farthest recipient dominates; delivery fans out
        return (self.BASE_CYCLES + self.HOP_CYCLES * self._diameter()
                + max(0, recipients - 1))

    def point_to_point_cost(self) -> int:
        """Cycles for one average-distance message (token handoff etc.)."""
        if self.topology == "ideal":
            return self.BASE_CYCLES
        if self.topology == "bus":
            return self.BASE_CYCLES + self.HOP_CYCLES
        return self.BASE_CYCLES + self.HOP_CYCLES * (self._diameter() // 2)

    def stats(self) -> dict:
        """Message counters."""
        return {"broadcasts": self.broadcasts,
                "multicasts": self.multicasts,
                "topology": self.topology}
