"""Set-associative cache model with LRU replacement.

The model tracks *which lines are resident*, not their contents (contents
live in :class:`repro.mem.backing.BackingStore` and, for versioned lines, in
the MVM).  Its job is timing: deciding at which level an access hits so the
engine can charge the Table 1 latency, and exposing invalidation hooks used
by the coherence broadcasts of the eager baselines.

Per-set LRU is implemented with ordered dicts (insertion order + move-to-end),
which is both exact and fast enough for the scaled workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import CacheConfig


class SetAssociativeCache:
    """One cache level, tracking resident line identifiers."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        # preallocated: one dict per set, so the hot path is a single
        # list index instead of a get-or-create probe per access
        self._sets: List[Dict[int, None]] = [
            {} for _ in range(self._num_sets)]
        self._ways = config.associativity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line: int) -> Dict[int, None]:
        return self._sets[line % self._num_sets]

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; update LRU and hit/miss counters."""
        entries = self._sets[line % self._num_sets]
        if line in entries:
            self.hits += 1
            # move-to-end == most recently used
            del entries[line]
            entries[line] = None
            return True
        self.misses += 1
        return False

    def fill(self, line: int) -> Optional[int]:
        """Insert ``line``; return the evicted line, if any."""
        entries = self._sets[line % self._num_sets]
        if line in entries:
            del entries[line]
            entries[line] = None
            return None
        victim = None
        if len(entries) >= self._ways:
            victim = next(iter(entries))
            del entries[victim]
            self.evictions += 1
        entries[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if resident; return whether it was."""
        entries = self._sets[line % self._num_sets]
        if line in entries:
            del entries[line]
            return True
        return False

    def contains(self, line: int) -> bool:
        """Probe without touching LRU state or counters."""
        return line in self._sets[line % self._num_sets]

    def flush(self) -> None:
        """Drop every resident line (counters are preserved)."""
        for entries in self._sets:
            entries.clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)


class CoreCaches:
    """The private L1 + L2 of one core."""

    def __init__(self, core_id: int, l1: CacheConfig, l2: CacheConfig):
        self.core_id = core_id
        self.l1 = SetAssociativeCache(l1, f"core{core_id}.L1")
        self.l2 = SetAssociativeCache(l2, f"core{core_id}.L2")

    def invalidate(self, line: int) -> None:
        """Invalidate ``line`` from both private levels (coherence)."""
        self.l1.invalidate(line)
        self.l2.invalidate(line)

    def flush(self) -> None:
        """Drop all private cache state."""
        self.l1.flush()
        self.l2.flush()


class CacheHierarchy:
    """Private L1/L2 per core, shared L3, DRAM behind it.

    ``access`` returns the latency of the access and fills all levels on the
    way in.  A small *translation cache* for MVM version-list entries can be
    layered on top by the MVM controller (section 4.1's X-Late cache);
    this class only models data lines.
    """

    LEVEL_L1 = "L1"
    LEVEL_L2 = "L2"
    LEVEL_L3 = "L3"
    LEVEL_MEM = "MEM"

    def __init__(self, machine) -> None:
        self.machine = machine
        self.cores = [CoreCaches(i, machine.l1d, machine.l2)
                      for i in range(machine.cores)]
        self.l3 = SetAssociativeCache(machine.l3, "L3")
        self.level_counts = {self.LEVEL_L1: 0, self.LEVEL_L2: 0,
                             self.LEVEL_L3: 0, self.LEVEL_MEM: 0}
        # hoisted latencies: the per-access path reads these instead of
        # chasing machine-config attribute chains
        self._l1_lat = machine.l1d.latency_cycles
        self._l2_lat = machine.l2.latency_cycles
        self._l3_lat = machine.l3.latency_cycles
        self._mem_lat = machine.memory_latency_cycles
        #: directory-style sharer tracking: line -> set of core ids whose
        #: private caches may hold it.  Kept approximately (eviction of a
        #: line from a private cache does not eagerly clear the bit, as in
        #: real sparse directories) and reconciled on invalidation.
        self._sharers: Dict[int, set] = {}
        self.invalidations_sent = 0

    def access(self, core_id: int, line: int) -> int:
        """Access ``line`` from ``core_id``; return latency in cycles."""
        sharers = self._sharers.get(line)
        if sharers is None:
            sharers = self._sharers[line] = set()
        sharers.add(core_id)
        core = self.cores[core_id]
        l1 = core.l1
        entries = l1._sets[line % l1._num_sets]
        if line in entries:
            # inlined L1 hit (the dominant case): same counter and LRU
            # updates as SetAssociativeCache.lookup, minus three calls
            l1.hits += 1
            del entries[line]
            entries[line] = None
            self.level_counts[self.LEVEL_L1] += 1
            return self._l1_lat
        l1.misses += 1
        return self._miss_path(core, line)[0]

    def access_tracked(self, core_id: int, line: int):
        """Access ``line``; return ``(latency, evicted_private_line)``.

        ``evicted_private_line`` is the line pushed out of this core's
        private hierarchy (its L2 victim), or ``None`` — SI-TM uses it to
        model transactional-line spills to the MVM (section 4.2).
        """
        sharers = self._sharers.get(line)
        if sharers is None:
            sharers = self._sharers[line] = set()
        sharers.add(core_id)
        core = self.cores[core_id]
        l1 = core.l1
        entries = l1._sets[line % l1._num_sets]
        if line in entries:
            l1.hits += 1
            del entries[line]
            entries[line] = None
            self.level_counts[self.LEVEL_L1] += 1
            return self._l1_lat, None
        l1.misses += 1
        return self._miss_path(core, line)

    def _miss_path(self, core: CoreCaches, line: int):
        """L1-missing access: probe L2, L3, memory; fill on the way in."""
        if core.l2.lookup(line):
            core.l1.fill(line)
            self.level_counts[self.LEVEL_L2] += 1
            return self._l2_lat, None
        if self.l3.lookup(line):
            victim = core.l2.fill(line)
            core.l1.fill(line)
            self.level_counts[self.LEVEL_L3] += 1
            return self._l3_lat, victim
        self.l3.fill(line)
        victim = core.l2.fill(line)
        core.l1.fill(line)
        self.level_counts[self.LEVEL_MEM] += 1
        return self._mem_lat, victim

    def shared_access(self, line: int) -> int:
        """Access ``line`` at the shared level only (MVM controller path).

        Used for version-list lookups and commit-time version installs,
        which bypass the private caches (section 4.2: versioning happens
        at the L3/MVM level).
        """
        if self.l3.lookup(line):
            self.level_counts[self.LEVEL_L3] += 1
            return self._l3_lat
        self.l3.fill(line)
        self.level_counts[self.LEVEL_MEM] += 1
        return self._mem_lat

    def invalidate_everywhere(self, line: int, except_core: Optional[int] = None) -> int:
        """Invalidate ``line`` from sharers' private caches.

        Uses the directory's sharer set so only caches that may hold the
        line receive an invalidation; returns how many were sent (eager
        systems charge coherence cost per recipient).
        """
        sharers = self._sharers.get(line)
        if not sharers:
            return 0
        sent = 0
        for core_id in list(sharers):
            if core_id != except_core:
                self.cores[core_id].invalidate(line)
                sharers.discard(core_id)
                sent += 1
        self.invalidations_sent += sent
        return sent

    def sharer_count(self, line: int, except_core: Optional[int] = None) -> int:
        """Number of cores the directory lists as possible sharers."""
        sharers = self._sharers.get(line)
        if not sharers:
            return 0
        return len(sharers - ({except_core} if except_core is not None
                              else set()))

    def invalidate_core(self, core_id: int, line: int) -> None:
        """Invalidate ``line`` from one core's private caches.

        Used at SI-TM commit to force subsequent transactions on other
        cores to re-fetch the newest version (section 4.4: "snapshots need
        to be invalidated during commit").
        """
        self.cores[core_id].invalidate(line)

    def stats(self) -> dict:
        """Aggregate hit/miss statistics across levels."""
        return {
            "levels": dict(self.level_counts),
            "l3": {"hits": self.l3.hits, "misses": self.l3.misses,
                   "evictions": self.l3.evictions},
        }
