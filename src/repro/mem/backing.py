"""Flat word-addressed backing store.

This models DRAM contents for the *conventional* region and for the
newest-committed state of the MVM region (the MVM controller in
:mod:`repro.mvm` layers version history on top).  Reads of never-written
words return zero, like zero-initialised physical memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class BackingStore:
    """Sparse word-addressed memory."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load(self, addr: int) -> int:
        """Return the word at ``addr`` (0 if never stored)."""
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Store ``value`` at ``addr``."""
        self._words[addr] = value

    def load_line(self, words: range) -> Tuple[int, ...]:
        """Return the tuple of word values for a whole line."""
        return tuple(self._words.get(a, 0) for a in words)

    def store_line(self, words: range, values) -> None:
        """Store a whole line of word values."""
        for addr, value in zip(words, values):
            self._words[addr] = value

    def __len__(self) -> int:
        return len(self._words)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (address, value) pairs of all stored words."""
        return iter(self._words.items())
