"""Deterministic, seeded fault injection for the simulator.

The paper's contributions are exactly its rare paths: version-cap
overflow handled by coalescing (section 4.4), timestamp-counter
overflow handled by a software drain (section 4.1), and contention
behaviour under adversarial interleavings.  A reproduction that never
*provokes* those paths is only testing the happy case.  This module
defines a :class:`FaultPlan` — a frozen, JSON-round-trippable recipe of
faults to inject — and a :class:`FaultInjector` that the machine wires
into the engine, MVM controller and global clock when a plan is present
on :class:`~repro.common.config.SimConfig`.

Injection sites (see :data:`FAULT_SITES` for the machine-readable
registry):

* **version-cap squeeze** — :meth:`FaultInjector.squeeze` shrinks
  ``mvm.max_versions`` for a window of install calls, forcing the
  coalesce/overflow machinery under workloads that would never hit the
  configured cap;
* **forced timestamp overflow** — :meth:`FaultInjector.forced_overflow`
  makes :meth:`GlobalClock.begin_commit` raise
  :class:`~repro.common.errors.TimestampOverflowError` at chosen
  commit-reservation indices, exercising the drain protocol on demand;
* **GC pause** — every coalesce/collect event during an install adds
  ``gc_pause_cycles`` to the committing transaction, modelling a slow
  reclamation walk;
* **begin-stall storm** — :meth:`FaultInjector.begin_stall` makes the
  engine treat ``begin`` as stalled (rate + burst), modelling a
  saturated timestamp-issue port;
* **spurious aborts** — :meth:`FaultInjector.spurious_abort` dooms a
  transaction at commit with the backend's declared
  ``SPURIOUS_ABORT_CAUSE`` (rate + burst), modelling conflict-detection
  false positives;
* **capacity squeeze** — :meth:`FaultInjector.capacity_limits` caps the
  tracked read/write sets and the speculative version buffer below the
  configured bounds, forcing the declared capacity aborts
  (``read-capacity``/``write-capacity``/``version-capacity``) on
  workloads whose footprints would never hit the real limits;
* **worker crash / hang** — process-level faults
  (``crash_at_begin``/``hang_at_begin``) used by the executor's
  recovery tests: the worker SIGKILLs itself or sleeps mid-run.

Determinism: every probabilistic site draws from its own
:class:`~repro.common.rng.SplitRandom` stream keyed off
``FaultPlan.seed``, independent of the workload and engine streams, so
a fault campaign replays bit-identically and adding a new site never
perturbs existing ones.

Termination: faults may slow or abort transactions but must never make
a run hang forever.  The engine's retry-policy layer
(:mod:`repro.sim.retry`) guarantees this by escalating starving
transactions to a serial "golden token" mode during which the injector
is **suppressed** (:attr:`FaultInjector.suppressed`) — the token holder
runs fault-free and therefore commits.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.common.config import MVMConfig
from repro.common.errors import ConfigError
from repro.common.rng import SplitRandom, derive_seed

__all__ = ["FaultPlan", "FaultInjector", "FAULT_SITES"]


#: machine-readable registry of injection sites, rendered by
#: ``sitm-harness faults --list``
FAULT_SITES = [
    {"site": "version-cap-squeeze",
     "layer": "mvm/controller.py:install_line",
     "fields": "squeeze_max_versions, squeeze_start, squeeze_span",
     "effect": "shrinks mvm.max_versions for a window of installs, "
               "forcing coalesce/version-overflow paths"},
    {"site": "timestamp-overflow",
     "layer": "mvm/timestamps.py:begin_commit",
     "fields": "overflow_at_commits",
     "effect": "raises TimestampOverflowError at the listed "
               "commit-reservation indices (0-based)"},
    {"site": "gc-pause",
     "layer": "tm/sitm.py:commit (install loop)",
     "fields": "gc_pause_cycles",
     "effect": "charges extra cycles per coalesce/collect event during "
               "a commit's installs"},
    {"site": "begin-stall",
     "layer": "sim/engine.py:_begin",
     "fields": "begin_stall_rate, begin_stall_burst",
     "effect": "treats begin as stalled (probabilistic bursts), "
               "modelling a saturated timestamp-issue port"},
    {"site": "spurious-abort",
     "layer": "sim/engine.py:_commit",
     "fields": "abort_rate, abort_burst",
     "effect": "aborts at commit with the backend's declared "
               "SPURIOUS_ABORT_CAUSE (conflict false positives)"},
    {"site": "capacity-squeeze",
     "layer": "tm/api.py:_charge_{read,write,version}_capacity",
     "fields": "squeeze_read_lines, squeeze_write_lines, "
               "squeeze_buffer_entries",
     "effect": "caps the tracked read/write sets and the speculative "
               "version buffer below the configured limits, forcing "
               "declared capacity aborts (read-capacity, "
               "write-capacity, version-capacity)"},
    {"site": "worker-crash",
     "layer": "sim/engine.py:_begin (process-level)",
     "fields": "crash_at_begin",
     "effect": "SIGKILLs the worker process at the Nth begin "
               "(executor recovery tests)"},
    {"site": "worker-hang",
     "layer": "sim/engine.py:_begin (process-level)",
     "fields": "hang_at_begin, hang_seconds",
     "effect": "sleeps hang_seconds at the Nth begin "
               "(executor timeout tests)"},
]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic recipe of faults to inject into one run.

    All sites default to *off*; a default-constructed plan is inert
    (``active()`` is False).  The plan is frozen and hashable so it can
    ride on frozen harness specs, and its canonical dict has a stable
    key set so spec hashes are reproducible.
    """

    #: root seed for the injector's random streams (independent of the
    #: workload seed, so the same plan replays across seeds)
    seed: int = 0

    # -- version-cap squeeze (MVM install site) -------------------------
    #: cap to squeeze ``mvm.max_versions`` down to (0 = site disabled)
    squeeze_max_versions: int = 0
    #: first install-call index (0-based) the squeeze applies to
    squeeze_start: int = 0
    #: number of install calls squeezed (0 = until the end of the run)
    squeeze_span: int = 0

    # -- forced timestamp overflow (global-clock site) ------------------
    #: commit-reservation indices (0-based) that raise overflow
    overflow_at_commits: Tuple[int, ...] = ()

    # -- GC/coalesce pause (SI-TM commit site) --------------------------
    #: extra cycles charged per coalesce/collect event during installs
    gc_pause_cycles: int = 0

    # -- begin-stall storm (engine begin site) --------------------------
    #: probability that a begin attempt starts a stall burst
    begin_stall_rate: float = 0.0
    #: consecutive begin attempts stalled once a burst starts
    begin_stall_burst: int = 1

    # -- spurious aborts (engine commit site) ---------------------------
    #: probability that a commit attempt starts an abort burst
    abort_rate: float = 0.0
    #: consecutive commit attempts aborted once a burst starts
    abort_burst: int = 1

    # -- capacity squeeze (TM tracking sites) ---------------------------
    #: cap the tracked read set to this many lines (0 = site disabled)
    squeeze_read_lines: int = 0
    #: cap the tracked write set to this many lines (0 = site disabled)
    squeeze_write_lines: int = 0
    #: cap the speculative version buffer to this many entries (0 = off)
    squeeze_buffer_entries: int = 0

    # -- process-level faults (executor recovery tests) -----------------
    #: SIGKILL the worker at the Nth begin call (1-based, 0 = off)
    crash_at_begin: int = 0
    #: sleep at the Nth begin call (1-based, 0 = off)
    hang_at_begin: int = 0
    #: how long the hang sleeps, in wall-clock seconds
    hang_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.squeeze_max_versions < 0:
            raise ConfigError("squeeze_max_versions must be >= 0")
        if self.squeeze_start < 0 or self.squeeze_span < 0:
            raise ConfigError("squeeze window must be non-negative")
        if not 0.0 <= self.begin_stall_rate <= 1.0:
            raise ConfigError("begin_stall_rate must be in [0, 1]")
        if not 0.0 <= self.abort_rate <= 1.0:
            raise ConfigError("abort_rate must be in [0, 1]")
        if self.begin_stall_burst < 1 or self.abort_burst < 1:
            raise ConfigError("burst lengths must be >= 1")
        if any(i < 0 for i in self.overflow_at_commits):
            raise ConfigError("overflow_at_commits indices must be >= 0")
        if self.gc_pause_cycles < 0:
            raise ConfigError("gc_pause_cycles must be >= 0")
        if (self.squeeze_read_lines < 0 or self.squeeze_write_lines < 0
                or self.squeeze_buffer_entries < 0):
            raise ConfigError("capacity squeezes must be >= 0")
        if self.crash_at_begin < 0 or self.hang_at_begin < 0:
            raise ConfigError("crash/hang begin indices must be >= 0")
        if self.hang_seconds < 0:
            raise ConfigError("hang_seconds must be >= 0")
        # tuples survive from_dict round trips as lists otherwise
        if not isinstance(self.overflow_at_commits, tuple):
            object.__setattr__(self, "overflow_at_commits",
                               tuple(self.overflow_at_commits))

    def active(self) -> bool:
        """True when at least one site is enabled."""
        return bool(self.squeeze_max_versions
                    or self.overflow_at_commits
                    or self.gc_pause_cycles
                    or self.begin_stall_rate
                    or self.abort_rate
                    or self.squeezes_capacity()
                    or self.crash_at_begin
                    or self.hang_at_begin)

    def squeezes_capacity(self) -> bool:
        """True when the capacity-squeeze site is enabled."""
        return bool(self.squeeze_read_lines or self.squeeze_write_lines
                    or self.squeeze_buffer_entries)

    def needs_worker(self) -> bool:
        """True when the plan carries process-level faults.

        ``crash_at_begin`` SIGKILLs and ``hang_at_begin`` wedges the
        *executing process*: such plans must only ever run inside a
        sacrificial pool worker, never inline in the harness process.
        """
        return bool(self.crash_at_begin or self.hang_at_begin)

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set, tuple -> list)."""
        return {
            "seed": self.seed,
            "squeeze_max_versions": self.squeeze_max_versions,
            "squeeze_start": self.squeeze_start,
            "squeeze_span": self.squeeze_span,
            "overflow_at_commits": list(self.overflow_at_commits),
            "gc_pause_cycles": self.gc_pause_cycles,
            "begin_stall_rate": self.begin_stall_rate,
            "begin_stall_burst": self.begin_stall_burst,
            "abort_rate": self.abort_rate,
            "abort_burst": self.abort_burst,
            "squeeze_read_lines": self.squeeze_read_lines,
            "squeeze_write_lines": self.squeeze_write_lines,
            "squeeze_buffer_entries": self.squeeze_buffer_entries,
            "crash_at_begin": self.crash_at_begin,
            "hang_at_begin": self.hang_at_begin,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (tolerates missing keys)."""
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "overflow_at_commits" in kwargs:
            kwargs["overflow_at_commits"] = tuple(
                kwargs["overflow_at_commits"])
        return cls(**kwargs)


class FaultInjector:
    """Run-scoped state for one :class:`FaultPlan`.

    Created by :class:`~repro.sim.machine.Machine` when the config
    carries an active plan, and shared (one instance) by the engine,
    the MVM controller and the global clock.  All methods are cheap on
    the paths where the plan leaves a site disabled, and every consumer
    guards the whole thing with ``machine.faults is not None``, so the
    no-plan overhead is a single attribute test.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        root = SplitRandom(derive_seed(plan.seed, "fault-injector"))
        self._stall_rng = root.split("begin-stall")
        self._abort_rng = root.split("spurious-abort")
        #: golden-token mode: the engine sets this while a serial
        #: escalated transaction runs, guaranteeing it commits
        self.suppressed = False
        #: per-site counts of faults actually injected
        self.injected: Dict[str, int] = {}
        self._begins = 0
        self._reservations = 0
        self._installs = 0
        self._stall_burst_left = 0
        self._abort_burst_left = 0
        self._gc_pause_pending = 0
        self._hang_done = False

    def _record(self, site: str, amount: int = 1) -> None:
        self.injected[site] = self.injected.get(site, 0) + amount

    # -- engine begin site ----------------------------------------------

    def begin_stall(self) -> bool:
        """True when this begin attempt must stall (engine site).

        Also hosts the process-level crash/hang faults: they key off
        the begin-call count and stay live even while the injector is
        suppressed, because they model *worker* failure, not protocol
        pressure.
        """
        self._begins += 1
        plan = self.plan
        if plan.crash_at_begin and self._begins == plan.crash_at_begin:
            os.kill(os.getpid(), signal.SIGKILL)
        if (plan.hang_at_begin and not self._hang_done
                and self._begins >= plan.hang_at_begin):
            self._hang_done = True
            time.sleep(plan.hang_seconds)
        if self.suppressed:
            return False
        if self._stall_burst_left > 0:
            self._stall_burst_left -= 1
            self._record("begin-stall")
            return True
        if (plan.begin_stall_rate
                and self._stall_rng.random() < plan.begin_stall_rate):
            self._stall_burst_left = plan.begin_stall_burst - 1
            self._record("begin-stall")
            return True
        return False

    # -- engine commit site ---------------------------------------------

    def spurious_abort(self) -> bool:
        """True when this commit attempt must abort instead."""
        if self.suppressed:
            return False
        plan = self.plan
        if self._abort_burst_left > 0:
            self._abort_burst_left -= 1
            self._record("spurious-abort")
            return True
        if plan.abort_rate and self._abort_rng.random() < plan.abort_rate:
            self._abort_burst_left = plan.abort_burst - 1
            self._record("spurious-abort")
            return True
        return False

    # -- TM capacity-tracking sites -------------------------------------

    def capacity_limits(self) -> Tuple[int, int, int]:
        """Squeezed ``(read, write, buffer)`` capacity caps, 0 = off.

        Suppression (golden-token mode) disables the squeeze entirely:
        a serial escalated transaction must be able to commit whatever
        its footprint, which is exactly how a squeezed run terminates.
        """
        if self.suppressed:
            return (0, 0, 0)
        plan = self.plan
        return (plan.squeeze_read_lines, plan.squeeze_write_lines,
                plan.squeeze_buffer_entries)

    def note_capacity_abort(self, kind: str) -> None:
        """Count a capacity abort caused by the squeeze (not the config)."""
        self._record("capacity-squeeze")

    # -- MVM install site -----------------------------------------------

    def squeeze(self, config: MVMConfig) -> MVMConfig:
        """The (possibly squeezed) MVM config for this install call."""
        index = self._installs
        self._installs += 1
        plan = self.plan
        if self.suppressed or not plan.squeeze_max_versions:
            return config
        if index < plan.squeeze_start:
            return config
        if plan.squeeze_span and index >= plan.squeeze_start + plan.squeeze_span:
            return config
        cap = min(plan.squeeze_max_versions, config.max_versions)
        if cap == config.max_versions:
            return config
        self._record("version-cap-squeeze")
        return replace(config, max_versions=cap)

    def note_gc_event(self, coalesced: int, dropped: int) -> None:
        """Accrue a GC pause for reclaim work during an install."""
        if self.suppressed or not self.plan.gc_pause_cycles:
            return
        events = coalesced + dropped
        if events:
            pause = self.plan.gc_pause_cycles * events
            self._gc_pause_pending += pause
            self._record("gc-pause", events)

    def drain_gc_pause(self) -> int:
        """Cycles of accrued GC pause, charged once by the committer."""
        pause = self._gc_pause_pending
        self._gc_pause_pending = 0
        return pause

    # -- global-clock site ----------------------------------------------

    def forced_overflow(self) -> bool:
        """True when this commit reservation must raise overflow."""
        index = self._reservations
        self._reservations += 1
        if self.suppressed:
            return False
        if index in self.plan.overflow_at_commits:
            self._record("timestamp-overflow")
            return True
        return False

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe summary of what was actually injected."""
        return {
            "injected": {k: self.injected[k] for k in sorted(self.injected)},
            "begins_seen": self._begins,
            "commit_reservations_seen": self._reservations,
            "installs_seen": self._installs,
        }


def adversarial_plan(seed: int = 0) -> FaultPlan:
    """The pinned adversarial campaign plan (CI's ``fault-smoke``).

    Combines the three pressure sites the paper's rare paths care
    about: a hard version-cap squeeze, forced timestamp overflows early
    in the run, and heavy spurious-abort bursts.  Under an escalating
    retry policy every backend terminates well inside the step budget.
    The abort rate stays below 1.0 so commits still reach the
    squeeze/overflow sites; the escalation-disabled livelock
    demonstration (:func:`repro.oracle.fuzz.fault_campaign`) hardens it
    to 1.0 so non-termination is deterministic.
    """
    return FaultPlan(
        seed=seed,
        squeeze_max_versions=1,
        overflow_at_commits=(1, 3, 5),
        gc_pause_cycles=50,
        begin_stall_rate=0.25,
        begin_stall_burst=6,
        abort_rate=0.9,
        abort_burst=4,
    )
