"""Line remapping on the indirection layer (section 3.3).

Two more of the paper's indirection-layer applications:

* **fine-grain chipkill** — "deactivate defect memory cells on a per line
  basis to improve reliability and yield": a defective physical line is
  remapped to a line from a spare pool; software addresses never change.
* **bit steering** — "redirect traffic in heterogeneous memory systems
  transparently to software": lines are steered between memory tiers with
  different access latencies (e.g. fast stacked DRAM vs capacity-optimised
  slow memory).

Both are pure indirection-table operations: the MVM already dereferences
a version-list entry per access, so adding a remap/tier attribute costs
no extra lookup.  The :class:`LineRemapper` keeps that bookkeeping and
answers two questions per line — *which physical line actually serves
this address* and *how many extra cycles its tier adds* — plus repair and
migration statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.common.errors import ConfigError, MVMError

#: default tier latencies (extra cycles on top of the base memory access)
DEFAULT_TIERS = {"fast": -40, "normal": 0, "slow": 120}


@dataclass(frozen=True)
class RemapStats:
    """Reliability/placement counters."""

    deactivated_lines: int
    spares_remaining: int
    steered_lines: int
    repairs_denied: int


class LineRemapper:
    """Chipkill-style spare remapping + tier steering for line addresses."""

    def __init__(self, spare_lines: int = 64,
                 tiers: Optional[Dict[str, int]] = None):
        if spare_lines < 0:
            raise ConfigError("spare_lines must be >= 0")
        self._tiers = dict(tiers) if tiers is not None else dict(DEFAULT_TIERS)
        if "normal" not in self._tiers:
            raise ConfigError('tier table must define "normal"')
        #: spare physical lines, allocated top-down from a reserved region
        self._spare_pool = [(-2 - i) for i in range(spare_lines)]
        self._remap: Dict[int, int] = {}
        self._dead: Set[int] = set()
        self._tier_of: Dict[int, str] = {}
        self.repairs_denied = 0

    # ------------------------------------------------------------------
    # chipkill

    def deactivate(self, line: int) -> Optional[int]:
        """Mark ``line`` defective; remap it to a spare.

        Returns the spare's physical id, or ``None`` (and counts a denied
        repair) when the spare pool is exhausted — the yield limit.
        """
        if line in self._dead:
            raise MVMError(f"line {line:#x} already deactivated")
        if not self._spare_pool:
            self.repairs_denied += 1
            return None
        spare = self._spare_pool.pop()
        self._dead.add(line)
        self._remap[line] = spare
        return spare

    def is_deactivated(self, line: int) -> bool:
        """True when ``line``'s original cells are out of service."""
        return line in self._dead

    def resolve(self, line: int) -> int:
        """Physical line serving address ``line`` (identity when healthy)."""
        return self._remap.get(line, line)

    # ------------------------------------------------------------------
    # bit steering

    def steer(self, line: int, tier: str) -> None:
        """Place ``line`` in a memory tier."""
        if tier not in self._tiers:
            raise ConfigError(
                f"unknown tier {tier!r}; known: {sorted(self._tiers)}")
        if tier == "normal":
            self._tier_of.pop(line, None)
        else:
            self._tier_of[line] = tier

    def tier(self, line: int) -> str:
        """Current tier of ``line``."""
        return self._tier_of.get(line, "normal")

    def latency_adjustment(self, line: int) -> int:
        """Extra cycles (possibly negative for fast tiers) for ``line``."""
        return self._tiers[self.tier(line)]

    # ------------------------------------------------------------------

    def stats(self) -> RemapStats:
        """Current repair/placement counters."""
        return RemapStats(
            deactivated_lines=len(self._dead),
            spares_remaining=len(self._spare_pool),
            steered_lines=len(self._tier_of),
            repairs_denied=self.repairs_denied)
