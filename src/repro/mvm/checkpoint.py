"""Checkpointing on the MVM indirection layer (section 3.3).

The paper lists checkpointing as a further use of the multiversioned
memory: "snapshots can be applied not only to multiversion concurrency
control but also to provide an efficient checkpointing mechanism that can
be utilized by speculation techniques or for resiliency by allowing
rollback to a consistent state in response to an error."

A checkpoint here is exactly a pinned snapshot: creating one registers a
start timestamp in the active-transaction table (so garbage collection
and coalescing preserve every version the checkpoint can see — zero data
is copied), reading through it uses ordinary snapshot reads, and rollback
truncates every line's version history back to the checkpoint's
timestamp.  Release simply unpins.

Limitations follow from the mechanism, as in the paper: only
*multiversioned* memory is checkpointed (conventional-region data is
updated in place), and rollback requires that no transactions are active
(attempting it raises the typed
:class:`~repro.common.errors.CheckpointRollbackError`).

**Configuration**: a long-lived checkpoint pins version history, so under
the default 4-version ABORT_WRITER cap, transactions that keep writing a
hot line will abort on VERSION_OVERFLOW for as long as the pin exists —
potentially forever.  :meth:`CheckpointManager.create` emits a one-time
warning when a checkpoint is created under that cap policy.  Run
checkpointing workloads with
``MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED)`` (the paper's noted
fallback for deep history is reverting to page-level copy-on-write, which
unbounded versions model) — the live store's shards do exactly that, and
sidestep the pin-retention cost by *advancing* their recovery checkpoint
to every published commit (:meth:`CheckpointManager.advance`), so the GC
watermark follows the publish frontier instead of freezing at shard
start.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.config import VersionCapPolicy
from repro.common.errors import CheckpointRollbackError, MVMError

if TYPE_CHECKING:  # avoid a circular import: sim.machine imports repro.mvm
    from repro.mvm.controller import MVMController
    from repro.sim.machine import Machine

#: process-wide one-shot latch for the capped-pin footgun warning
_warned_capped_pin = False


@dataclass(frozen=True)
class Checkpoint:
    """A pinned point-in-time view of multiversioned memory."""

    checkpoint_id: int
    timestamp: int


class CheckpointManager:
    """Create, read through, roll back to, and release MVM checkpoints."""

    def __init__(self, machine: "Optional[Machine]" = None, *,
                 controller: "Optional[MVMController]" = None):
        if (machine is None) == (controller is None):
            raise MVMError(
                "CheckpointManager needs exactly one of a machine or a "
                "bare MVM controller")
        self.machine = machine
        if machine is not None:
            self._mvm = machine.mvm
            self._clock = machine.clock
        else:
            self._mvm = controller
            self._clock = controller.clock
        self._next_id = 0
        self._live: Dict[int, Checkpoint] = {}

    @classmethod
    def for_controller(cls, controller: "MVMController"
                       ) -> "CheckpointManager":
        """A manager over a bare controller (no simulated machine).

        The live store's shards run :class:`MVMController` outside the
        simulator; their crash-recovery checkpoints pin and truncate
        through this manager using the controller's own clock.  The
        :meth:`read` word accessor needs a machine's address map and is
        unavailable in this mode.
        """
        return cls(controller=controller)

    def create(self) -> Checkpoint:
        """Capture the current committed state (O(1): a pinned timestamp)."""
        global _warned_capped_pin
        if (not _warned_capped_pin
                and self._mvm.config.cap_policy
                is VersionCapPolicy.ABORT_WRITER):
            _warned_capped_pin = True
            warnings.warn(
                "checkpoint created under the ABORT_WRITER version cap "
                f"(max_versions={self._mvm.config.max_versions}): while "
                "the pin exists, writers to a hot line can abort on "
                "VERSION_OVERFLOW forever (pin-induced livelock); use "
                "VersionCapPolicy.UNBOUNDED for checkpointing workloads",
                RuntimeWarning, stacklevel=2)
        timestamp = self._clock.next_start()
        if timestamp is None:
            raise MVMError("cannot checkpoint while a commit is in flight")
        checkpoint = Checkpoint(self._next_id, timestamp)
        self._next_id += 1
        self._mvm.active.add(timestamp)
        self._live[checkpoint.checkpoint_id] = checkpoint
        return checkpoint

    def advance(self, checkpoint: Checkpoint,
                timestamp: int) -> Checkpoint:
        """Move a live checkpoint's pin forward to ``timestamp``.

        Atomically (pin-new-then-unpin-old, so the GC watermark never
        transiently regresses past both) re-pins the checkpoint at a
        later timestamp.  The store's shards call this with each
        published commit's end timestamp: the recovery checkpoint then
        always equals the publish frontier, rollback after a crash
        discards exactly the unpublished residue, and version GC keeps
        collecting behind it.
        """
        self._require_live(checkpoint)
        if timestamp < checkpoint.timestamp:
            raise MVMError(
                f"checkpoint pins only advance: {timestamp} < "
                f"{checkpoint.timestamp}")
        if timestamp == checkpoint.timestamp:
            return checkpoint
        self._mvm.active.add(timestamp)
        self._mvm.active.remove(checkpoint.timestamp)
        del self._live[checkpoint.checkpoint_id]
        advanced = Checkpoint(self._next_id, timestamp)
        self._next_id += 1
        self._live[advanced.checkpoint_id] = advanced
        return advanced

    def read(self, checkpoint: Checkpoint, addr: int) -> int:
        """Read one word as of the checkpoint."""
        self._require_live(checkpoint)
        if self.machine is None:
            raise MVMError(
                "word reads need a machine address map; this manager "
                "wraps a bare controller (for_controller)")
        amap = self.machine.address_map
        if not amap.is_mvm(addr):
            raise MVMError(
                f"address {addr:#x} is not in multiversioned memory; only "
                "the MVM region is checkpointed (section 3.3)")
        line = amap.line_of(addr)
        data = self._mvm.snapshot_read(line, checkpoint.timestamp)
        if data is None:
            return 0
        return data[amap.word_in_line(addr)]

    def rollback(self, checkpoint: Checkpoint) -> int:
        """Restore the MVM to the checkpoint; returns versions discarded.

        Every version newer than the checkpoint's timestamp is removed —
        the pre-existing versions *are* the rollback data, so nothing is
        copied (the "no time-consuming undo" property of section 4.3).
        Raises :class:`~repro.common.errors.CheckpointRollbackError`
        when transactions are still in flight.
        """
        self._require_live(checkpoint)
        if len(self._mvm.active) > self.live_count:
            raise CheckpointRollbackError(
                f"cannot roll back to checkpoint "
                f"{checkpoint.checkpoint_id}: "
                f"{len(self._mvm.active) - self.live_count} "
                "transaction(s) still in flight — drain or abort them "
                "first")
        return self._mvm.truncate_after(checkpoint.timestamp)

    def release(self, checkpoint: Checkpoint) -> None:
        """Unpin the checkpoint; its versions become collectable."""
        self._require_live(checkpoint)
        self._mvm.active.remove(checkpoint.timestamp)
        del self._live[checkpoint.checkpoint_id]

    def _require_live(self, checkpoint: Checkpoint) -> None:
        if checkpoint.checkpoint_id not in self._live:
            raise MVMError(
                f"checkpoint {checkpoint.checkpoint_id} is not live")

    @property
    def live_count(self) -> int:
        """Number of currently pinned checkpoints."""
        return len(self._live)
