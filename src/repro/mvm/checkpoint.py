"""Checkpointing on the MVM indirection layer (section 3.3).

The paper lists checkpointing as a further use of the multiversioned
memory: "snapshots can be applied not only to multiversion concurrency
control but also to provide an efficient checkpointing mechanism that can
be utilized by speculation techniques or for resiliency by allowing
rollback to a consistent state in response to an error."

A checkpoint here is exactly a pinned snapshot: creating one registers a
start timestamp in the active-transaction table (so garbage collection
and coalescing preserve every version the checkpoint can see — zero data
is copied), reading through it uses ordinary snapshot reads, and rollback
truncates every line's version history back to the checkpoint's
timestamp.  Release simply unpins.

Limitations follow from the mechanism, as in the paper: only
*multiversioned* memory is checkpointed (conventional-region data is
updated in place), and rollback requires that no transactions are active.

**Configuration**: a long-lived checkpoint pins version history, so under
the default 4-version ABORT_WRITER cap, transactions that keep writing a
hot line will abort on VERSION_OVERFLOW for as long as the pin exists —
potentially forever.  Run checkpointing workloads with
``MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED)`` (the paper's noted
fallback for deep history is reverting to page-level copy-on-write, which
unbounded versions model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.common.errors import MVMError

if TYPE_CHECKING:  # avoid a circular import: sim.machine imports repro.mvm
    from repro.sim.machine import Machine


@dataclass(frozen=True)
class Checkpoint:
    """A pinned point-in-time view of multiversioned memory."""

    checkpoint_id: int
    timestamp: int


class CheckpointManager:
    """Create, read through, roll back to, and release MVM checkpoints."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._mvm = machine.mvm
        self._next_id = 0
        self._live: Dict[int, Checkpoint] = {}

    def create(self) -> Checkpoint:
        """Capture the current committed state (O(1): a pinned timestamp)."""
        timestamp = self.machine.clock.next_start()
        if timestamp is None:
            raise MVMError("cannot checkpoint while a commit is in flight")
        checkpoint = Checkpoint(self._next_id, timestamp)
        self._next_id += 1
        self._mvm.active.add(timestamp)
        self._live[checkpoint.checkpoint_id] = checkpoint
        return checkpoint

    def read(self, checkpoint: Checkpoint, addr: int) -> int:
        """Read one word as of the checkpoint."""
        self._require_live(checkpoint)
        amap = self.machine.address_map
        if not amap.is_mvm(addr):
            raise MVMError(
                f"address {addr:#x} is not in multiversioned memory; only "
                "the MVM region is checkpointed (section 3.3)")
        line = amap.line_of(addr)
        data = self._mvm.snapshot_read(line, checkpoint.timestamp)
        if data is None:
            return 0
        return data[amap.word_in_line(addr)]

    def rollback(self, checkpoint: Checkpoint) -> int:
        """Restore the MVM to the checkpoint; returns versions discarded.

        Every version newer than the checkpoint's timestamp is removed —
        the pre-existing versions *are* the rollback data, so nothing is
        copied (the "no time-consuming undo" property of section 4.3).
        """
        self._require_live(checkpoint)
        if len(self._mvm.active) > self.live_count:
            raise MVMError("cannot roll back with transactions in flight")
        return self._mvm.truncate_after(checkpoint.timestamp)

    def release(self, checkpoint: Checkpoint) -> None:
        """Unpin the checkpoint; its versions become collectable."""
        self._require_live(checkpoint)
        self._mvm.active.remove(checkpoint.timestamp)
        del self._live[checkpoint.checkpoint_id]

    def _require_live(self, checkpoint: Checkpoint) -> None:
        if checkpoint.checkpoint_id not in self._live:
            raise MVMError(
                f"checkpoint {checkpoint.checkpoint_id} is not live")

    @property
    def live_count(self) -> int:
        """Number of currently pinned checkpoints."""
        return len(self._live)
