"""Analytic MVM capacity and bandwidth overhead model (section 3.2).

The indirection layer stores, per line address, ``max_versions`` pointers
and ``max_versions`` timestamps.  With 32-bit pointers and timestamps and
512-bit (64-byte) lines the paper derives:

* four live versions per address -> ``2 * 32 / 512 = 12.5%`` metadata
  overhead per line;
* one live version (worst case)  -> ``50%`` per allocated MVM line;
* bundling 8 lines per version-list entry divides the worst case by 8
  (-> ~6%), trading capacity overhead for copy-on-write write amplification;
* a metadata line holds eight 64-bit version references, so the best-case
  read-bandwidth increase is one reference per data line: 64/512 = 12.5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MVMConfig


@dataclass(frozen=True)
class OverheadReport:
    """Capacity/bandwidth overheads for a given MVM configuration."""

    metadata_bits_per_address: int
    line_bits: int
    overhead_at_full_versions: float
    overhead_worst_case: float
    bandwidth_best_case: float
    entries_per_metadata_line: float


def metadata_bits_per_address(config: MVMConfig) -> int:
    """Version-list bits stored per line address."""
    return config.max_versions * (config.pointer_bits + config.timestamp_bits)


def capacity_overhead(config: MVMConfig, live_versions: int,
                      line_bytes: int = 64) -> float:
    """Metadata overhead as a fraction of live data for a line.

    ``live_versions`` is how many data versions currently exist for the
    address; the version-list entry is always fully provisioned, so fewer
    live versions mean proportionally higher overhead (50% worst case with
    one live version, 12.5% with four, for the default configuration).
    Bundling divides the per-address metadata across ``bundle_lines`` lines.
    """
    if live_versions < 1:
        raise ValueError("need at least one live version")
    line_bits = line_bytes * 8
    meta = metadata_bits_per_address(config) / config.bundle_lines
    return meta / (live_versions * line_bits)


def bandwidth_overhead_best_case(config: MVMConfig,
                                 line_bytes: int = 64) -> float:
    """Best-case read-bandwidth increase from fetching version references.

    A version *reference* is one pointer + one timestamp (64 bits by
    default); a metadata line holds eight of them, and with perfect
    locality a data-line access amortises to fetching a single reference:
    ``64 / 512 = 12.5%`` extra bandwidth — the paper's best case.
    """
    line_bits = line_bytes * 8
    entry_bits = config.pointer_bits + config.timestamp_bits
    return entry_bits / line_bits


def copy_on_write_amplification(config: MVMConfig) -> int:
    """Lines copied on the first transactional write to a bundle.

    Bundling (section 3.2) requires copying the whole bundle on first
    write: the capacity saving costs write amplification.
    """
    return config.bundle_lines


def report(config: MVMConfig, line_bytes: int = 64) -> OverheadReport:
    """Full section 3.2 overhead report for ``config``."""
    line_bits = line_bytes * 8
    entry_bits = config.pointer_bits + config.timestamp_bits
    return OverheadReport(
        metadata_bits_per_address=metadata_bits_per_address(config),
        line_bits=line_bits,
        overhead_at_full_versions=capacity_overhead(
            config, config.max_versions, line_bytes),
        overhead_worst_case=capacity_overhead(config, 1, line_bytes),
        bandwidth_best_case=bandwidth_overhead_best_case(config, line_bytes),
        entries_per_metadata_line=line_bits / entry_bits,
    )
