"""Version-depth access census (Appendix A / Table 2).

The paper configures an *unbounded*-version MVM, runs every benchmark with
32 threads, and counts transactional accesses by the age rank of the version
they hit: 1st = the most current version, 2nd = the one before it, and so
on; ranks beyond the 5th are summed into a *tail* bucket.  The census
motivates the 4-version cap (fewer than 1% of accesses go past the 4th).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List


class VersionCensus:
    """Counts transactional read accesses per version depth."""

    TAIL_RANK = 6  # ranks 6+ are reported as "tail"

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, depth: int) -> None:
        """Record one transactional access to the ``depth``-newest version."""
        if depth < 1:
            return
        self._counts[min(depth, self.TAIL_RANK)] += 1

    @property
    def total(self) -> int:
        """Total recorded accesses."""
        return sum(self._counts.values())

    def count(self, depth: int) -> int:
        """Accesses at exactly ``depth`` (depth >= TAIL_RANK = tail bucket)."""
        return self._counts.get(depth, 0)

    def rows(self) -> List[Dict[str, object]]:
        """Table 2 rows: version label + access count."""
        labels = ["1st", "2nd", "3rd", "4th", "5th", "tail"]
        return [{"version": label, "accesses": self._counts.get(rank, 0)}
                for rank, label in enumerate(labels, start=1)]

    def fraction_deeper_than(self, depth: int) -> float:
        """Fraction of accesses to versions strictly older than ``depth``.

        The paper's claim: ``fraction_deeper_than(4) < 0.01`` at 32 threads.
        """
        total = self.total
        if total == 0:
            return 0.0
        deeper = sum(c for d, c in self._counts.items() if d > depth)
        return deeper / total

    def merge(self, other: "VersionCensus") -> None:
        """Accumulate another census into this one (across seeds)."""
        self._counts.update(other._counts)
