"""Global timestamp infrastructure (sections 4.1 and 4.2).

The uncore holds a single global timestamp counter plus vectors of start and
end timestamps.  Three mechanisms from the paper are modelled exactly:

* **Unique start/end timestamps** via atomic increment of the global counter.
* **The Δ-commit race protocol** (section 4.2): a committing transaction
  obtains ``end_ts = global + Δ`` while incrementing the visible counter by
  one, so transactions that start *during* the commit get start timestamps
  below the commit's end timestamp and cannot observe a half-installed write
  set.  If Δ+1 transactions start while a commit is in flight, the starter
  must stall.  On commit completion the counter jumps to the end timestamp.
* **Counter overflow** (section 4.1): on overflow all active transactions
  abort and control traps to software; we surface
  :class:`~repro.common.errors.TimestampOverflowError`.

The oldest-active-transaction priority queue that drives garbage collection
(section 3.1) lives in :class:`ActiveTransactionTable`.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.common.errors import MVMError, TimestampOverflowError


class GlobalClock:
    """The global timestamp counter with the Δ-commit protocol."""

    __slots__ = ("_now", "_delta", "_max", "_pending_commits",
                 "start_stalls", "epoch", "faults")

    def __init__(self, delta: int = 64, max_timestamp: Optional[int] = None):
        if delta < 1:
            raise MVMError("delta must be >= 1")
        self._now = 0
        self._delta = delta
        self._max = max_timestamp
        #: end timestamps of commits currently in flight
        self._pending_commits: List[int] = []
        self.start_stalls = 0
        #: timestamp epoch: bumped by every overflow reset, so observers
        #: (e.g. the isolation oracle) can order timestamps across the
        #: counter restarting from zero — no transaction spans epochs
        #: because the software handler aborts all of them first
        self.epoch = 0
        #: fault injector (:class:`repro.faults.FaultInjector`) or None;
        #: set by the machine when the config carries an active plan
        self.faults = None

    @property
    def now(self) -> int:
        """Current visible value of the global counter."""
        return self._now

    @property
    def delta(self) -> int:
        """The Δ headroom reserved per in-flight commit."""
        return self._delta

    def _bump(self, amount: int = 1) -> None:
        if self._max is not None and self._now + amount > self._max:
            raise TimestampOverflowError(
                f"timestamp counter would exceed {self._max}")
        self._now += amount

    def next_start(self) -> Optional[int]:
        """Obtain a start timestamp, or ``None`` if the starter must stall.

        A starter stalls when incrementing the visible counter would reach
        the end timestamp of an in-flight commit (the Δ+1'th start during
        that commit).
        """
        if self._pending_commits and self._now + 1 >= self._pending_commits[0]:
            self.start_stalls += 1
            return None
        self._bump()
        return self._now

    def begin_commit(self) -> int:
        """Reserve an end timestamp ``global + Δ`` for a starting commit."""
        if self.faults is not None and self.faults.forced_overflow():
            raise TimestampOverflowError(
                "injected timestamp overflow (fault plan)")
        end_ts = self._now + self._delta
        if self._max is not None and end_ts > self._max:
            raise TimestampOverflowError(
                f"timestamp counter would exceed {self._max}")
        self._bump()
        bisect.insort(self._pending_commits, end_ts)
        return end_ts

    def finish_commit(self, end_ts: int) -> None:
        """Complete a commit: the global counter jumps to its end timestamp."""
        idx = bisect.bisect_left(self._pending_commits, end_ts)
        if idx >= len(self._pending_commits) or self._pending_commits[idx] != end_ts:
            raise MVMError(f"finish_commit of unknown end timestamp {end_ts}")
        self._pending_commits.pop(idx)
        if end_ts > self._now:
            self._now = end_ts

    def abandon_commit(self, end_ts: int) -> None:
        """A committing transaction aborted; release its reservation."""
        self.finish_commit(end_ts)

    def reset_after_overflow(self) -> None:
        """Software overflow handler: restart the counter from zero.

        Callers must have aborted all active transactions and discarded all
        version history first (the MVM controller does this).
        """
        self._now = 0
        self._pending_commits.clear()
        self.epoch += 1


class ActiveTransactionTable:
    """Sorted multiset of the start timestamps of in-flight transactions.

    The head is the oldest active transaction, which bounds how much version
    history garbage collection must retain (section 3.1).  ``any_started_in``
    answers the coalescing question of Figure 4: did any active transaction
    start between two candidate version timestamps?
    """

    __slots__ = ("_starts", "_oldest")

    def __init__(self) -> None:
        self._starts: List[int] = []
        # cached head: ``oldest()`` runs on every version install (GC
        # consults it), mutations only at begin/commit/abort, so the
        # watermark is maintained on mutation and read for free
        self._oldest: Optional[int] = None

    def add(self, start_ts: int) -> None:
        """Register a transaction's start timestamp."""
        bisect.insort(self._starts, start_ts)
        self._oldest = self._starts[0]

    def remove(self, start_ts: int) -> None:
        """Remove a start timestamp on commit or abort."""
        idx = bisect.bisect_left(self._starts, start_ts)
        if idx >= len(self._starts) or self._starts[idx] != start_ts:
            raise MVMError(f"unknown active start timestamp {start_ts}")
        self._starts.pop(idx)
        self._oldest = self._starts[0] if self._starts else None

    def oldest(self) -> Optional[int]:
        """Start timestamp of the oldest in-flight transaction."""
        return self._oldest

    def any_started_in(self, lo: int, hi: int) -> bool:
        """Any active transaction with ``lo < start_ts < hi``?"""
        idx = bisect.bisect_right(self._starts, lo)
        return idx < len(self._starts) and self._starts[idx] < hi

    def __len__(self) -> int:
        return len(self._starts)

    def __contains__(self, start_ts: int) -> bool:
        idx = bisect.bisect_left(self._starts, start_ts)
        return idx < len(self._starts) and self._starts[idx] == start_ts
