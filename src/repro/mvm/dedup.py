"""Line deduplication accounting on the indirection layer (section 3.3).

HICAMP-style deduplication maps multiple addresses to one physical line
when their contents are identical — the paper notes the MVM's indirection
layer enables this "particularly well for common cases like the zero
cache line".  This module measures the opportunity: a content-addressed
index over installed version data reporting how many physical lines a
deduplicating MVM would save, with the zero line tracked separately.

The index is *accounting only*: functional storage stays per-version (the
simulator has no memory pressure), which keeps the measurement honest —
it reports what the hardware feature would save, not a Python-level
optimisation.  It censuses the cumulative stream of installed version
data: every committed copy-on-write line is recorded, so the report
answers "of all version lines the MVM allocated, how many were duplicate
content?"
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Tuple

LineData = Tuple[int, ...]


@dataclass(frozen=True)
class DedupReport:
    """Capacity savings a deduplicating MVM would realise."""

    #: physical lines a non-deduplicating MVM stores
    total_lines: int
    #: distinct line contents (what a deduplicating MVM stores)
    unique_lines: int
    #: stored lines that are all zeros (the paper's headline case)
    zero_lines: int

    @property
    def saved_lines(self) -> int:
        """Lines deduplication eliminates."""
        return self.total_lines - self.unique_lines

    @property
    def savings_fraction(self) -> float:
        """Fraction of line storage saved."""
        if self.total_lines == 0:
            return 0.0
        return self.saved_lines / self.total_lines


class DedupIndex:
    """Content-addressed census of stored line data."""

    def __init__(self, words_per_line: int = 8):
        self._counts: Counter = Counter()
        self._zero = tuple([0] * words_per_line)

    def add(self, data: LineData) -> bool:
        """Record one stored line; True when it deduplicated."""
        duplicate = self._counts[data] > 0
        self._counts[data] += 1
        return duplicate

    def remove(self, data: LineData) -> None:
        """Un-record a line (version rollback or GC)."""
        if self._counts[data] > 0:
            self._counts[data] -= 1
            if self._counts[data] == 0:
                del self._counts[data]

    def report(self) -> DedupReport:
        """Current savings snapshot."""
        total = sum(self._counts.values())
        return DedupReport(
            total_lines=total,
            unique_lines=len(self._counts),
            zero_lines=self._counts.get(self._zero, 0))
