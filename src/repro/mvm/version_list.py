"""Per-line version lists (section 3, Figure 3).

A :class:`VersionList` holds the committed versions of one cache line,
oldest first, each a ``(timestamp, data)`` pair where ``data`` is the tuple
of word values of the whole line.  The list supports the three mechanisms
of section 3.1:

* **snapshot reads** — the most current version older than a transaction's
  start timestamp;
* **garbage collection on write** — versions older than the newest version
  that the oldest active transaction can see are deleted;
* **version coalescing** (Figure 4) — a new version *overwrites* the newest
  one when no active transaction started between their timestamps, bounding
  live versions by the number of concurrent transactions.

The version cap (default 4) is enforced here with the configured
:class:`~repro.common.config.VersionCapPolicy`.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.common.errors import MVMError
from repro.mvm.timestamps import ActiveTransactionTable

LineData = Tuple[int, ...]


class CapExceeded(Exception):
    """Installing this version would exceed the cap under ABORT_WRITER."""

    #: set by :meth:`repro.mvm.controller.MVMController.install_many` to
    #: the line whose install hit the cap, so TM COMMIT can report the
    #: conflict line without re-deriving it
    line: Optional[int] = None


class SnapshotTooOld(Exception):
    """No version old enough survives (DROP_OLDEST policy, section 3.1)."""


class VersionList:
    """Committed versions of one line, ordered by ascending timestamp."""

    __slots__ = ("_timestamps", "_data", "_installers", "_base_dropped")

    def __init__(self) -> None:
        self._timestamps: List[int] = []
        self._data: List[LineData] = []
        # Parallel to ``_timestamps``: the opaque identity of the
        # transaction that installed each version (``None`` for
        # non-transactional writes).  Conflict provenance reads it back
        # through :meth:`newest_installer` so first-committer-wins
        # validation can name the committer that doomed a victim.
        self._installers: List[Optional[object]] = []
        # The *implicit base version*: before the first transactional
        # version, the line's pre-transactional content (zeros, or data
        # written in place) is readable by arbitrarily old snapshots.  It
        # stops being available once GC or the DROP_OLDEST policy discards
        # history below the surviving versions.
        self._base_dropped = False

    def __len__(self) -> int:
        return len(self._timestamps)

    @property
    def timestamps(self) -> Tuple[int, ...]:
        """All version timestamps, oldest first."""
        return tuple(self._timestamps)

    def newest_timestamp(self) -> Optional[int]:
        """Timestamp of the most recent committed version."""
        return self._timestamps[-1] if self._timestamps else None

    def newest_data(self) -> Optional[LineData]:
        """Data of the most recent committed version."""
        return self._data[-1] if self._data else None

    def newest_installer(self) -> Optional[object]:
        """Identity passed to :meth:`install` for the newest version."""
        return self._installers[-1] if self._installers else None

    def read_at(self, start_ts: int) -> Tuple[Optional[LineData], int]:
        """Snapshot read: newest version with ``timestamp <= start_ts``.

        Returns ``(data, depth)`` where ``depth`` is 1 for the newest
        version, 2 for the second newest, ... (the Table 2 census metric).
        Returns ``(None, 0)`` when the line has no version visible to the
        snapshot; raises :class:`SnapshotTooOld` when versions exist but
        all are newer than the snapshot (possible under DROP_OLDEST).
        """
        if not self._timestamps:
            return None, 0
        if self._timestamps[-1] <= start_ts:
            # newest-visible fast path: the dominant case (most snapshots
            # are younger than the newest version) skips the bisect
            return self._data[-1], 1
        idx = bisect.bisect_right(self._timestamps, start_ts) - 1
        if idx < 0:
            if self._base_dropped:
                raise SnapshotTooOld(
                    f"oldest version {self._timestamps[0]} is newer than "
                    f"snapshot {start_ts} and the base version is gone")
            # implicit base version: the pre-transactional line content
            return None, len(self._timestamps) + 1
        depth = len(self._timestamps) - idx
        return self._data[idx], depth

    def overwrite_in_place(self, data: LineData) -> None:
        """Non-transactional write: modify the most current version in place.

        Section 3: "Non-transactional writes modify the most current version
        in place."  On a line with no versions, this installs version 0.
        """
        if self._data:
            self._data[-1] = data
        else:
            self._timestamps.append(0)
            self._data.append(data)
            self._installers.append(None)

    def collect_garbage(self, oldest_active: Optional[int]) -> int:
        """Drop versions invisible to every active transaction.

        Keeps the newest version whose timestamp is <= ``oldest_active``
        (the oldest snapshot still needs it) and everything newer.  Returns
        the number of versions deleted.
        """
        if oldest_active is None:
            # No active transactions: only the newest version matters.
            dropped = len(self._timestamps) - 1
            if dropped > 0:
                del self._timestamps[:dropped]
                del self._data[:dropped]
                del self._installers[:dropped]
                self._base_dropped = True
                return dropped
            self._base_dropped = self._base_dropped or bool(self._timestamps)
            return 0
        idx = bisect.bisect_right(self._timestamps, oldest_active) - 1
        if idx > 0:
            del self._timestamps[:idx]
            del self._data[:idx]
            del self._installers[:idx]
            self._base_dropped = True
            return idx
        if idx == 0:
            # a version at or below the oldest snapshot exists; the
            # implicit base can never be read again
            self._base_dropped = True
        return 0

    def install(self, end_ts: int, data: LineData, config: MVMConfig,
                active: ActiveTransactionTable,
                installer: Optional[object] = None) -> Tuple[bool, int]:
        """Install a committed version with timestamp ``end_ts``.

        Applies GC-on-write then coalescing, then enforces the version cap.
        Returns ``(coalesced, dropped)``: whether the new version overwrote
        the previous newest (Figure 4), and how many obsolete versions GC
        deleted.  Raises :class:`CapExceeded` under the ABORT_WRITER policy
        when the line is already at the cap and cannot coalesce.
        ``installer`` is an opaque identity stored alongside the version
        and reported by :meth:`newest_installer`.
        """
        newest = self.newest_timestamp()
        if newest is not None and end_ts <= newest:
            raise MVMError(
                f"version timestamps must increase: {end_ts} <= {newest}")
        dropped = self.collect_garbage(active.oldest())
        if (config.coalescing and self._timestamps
                and not active.any_started_in(self._timestamps[-1], end_ts)):
            self._timestamps[-1] = end_ts
            self._data[-1] = data
            self._installers[-1] = installer
            return True, dropped
        if (config.cap_policy is not VersionCapPolicy.UNBOUNDED
                and len(self._timestamps) >= config.max_versions):
            if config.cap_policy is VersionCapPolicy.ABORT_WRITER:
                raise CapExceeded(
                    f"line already holds {len(self._timestamps)} versions")
            # DROP_OLDEST: discard the oldest version to make room.
            self._timestamps.pop(0)
            self._data.pop(0)
            self._installers.pop(0)
            self._base_dropped = True
            dropped += 1
        self._timestamps.append(end_ts)
        self._data.append(data)
        self._installers.append(installer)
        return False, dropped

    def truncate_after(self, timestamp: int) -> int:
        """Discard every version newer than ``timestamp`` (rollback).

        Used by checkpoint rollback (section 3.3): the versions at or
        below the checkpoint's timestamp *are* the restored state.
        Returns the number of versions discarded.
        """
        idx = bisect.bisect_right(self._timestamps, timestamp)
        dropped = len(self._timestamps) - idx
        if dropped:
            del self._timestamps[idx:]
            del self._data[idx:]
            del self._installers[idx:]
        return dropped

    def remove_version(self, end_ts: int) -> None:
        """Roll back a version installed by an aborting commit (section 4.2).

        SI-TM validation is itself transactional: a committer optimistically
        installs versions and, on detecting a write-write conflict, removes
        the versions it created.
        """
        idx = bisect.bisect_left(self._timestamps, end_ts)
        if idx >= len(self._timestamps) or self._timestamps[idx] != end_ts:
            raise MVMError(f"no version with timestamp {end_ts} to remove")
        self._timestamps.pop(idx)
        self._data.pop(idx)
        self._installers.pop(idx)
