"""Multiversioned memory: version lists, timestamps, controller, overheads."""

from repro.mvm.census import VersionCensus
from repro.mvm.checkpoint import Checkpoint, CheckpointManager
from repro.mvm.dedup import DedupIndex, DedupReport
from repro.mvm.controller import MVMController
from repro.mvm.overhead import (
    OverheadReport,
    bandwidth_overhead_best_case,
    capacity_overhead,
    copy_on_write_amplification,
    metadata_bits_per_address,
    report,
)
from repro.mvm.timestamps import ActiveTransactionTable, GlobalClock
from repro.mvm.version_list import (
    CapExceeded,
    SnapshotTooOld,
    VersionList,
)

__all__ = [
    "ActiveTransactionTable",
    "Checkpoint",
    "CheckpointManager",
    "DedupIndex",
    "DedupReport",
    "CapExceeded",
    "GlobalClock",
    "MVMController",
    "OverheadReport",
    "SnapshotTooOld",
    "VersionCensus",
    "VersionList",
    "bandwidth_overhead_best_case",
    "capacity_overhead",
    "copy_on_write_amplification",
    "metadata_bits_per_address",
    "report",
]
