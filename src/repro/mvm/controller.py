"""The multiversioned memory controller (sections 3 and 4.2).

:class:`MVMController` owns the version lists for every line in the MVM
region and implements the controller-side halves of the transactional
actions:

* ``snapshot_read`` — return the most current version older than the
  calling transaction's start timestamp (TM READ);
* ``validate_line`` / ``install_line`` / ``rollback_line`` — commit-time
  timestamp-based write-write conflict detection and optimistic version
  installation with rollback (TM COMMIT);
* ``plain_read`` / ``plain_write`` — non-transactional accesses, which see
  and update the most current version in place;
* garbage collection and version coalescing, delegated to
  :class:`~repro.mvm.version_list.VersionList` using the oldest-active
  priority queue of :class:`~repro.mvm.timestamps.ActiveTransactionTable`;
* transient (uncommitted, evicted) line storage keyed by temporary owner
  IDs — the paper reserves the N largest timestamps as temporary IDs so
  uncommitted evicted lines stay private to their transaction;
* the version-depth census of Appendix A and the word-granularity
  conflict filter of section 4.2.

The controller is purely *functional* state; all timing (indirection-lookup
latency, translation cache) is charged by the TM systems through the cache
model, keeping mechanism and cost model separate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.common.config import MVMConfig
from repro.common.errors import MVMError
from repro.mem.address import AddressMap
from repro.mem.backing import BackingStore
from repro.mvm.census import VersionCensus
from repro.mvm.dedup import DedupIndex
from repro.mvm.timestamps import ActiveTransactionTable, GlobalClock
from repro.mvm.version_list import (
    CapExceeded,
    LineData,
    SnapshotTooOld,
    VersionList,
)

__all__ = ["MVMController", "CapExceeded", "SnapshotTooOld"]


class MVMController:
    """Version management for the multiversioned memory region."""

    def __init__(self, config: MVMConfig, address_map: AddressMap,
                 clock: Optional[GlobalClock] = None):
        self.config = config
        self.address_map = address_map
        self.clock = clock or GlobalClock(delta=config.commit_delta)
        self.active = ActiveTransactionTable()
        self._lines: Dict[int, VersionList] = {}
        #: uncommitted lines evicted from private caches, (line, owner) -> data
        self._transient: Dict[Tuple[int, int], LineData] = {}
        self.census = VersionCensus() if config.census else None
        #: cumulative dedup-opportunity census over installed version data
        self.dedup = (DedupIndex(address_map.words_per_line)
                      if config.dedup else None)
        #: bundles (groups of ``bundle_lines`` lines) already materialised
        #: by a first copy-on-write (section 3.2 bundling)
        self._materialised_bundles: set = set()
        #: telemetry registry or None (the default); when attached, every
        #: install feeds the version-list occupancy histogram — the
        #: distribution behind the section 4.4 coalescing discussion
        self.metrics = None
        #: cycle profiler or None (the default); when attached, every
        #: install/coalesce/GC is recorded per line for the conflict
        #: heatmap (is coalescing absorbing the hot lines?)
        self.profiler = None
        #: fault injector or None (the default); when attached, installs
        #: consult it for a version-cap squeeze and report GC/coalesce
        #: events so it can accrue GC pauses
        self.faults = None
        # counters
        self.bundle_copies = 0
        self.versions_installed = 0
        self.versions_coalesced = 0
        self.versions_collected = 0
        self.ww_conflicts_detected = 0
        self.ww_conflicts_filtered = 0

    # ------------------------------------------------------------------
    # version-list access

    def _list_of(self, line: int) -> VersionList:
        vlist = self._lines.get(line)
        if vlist is None:
            vlist = self._lines[line] = VersionList()
        return vlist

    def versions_of(self, line: int) -> Tuple[int, ...]:
        """Timestamps of the committed versions of ``line`` (oldest first)."""
        vlist = self._lines.get(line)
        return vlist.timestamps if vlist else ()

    def live_version_count(self, line: int) -> int:
        """Number of committed versions currently retained for ``line``."""
        vlist = self._lines.get(line)
        return len(vlist) if vlist else 0

    def max_live_versions(self) -> int:
        """Largest version count across all lines (coalescing diagnostics)."""
        return max((len(v) for v in self._lines.values()), default=0)

    def newest_installer(self, line: int) -> Optional[object]:
        """Identity of the transaction that installed ``line``'s newest
        version, or ``None`` (non-transactional write, or identity not
        recorded).  Conflict provenance: after ``validate_many`` reports
        a write-write conflict, this names the first committer that won.
        """
        vlist = self._lines.get(line)
        return vlist.newest_installer() if vlist is not None else None

    # ------------------------------------------------------------------
    # transactional reads

    def snapshot_read(self, line: int, start_ts: int) -> Optional[LineData]:
        """TM READ: the most current version older than ``start_ts``.

        Returns ``None`` for a never-written line (zero line).  Raises
        :class:`SnapshotTooOld` when the snapshot's version was discarded
        (only possible under the DROP_OLDEST cap policy).
        """
        vlist = self._lines.get(line)
        if vlist is None:
            return None
        data, depth = vlist.read_at(start_ts)
        if self.census is not None and depth:
            self.census.record(depth)
        return data

    # ------------------------------------------------------------------
    # commit protocol

    def validate_line(self, line: int, start_ts: int) -> bool:
        """Write-write check: has ``line`` a version newer than ``start_ts``?

        True means a concurrent, already-committed transaction wrote the
        line after this transaction's snapshot — a write-write conflict.
        """
        vlist = self._lines.get(line)
        if vlist is None:
            return False
        newest = vlist.newest_timestamp()
        conflict = newest is not None and newest > start_ts
        if conflict:
            self.ww_conflicts_detected += 1
        return conflict

    def words_conflict(self, line: int, start_ts: int,
                       written_words: Dict[int, int]) -> bool:
        """Word-granularity refinement of a line-level conflict (section 4.2).

        Compares both the concurrent committed version and the committing
        write set against the snapshot version: if the sets of *actually
        changed* words are disjoint (false sharing) or the committing
        writes are silent stores, the conflict is dismissed and the counts
        as filtered.
        """
        vlist = self._lines.get(line)
        if vlist is None:
            return False
        return self._words_conflict(vlist, start_ts, written_words)

    def _words_conflict(self, vlist: VersionList, start_ts: int,
                        written_words: Dict[int, int]) -> bool:
        """Word filter on an already-probed version list (no dict probe)."""
        newest = vlist.newest_data()
        try:
            snapshot, _ = vlist.read_at(start_ts)
        except SnapshotTooOld:
            return True
        if snapshot is None:
            snapshot = tuple([0] * self.address_map.words_per_line)
        assert newest is not None
        their_changed = {i for i, (a, b) in enumerate(zip(snapshot, newest))
                         if a != b}
        our_changed = {w for w, v in written_words.items()
                       if snapshot[w] != v}
        if their_changed & our_changed:
            return True
        self.ww_conflicts_filtered += 1
        return False

    def validate_many(self, lines, start_ts: int,
                      written_words: Optional[Dict[int, Dict[int, int]]] = None,
                      ) -> Optional[int]:
        """Batched write-write validation: first conflicting line, or None.

        One ``_lines`` probe per line for the whole validation set (the
        per-line path probes once in ``validate_line`` and again in
        ``words_conflict``).  ``written_words`` — when the word-granularity
        filter is enabled — maps each *written* line to its
        ``{word_index: value}`` dict; a line-level conflict on such a line
        is dismissed (and counted as filtered) when the changed word sets
        are disjoint.  Counter semantics match the per-line path exactly:
        every conflicting line bumps ``ww_conflicts_detected``, dismissed
        ones bump ``ww_conflicts_filtered``, and validation stops at the
        first conflict that stands.
        """
        get = self._lines.get
        for line in lines:
            vlist = get(line)
            if vlist is None:
                continue
            newest = vlist.newest_timestamp()
            if newest is None or newest <= start_ts:
                continue
            self.ww_conflicts_detected += 1
            if written_words is not None:
                written = written_words.get(line)
                if written is not None and not self._words_conflict(
                        vlist, start_ts, written):
                    continue
            return line
        return None

    def install_line(self, line: int, end_ts: int, data: LineData,
                     installer: Optional[object] = None) -> None:
        """Install a committed version of ``line`` at ``end_ts``.

        Raises :class:`CapExceeded` under the ABORT_WRITER policy; the
        caller (TM COMMIT) turns that into a VERSION_OVERFLOW abort and
        rolls back any versions it already installed.  ``installer`` is
        the opaque identity reported back by :meth:`newest_installer`.
        """
        config = self.config
        if self.faults is not None:
            config = self.faults.squeeze(config)
        vlist = self._list_of(line)
        coalesced, dropped = vlist.install(
            end_ts, data, config, self.active, installer)
        if self.faults is not None:
            self.faults.note_gc_event(int(coalesced), dropped)
        if self.dedup is not None:
            self.dedup.add(data)
        self.versions_installed += 1
        if coalesced:
            self.versions_coalesced += 1
        self.versions_collected += dropped
        if self.profiler is not None:
            self.profiler.mvm_event("install", line)
            if coalesced:
                self.profiler.mvm_event("coalesce", line)
            if dropped:
                self.profiler.mvm_event("gc", line, dropped)
        if self.metrics is not None:
            # occupancy *after* this install (and its GC/coalescing):
            # what the hardware would actually have to store
            self.metrics.observe("mvm_version_list_length", len(vlist))

    def newest_many(self, lines) -> Dict[int, Optional[LineData]]:
        """Newest committed data per line, one probe pass (commit merge).

        TM COMMIT merges each written line's buffered words onto the
        newest version.  Batching the lookups before the installs is
        safe: a commit installs each line at most once, and installing
        one line never changes another line's newest data.
        """
        get = self._lines.get
        out: Dict[int, Optional[LineData]] = {}
        for line in lines:
            vlist = get(line)
            out[line] = vlist.newest_data() if vlist is not None else None
        return out

    def install_many(self, end_ts: int, items, on_installed=None,
                     installer: Optional[object] = None) -> None:
        """Install a whole write set at ``end_ts`` through one MVM call.

        ``items`` is a sequence of ``(line, data)`` pairs in install
        order.  Per line the semantics are identical to
        :meth:`install_line` — fault squeeze, GC-on-write, coalescing,
        counters, profiler/metrics events all fire per line, in order —
        and ``on_installed(line, data)`` (the TM system's cycle-charging
        and invalidation hook) runs after each line exactly where the
        old per-line commit loop charged it.  That preserves the
        interleaving the ABORT_WRITER policy makes observable: a
        mid-commit :class:`CapExceeded` leaves the cache/coherence
        effects of the already-installed prefix in place.  On
        ``CapExceeded`` every installed line is rolled back and the
        exception is re-raised with ``.line`` set to the failing line.
        """
        faults = self.faults
        dedup = self.dedup
        profiler = self.profiler
        metrics = self.metrics
        base_config = self.config
        lines_map = self._lines
        active = self.active
        installed = []
        line = None
        try:
            for line, data in items:
                config = (base_config if faults is None
                          else faults.squeeze(base_config))
                vlist = lines_map.get(line)
                if vlist is None:
                    vlist = lines_map[line] = VersionList()
                coalesced, dropped = vlist.install(
                    end_ts, data, config, active, installer)
                if faults is not None:
                    faults.note_gc_event(int(coalesced), dropped)
                if dedup is not None:
                    dedup.add(data)
                self.versions_installed += 1
                if coalesced:
                    self.versions_coalesced += 1
                self.versions_collected += dropped
                if profiler is not None:
                    profiler.mvm_event("install", line)
                    if coalesced:
                        profiler.mvm_event("coalesce", line)
                    if dropped:
                        profiler.mvm_event("gc", line, dropped)
                if metrics is not None:
                    self.metrics.observe("mvm_version_list_length",
                                         len(vlist))
                installed.append(line)
                if on_installed is not None:
                    on_installed(line, data)
        except CapExceeded as exc:
            for rollback in installed:
                self.rollback_line(rollback, end_ts)
            exc.line = line
            raise

    def bundle_copy_lines(self, line: int) -> int:
        """Extra lines copied when ``line``'s bundle first materialises.

        Section 3.2: bundling ``bundle_lines`` lines per version-list entry
        divides metadata overhead but "requires copying an entire bundle on
        the first write".  Returns how many *additional* line copies this
        write incurs (0 once the bundle is materialised, and always 0 for
        unbundled configurations).
        """
        if self.config.bundle_lines <= 1:
            return 0
        bundle = line // self.config.bundle_lines
        if bundle in self._materialised_bundles:
            return 0
        self._materialised_bundles.add(bundle)
        self.bundle_copies += 1
        return self.config.bundle_lines - 1

    def rollback_line(self, line: int, end_ts: int) -> None:
        """Remove the version an aborting committer installed (section 4.2)."""
        vlist = self._lines.get(line)
        if vlist is None:
            raise MVMError(f"rollback of line {line} with no versions")
        vlist.remove_version(end_ts)
        self.versions_installed -= 1

    # ------------------------------------------------------------------
    # non-transactional accesses (section 3)

    def plain_read(self, line: int) -> Optional[LineData]:
        """Non-transactional read: the newest version."""
        vlist = self._lines.get(line)
        return vlist.newest_data() if vlist else None

    def plain_write(self, line: int, data: LineData) -> None:
        """Non-transactional write: modify the most current version in place."""
        self._list_of(line).overwrite_in_place(data)

    # ------------------------------------------------------------------
    # transient (evicted uncommitted) lines — section 4.2 temporary IDs

    def store_transient(self, line: int, owner: int, data: LineData) -> None:
        """Buffer an uncommitted line evicted from ``owner``'s private cache."""
        self._transient[(line, owner)] = data

    def load_transient(self, line: int, owner: int) -> Optional[LineData]:
        """Fetch an evicted uncommitted line, visible only to its owner."""
        return self._transient.get((line, owner))

    def drop_transients(self, owner: int, lines: Iterable[int]) -> None:
        """Discard a transaction's transient lines on commit or abort."""
        for line in lines:
            self._transient.pop((line, owner), None)

    # ------------------------------------------------------------------
    # maintenance

    def truncate_after(self, timestamp: int) -> int:
        """Roll every line back to its newest version at ``timestamp``.

        Checkpoint rollback (section 3.3).  Lines whose versions are all
        newer than ``timestamp`` fall back to their implicit base (the
        pre-transactional state) when it still exists.  Returns versions
        discarded.
        """
        dropped = 0
        empty_lines = []
        for line, vlist in self._lines.items():
            dropped += vlist.truncate_after(timestamp)
            if len(vlist) == 0:
                empty_lines.append(line)
        for line in empty_lines:
            del self._lines[line]
        self.versions_installed = max(0, self.versions_installed - dropped)
        return dropped

    def collect_all(self) -> int:
        """Background sweep: GC every line against the oldest active snapshot.

        The paper GCs on write; a background sweep is the natural software
        analogue for long idle phases.  Returns versions deleted.
        """
        oldest = self.active.oldest()
        dropped = 0
        for vlist in self._lines.values():
            dropped += vlist.collect_garbage(oldest)
        self.versions_collected += dropped
        return dropped

    def flush_all_versions(self, backing: BackingStore) -> None:
        """Timestamp-overflow handler: persist newest versions, drop history.

        All active transactions must already have been aborted.  Each
        line's newest data survives as a fresh timestamp-0 base version
        (so every later snapshot still reads it); a copy also goes to the
        backing store as a checkpoint.  History and the clock reset
        (section 4.1's software interrupt).
        """
        if len(self.active):
            raise MVMError("cannot reset with active transactions")
        survivors: Dict[int, VersionList] = {}
        for line, vlist in self._lines.items():
            data = vlist.newest_data()
            if data is None:
                continue
            backing.store_line(self.address_map.words_of_line(line), data)
            fresh = VersionList()
            fresh.overwrite_in_place(data)
            survivors[line] = fresh
        self._lines = survivors
        self._transient.clear()
        self.clock.reset_after_overflow()

    def stats(self) -> dict:
        """Controller counters for reports."""
        return {
            "versions_installed": self.versions_installed,
            "versions_coalesced": self.versions_coalesced,
            "versions_collected": self.versions_collected,
            "ww_conflicts_detected": self.ww_conflicts_detected,
            "ww_conflicts_filtered": self.ww_conflicts_filtered,
            "max_live_versions": self.max_live_versions(),
            "start_stalls": self.clock.start_stalls,
        }
