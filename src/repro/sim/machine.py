"""The simulated machine: one object bundling all hardware state.

A :class:`Machine` owns the backing store, heap, cache hierarchy, global
timestamp clock and MVM controller described by a
:class:`~repro.common.config.SimConfig`.  TM systems and workloads share a
single machine per run; creating a fresh machine gives a fully cold start.

The machine also provides the *non-transactional* access path (section 3):
plain reads return the newest version; plain writes update the newest
version in place.  For the MVM region these route through the MVM
controller so that non-transactional setup code and transactional code
observe one coherent memory.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.common.config import SimConfig
from repro.faults import FaultInjector
from repro.mem.address import AddressMap
from repro.mem.backing import BackingStore
from repro.mem.cache import CacheHierarchy
from repro.mem.heap import Heap
from repro.mem.interconnect import Interconnect
from repro.mvm.controller import MVMController
from repro.mvm.timestamps import GlobalClock


#: thread count at or above which the struct-of-arrays layout switches
#: to compact ``array('q')`` columns (one machine word per thread)
SOA_THREAD_THRESHOLD = 32


class ThreadArrays:
    """Struct-of-arrays per-thread hot state: clocks and op counters.

    The engine's specialized fast path keeps the per-thread local clock
    and read/write counters in parallel columns indexed by thread id,
    instead of attribute accesses spread over ``_ThreadState`` and
    ``ThreadStats`` objects.  ``compact=True`` backs the columns with
    ``array('q')`` (signed 64-bit, cache-dense, one word per thread);
    plain lists are kept for small runs, where CPython's boxed-int item
    access is faster than array unboxing.  The layout never leaks into
    results: the engine flushes the columns back to the canonical
    per-thread objects on every exit path.
    """

    __slots__ = ("compact", "clocks", "reads", "writes")

    def __init__(self, num_threads: int, compact: bool = False):
        self.compact = compact
        zeros = [0] * num_threads
        if compact:
            self.clocks = array("q", zeros)
            self.reads = array("q", zeros)
            self.writes = array("q", zeros)
        else:
            self.clocks = zeros
            self.reads = [0] * num_threads
            self.writes = [0] * num_threads

    @classmethod
    def for_threads(cls, num_threads: int,
                    compact: Optional[bool] = None) -> "ThreadArrays":
        """Columns for ``num_threads``, auto-selecting the layout.

        ``compact=None`` picks the ``array('q')`` layout at
        :data:`SOA_THREAD_THRESHOLD` or more threads — the scale where
        the column footprint starts to matter — and lists below it.
        """
        if compact is None:
            compact = num_threads >= SOA_THREAD_THRESHOLD
        return cls(num_threads, compact)


class Machine:
    """All simulated hardware state for one run."""

    def __init__(self, config: Optional[SimConfig] = None):
        self.config = config or SimConfig()
        #: telemetry registry (:class:`repro.obs.metrics.MetricsRegistry`)
        #: or None — the default — when telemetry is off.  Set via
        #: :meth:`enable_telemetry`; TM systems and the engine read it.
        self.metrics = None
        #: cycle profiler (:class:`repro.obs.profile.CycleProfiler`) or
        #: None — the default — when profiling is off.  Set via
        #: :meth:`enable_profiling`; same zero-overhead contract as
        #: ``metrics``.
        self.profiler = None
        self.address_map = AddressMap(self.config.machine.words_per_line)
        self.backing = BackingStore()
        self.heap = Heap(self.address_map)
        self.caches = CacheHierarchy(self.config.machine)
        self.interconnect = Interconnect(self.config.machine.cores,
                                         self.config.machine.interconnect)
        self.clock = GlobalClock(delta=self.config.mvm.commit_delta,
                                 max_timestamp=self.config.mvm.max_timestamp)
        self.mvm = MVMController(self.config.mvm, self.address_map, self.clock)
        #: fault injector (:class:`repro.faults.FaultInjector`) or None
        #: — the default — when the config carries no active plan.  The
        #: engine, MVM controller and global clock share this instance;
        #: all of them guard with ``is not None`` (same zero-overhead
        #: contract as ``metrics``/``profiler``).
        self.faults = None
        if self.config.faults is not None and self.config.faults.active():
            self.faults = FaultInjector(self.config.faults)
            self.clock.faults = self.faults
            self.mvm.faults = self.faults

    def enable_telemetry(self, registry) -> None:
        """Attach a metrics registry to every emitting layer.

        Telemetry stays off (``metrics is None`` everywhere, one pointer
        test per potential emission) unless this is called; the runner's
        ``telemetry=True`` path is the only caller in normal operation.
        """
        self.metrics = registry
        self.mvm.metrics = registry

    def enable_profiling(self, profiler) -> None:
        """Attach a cycle profiler to every accounting layer.

        Profiling stays off (``profiler is None`` everywhere, one
        pointer test per instrumented site) unless this is called —
        either directly or by ``CycleProfiler.attach_engine`` when the
        profiler sits in the engine's tracer slot.
        """
        self.profiler = profiler
        self.mvm.profiler = profiler

    # ------------------------------------------------------------------
    # non-transactional (plain) accesses — functional only, no timing.
    # Setup code runs before the simulated region of interest, so it is
    # not charged cycles; in-simulation plain accesses go through the TM
    # system which charges cache latency.

    def plain_load(self, addr: int) -> int:
        """Load one word outside any transaction (newest version)."""
        if self.address_map.is_mvm(addr):
            line = self.address_map.line_of(addr)
            data = self.mvm.plain_read(line)
            if data is None:
                return 0
            return data[self.address_map.word_in_line(addr)]
        return self.backing.load(addr)

    def plain_store(self, addr: int, value: int) -> None:
        """Store one word outside any transaction (in-place update)."""
        if self.address_map.is_mvm(addr):
            line = self.address_map.line_of(addr)
            data = self.mvm.plain_read(line)
            if data is None:
                words = [0] * self.address_map.words_per_line
            else:
                words = list(data)
            words[self.address_map.word_in_line(addr)] = value
            self.mvm.plain_write(line, tuple(words))
        else:
            self.backing.store(addr, value)

    def line_data(self, line: int) -> tuple:
        """Current committed contents of ``line`` as a word tuple."""
        if self.address_map.is_mvm_line(line):
            data = self.mvm.plain_read(line)
            if data is not None:
                return data
            return tuple([0] * self.address_map.words_per_line)
        return tuple(self.backing.load_line(
            self.address_map.words_of_line(line)))

    # ------------------------------------------------------------------
    # allocation façade

    def malloc(self, words: int) -> int:
        """Allocate conventional memory."""
        return self.heap.malloc(words)

    def mvmalloc(self, words: int) -> int:
        """Allocate multiversioned shared memory (section 4.4)."""
        return self.heap.mvmalloc(words)

    def free(self, addr: int) -> None:
        """Free a heap allocation."""
        self.heap.free(addr)
