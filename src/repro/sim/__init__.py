"""Discrete-event simulation: machine state, engine, statistics."""

from repro.sim.engine import Engine, Tracer, TransactionSpec
from repro.sim.machine import Machine
from repro.sim.retry import RetryPolicy
from repro.sim.stats import RunStats, ThreadStats
from repro.sim.timeline import Interval, TimelineRecorder

__all__ = [
    "Engine",
    "Interval",
    "TimelineRecorder",
    "Machine",
    "RetryPolicy",
    "RunStats",
    "ThreadStats",
    "Tracer",
    "TransactionSpec",
]
