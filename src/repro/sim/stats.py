"""Run statistics.

:class:`RunStats` aggregates everything the evaluation section measures:

* commits and aborts, with aborts split by :class:`AbortCause` — Figure 1
  needs the read-write/write-write split, Figure 7 the totals;
* per-thread cycle clocks — Figure 8's speedup is the ratio of makespans;
* read/write/compute operation counts and retry distributions.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import AbortCause


@dataclass
class ThreadStats:
    """Counters for one simulated thread."""

    thread_id: int
    cycles: int = 0
    commits: int = 0
    aborts: int = 0
    reads: int = 0
    writes: int = 0
    backoff_cycles: int = 0
    commit_wait_cycles: int = 0

    def to_dict(self) -> dict:
        """Serialise to plain JSON-safe types."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ThreadStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


class RunStats:
    """Aggregated statistics for one simulation run."""

    def __init__(self, num_threads: int):
        self.threads: List[ThreadStats] = [
            ThreadStats(i) for i in range(num_threads)]
        self.abort_causes: Counter = Counter()
        #: retries needed per committed transaction (0 = first try)
        self.retry_histogram: Counter = Counter()
        self.per_label: Dict[str, Counter] = {}
        #: starving transactions escalated to serial golden-token mode
        #: by the engine's retry policy (:mod:`repro.sim.retry`)
        self.escalations = 0
        #: highest attempt count any single transaction needed (1 = every
        #: transaction committed first try); the starvation watermark
        self.max_attempts_seen = 0

    # ------------------------------------------------------------------
    # recording

    def record_commit(self, thread_id: int, label: str, retries: int) -> None:
        """A transaction committed after ``retries`` aborted attempts."""
        self.threads[thread_id].commits += 1
        self.retry_histogram[retries] += 1
        self.max_attempts_seen = max(self.max_attempts_seen, retries + 1)
        self._label(label)["commits"] += 1

    def record_abort(self, thread_id: int, label: str,
                     cause: AbortCause) -> None:
        """One attempt of a transaction aborted."""
        self.threads[thread_id].aborts += 1
        self.abort_causes[cause] += 1
        self._label(label)["aborts"] += 1

    def _label(self, label: str) -> Counter:
        counter = self.per_label.get(label)
        if counter is None:
            counter = self.per_label[label] = Counter()
        return counter

    # ------------------------------------------------------------------
    # derived metrics

    @property
    def total_commits(self) -> int:
        """Committed transactions across all threads."""
        return sum(t.commits for t in self.threads)

    @property
    def total_aborts(self) -> int:
        """Aborted transaction attempts across all threads."""
        return sum(t.aborts for t in self.threads)

    @property
    def abort_rate(self) -> float:
        """Aborted attempts / all attempts — the Figure 7 metric."""
        attempts = self.total_commits + self.total_aborts
        return self.total_aborts / attempts if attempts else 0.0

    @property
    def makespan_cycles(self) -> int:
        """Cycles until the last thread finished — the Figure 8 metric."""
        return max((t.cycles for t in self.threads), default=0)

    def aborts_by(self, cause: AbortCause) -> int:
        """Aborted attempts with the given cause."""
        return self.abort_causes.get(cause, 0)

    @property
    def read_write_aborts(self) -> int:
        """Aborts Figure 1 classifies as read-write."""
        return sum(n for cause, n in self.abort_causes.items()
                   if cause.is_read_write)

    @property
    def write_write_aborts(self) -> int:
        """Aborts Figure 1 classifies as write-write."""
        return sum(n for cause, n in self.abort_causes.items()
                   if cause.is_write_write)

    def read_write_fraction(self) -> Optional[float]:
        """Fraction of conflict aborts that are read-write (Figure 1)."""
        conflict = self.read_write_aborts + self.write_write_aborts
        return self.read_write_aborts / conflict if conflict else None

    # ------------------------------------------------------------------
    # serialization — RunStats must survive a process boundary (the
    # parallel executor ships results back as JSON, not pickles)

    def to_dict(self) -> dict:
        """Full serialisation: every counter, not just the summary."""
        return {
            "threads": [t.to_dict() for t in self.threads],
            "abort_causes": {c.value: n for c, n in self.abort_causes.items()},
            "retry_histogram": {str(k): v
                                for k, v in self.retry_histogram.items()},
            "per_label": {label: dict(counter)
                          for label, counter in self.per_label.items()},
            "escalations": self.escalations,
            "max_attempts_seen": self.max_attempts_seen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Inverse of :meth:`to_dict` (JSON string keys become typed)."""
        stats = cls(len(data["threads"]))
        stats.threads = [ThreadStats.from_dict(t) for t in data["threads"]]
        stats.abort_causes = Counter(
            {AbortCause(c): n for c, n in data["abort_causes"].items()})
        stats.retry_histogram = Counter(
            {int(k): v for k, v in data["retry_histogram"].items()})
        stats.per_label = {label: Counter(counter)
                           for label, counter in data["per_label"].items()}
        # both absent in dicts serialized before the retry-policy layer
        stats.escalations = data.get("escalations", 0)
        stats.max_attempts_seen = data.get("max_attempts_seen", 0)
        return stats

    def summary(self) -> dict:
        """Flat summary dict for reports and JSON dumps."""
        return {
            "commits": self.total_commits,
            "aborts": self.total_aborts,
            "abort_rate": self.abort_rate,
            "makespan_cycles": self.makespan_cycles,
            "abort_causes": {c.value: n for c, n in self.abort_causes.items()},
            "reads": sum(t.reads for t in self.threads),
            "writes": sum(t.writes for t in self.threads),
            "backoff_cycles": sum(t.backoff_cycles for t in self.threads),
            "commit_wait_cycles": sum(
                t.commit_wait_cycles for t in self.threads),
        }
