"""Per-thread execution timelines.

A :class:`TimelineRecorder` hooks the engine's tracer interface and
records one interval per transaction *attempt* — thread, label, start and
end clock, and outcome.  ``render()`` draws an ASCII Gantt chart, which
makes the systems' behaviour tangible: under 2PL you can watch a long
reader get shot repeatedly by writers ("xxxx" runs) and retried, while
under SI-TM the same rows are solid committed spans.

Example::

    timeline = TimelineRecorder()
    engine = Engine(tm, programs, tracer=timeline)
    timeline.attach(engine)
    engine.run()
    print(timeline.render(width=100))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import AbortCause, SimulationError
from repro.sim.engine import Engine, Tracer
from repro.tm.api import Txn


@dataclass(frozen=True)
class Interval:
    """One transaction attempt's lifetime in simulated cycles."""

    thread_id: int
    label: str
    start: int
    end: int
    committed: bool
    cause: Optional[AbortCause] = None


class TimelineRecorder(Tracer):
    """Tracer that captures per-attempt intervals for rendering."""

    def __init__(self) -> None:
        self._engine: Optional[Engine] = None
        self._open: dict = {}
        self.intervals: List[Interval] = []

    def attach(self, engine: Engine) -> None:
        """Bind to the engine whose thread clocks supply timestamps."""
        self._engine = engine

    def _clock(self, thread_id: int) -> int:
        if self._engine is None:
            raise SimulationError(
                "TimelineRecorder.attach(engine) must be called before run")
        return self._engine.threads[thread_id].clock

    def on_begin(self, txn: Txn) -> None:
        self._open[txn.thread_id] = (txn.label, self._clock(txn.thread_id))

    def _close(self, txn: Txn, committed: bool,
               cause: Optional[AbortCause]) -> None:
        opened = self._open.pop(txn.thread_id, None)
        if opened is None:
            return
        label, start = opened
        self.intervals.append(Interval(
            txn.thread_id, label, start, self._clock(txn.thread_id),
            committed, cause))

    def on_commit(self, txn: Txn) -> None:
        self._close(txn, committed=True, cause=None)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        self._close(txn, committed=False, cause=cause)

    # ------------------------------------------------------------------

    @property
    def makespan(self) -> int:
        """Last recorded cycle."""
        return max((i.end for i in self.intervals), default=0)

    def aborted_fraction(self) -> float:
        """Fraction of attempts that aborted."""
        if not self.intervals:
            return 0.0
        aborted = sum(1 for i in self.intervals if not i.committed)
        return aborted / len(self.intervals)

    def render(self, width: int = 80) -> str:
        """ASCII Gantt: one row per thread, ``#`` committed, ``x`` aborted.

        Later attempts overwrite earlier ones in shared columns, so dense
        retry storms show as runs of ``x``.
        """
        if not self.intervals:
            return "(no transactions recorded)"
        span = max(1, self.makespan)
        threads = sorted({i.thread_id for i in self.intervals})
        rows = {tid: [" "] * width for tid in threads}
        for interval in sorted(self.intervals, key=lambda i: i.committed):
            lo = min(width - 1, interval.start * width // span)
            hi = min(width - 1, max(lo, (interval.end * width - 1) // span))
            mark = "#" if interval.committed else "x"
            row = rows[interval.thread_id]
            for col in range(lo, hi + 1):
                row[col] = mark
        lines = [f"cycles 0..{span}  (#=committed span, x=aborted attempt)"]
        for tid in threads:
            lines.append(f"T{tid:<3d}|{''.join(rows[tid])}|")
        return "\n".join(lines)

    def summary_by_label(self) -> dict:
        """Per-label attempt counts and cycle totals."""
        out: dict = {}
        for interval in self.intervals:
            entry = out.setdefault(interval.label, {
                "commits": 0, "aborts": 0, "cycles": 0})
            entry["commits" if interval.committed else "aborts"] += 1
            entry["cycles"] += interval.end - interval.start
        return out
