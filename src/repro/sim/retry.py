"""Engine-level retry policies: bounded backoff, starvation escalation.

The paper's backends each bring their own contention-management story
(2PL's exponential backoff, LogTM's NACK stalls, SI-TM's
first-committer-wins), but none of them *bounds* how long one doomed
transaction can lose.  Under an adversarial fault plan
(:mod:`repro.faults`) — spurious-abort bursts, begin-stall storms — a
transaction can be starved indefinitely, and the simulation only ends
when the engine exhausts ``max_steps``.  :class:`RetryPolicy` closes
that hole at the engine layer, uniformly across all five backends:

* **capped exponential backoff with jitter** — every abort charges
  ``backoff_base_cycles * 2^min(attempt, backoff_max_exponent)`` plus a
  uniform jitter, on top of whatever the backend already charged;
* **attempt budgets** — a transaction that aborts ``attempt_budget``
  times is declared starving;
* **starvation watermark** — so is one whose first attempt started more
  than ``starvation_age_cycles`` ago (the oldest-loser age check), and
  one whose begin has stalled ``stall_budget`` consecutive times
  (begin-stall storms never abort, so attempt counting alone would
  miss them);
* **escalation** — starving transactions queue for the **golden
  token**: the engine drains all other in-flight transactions, then
  runs the token holder *serially* with the fault injector suppressed.
  A serial fault-free transaction commits in every backend (no
  concurrent conflicts, no injected faults), so each escalation makes
  strict progress and every workload terminates under any fault plan.

The policy is ``None`` by default — the engine's legacy behaviour
(backend backoff only, unbounded retries) is byte-identical when no
policy is configured, which keeps ``BENCH_baseline.json`` comparable.

**Time-base-agnostic core.**  Nothing in the policy's arithmetic cares
that the engine's unit is a simulated cycle: the thresholds and delays
are plain ticks.  The live store (:mod:`repro.store`) reuses the same
semantics against wall-clock milliseconds — backoff delays become
``retry_after_ms`` hints, the starvation age is wall time since the
first attempt, and escalation serializes the starving transaction on
its home shard instead of draining the engine.  The shared core is:

* :meth:`RetryPolicy.delay` — the capped exponential backoff;
* :meth:`RetryPolicy.stall_starved` / :meth:`RetryPolicy.abort_starved`
  — the two starvation predicates, exactly as the engine applies them
  (stall budget at the begin site; attempt budget OR age watermark at
  the abort site);
* :class:`RetryState` — a per-transaction tracker that feeds those
  predicates from whatever clock the caller supplies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import SplitRandom

__all__ = ["RetryPolicy", "RetryState"]


@dataclass(frozen=True)
class RetryPolicy:
    """Engine-level retry/escalation policy (all backends uniformly)."""

    #: base of the capped exponential backoff charged per abort
    backoff_base_cycles: int = 32
    #: exponent cap: delay never exceeds ``base * 2^max_exponent``
    backoff_max_exponent: int = 8
    #: uniform jitter in ``[0, jitter_cycles)`` added to each delay
    jitter_cycles: int = 16
    #: aborts before a transaction is declared starving
    attempt_budget: int = 8
    #: age (cycles since first attempt began) before a transaction is
    #: declared starving regardless of its attempt count
    starvation_age_cycles: int = 200_000
    #: consecutive engine-level begin stalls before a thread is
    #: declared starving (stalls never abort, so the attempt budget
    #: alone cannot catch a permanent begin-stall storm)
    stall_budget: int = 64
    #: escalate starving transactions to serial golden-token mode;
    #: False keeps the backoff/budget accounting but never escalates
    #: (used to demonstrate that escalation is load-bearing)
    escalation: bool = True

    def __post_init__(self) -> None:
        if self.backoff_base_cycles < 0 or self.jitter_cycles < 0:
            raise ConfigError("backoff cycles must be non-negative")
        if self.backoff_max_exponent < 0:
            raise ConfigError("backoff_max_exponent must be >= 0")
        if self.attempt_budget < 1:
            raise ConfigError("attempt_budget must be >= 1")
        if self.starvation_age_cycles < 1:
            raise ConfigError("starvation_age_cycles must be >= 1")
        if self.stall_budget < 1:
            raise ConfigError("stall_budget must be >= 1")

    def delay(self, attempt: int, rng: SplitRandom) -> int:
        """Backoff ticks to charge for a transaction's Nth abort."""
        exponent = min(attempt, self.backoff_max_exponent)
        delay = self.backoff_base_cycles * (1 << exponent)
        if self.jitter_cycles:
            delay += rng.randrange(self.jitter_cycles)
        return delay

    def stall_starved(self, consecutive_stalls: int) -> bool:
        """Begin-site starvation: the stall budget is exhausted.

        Stalls never abort, so the attempt budget alone cannot catch a
        permanent begin-stall storm — this predicate runs on every
        engine begin stall (and on every shed/parked begin in the live
        store).
        """
        return consecutive_stalls >= self.stall_budget

    def abort_starved(self, attempts: int, age: int) -> bool:
        """Abort-site starvation: attempt budget or age watermark hit.

        ``age`` is ticks since the transaction's first attempt began,
        in whatever time base the caller uses (engine: cycles; store:
        milliseconds).
        """
        return (attempts >= self.attempt_budget
                or age >= self.starvation_age_cycles)

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set)."""
        return {
            "backoff_base_cycles": self.backoff_base_cycles,
            "backoff_max_exponent": self.backoff_max_exponent,
            "jitter_cycles": self.jitter_cycles,
            "attempt_budget": self.attempt_budget,
            "starvation_age_cycles": self.starvation_age_cycles,
            "stall_budget": self.stall_budget,
            "escalation": self.escalation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict` (tolerates missing keys)."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class RetryState:
    """Per-transaction retry tracker over an arbitrary time base.

    The engine keeps the equivalent state inline on its thread records
    (``retries``/``first_attempt_clock``/``consecutive_stalls``); this
    class packages the same bookkeeping for callers that live outside
    the simulator — the store's sessions track one ``RetryState`` per
    logical transaction with ``now`` in wall-clock milliseconds.  All
    decisions delegate to the policy's shared predicates, so sim and
    service starvation behaviour can only drift together.
    """

    __slots__ = ("policy", "attempts", "first_attempt_at",
                 "consecutive_stalls", "_rng")

    def __init__(self, policy: RetryPolicy, rng: SplitRandom,
                 now: int = 0):
        self.policy = policy
        self._rng = rng
        self.attempts = 0
        self.first_attempt_at = now
        self.consecutive_stalls = 0

    def note_first_attempt(self, now: int) -> None:
        """Record when the first attempt began (starvation age base)."""
        if self.attempts == 0:
            self.first_attempt_at = now

    def note_stall(self) -> None:
        """One begin-site stall (shed, parked, or Δ-protocol stall)."""
        self.consecutive_stalls += 1

    def note_progress(self) -> None:
        """A begin succeeded: the stall streak resets."""
        self.consecutive_stalls = 0

    def note_abort(self) -> int:
        """Record an abort; returns the backoff delay for this attempt."""
        delay = self.policy.delay(self.attempts, self._rng)
        self.attempts += 1
        return delay

    def starving(self, now: int) -> bool:
        """Is this transaction starving (either predicate)?"""
        return (self.policy.stall_starved(self.consecutive_stalls)
                or self.policy.abort_starved(
                    self.attempts, now - self.first_attempt_at))

    def reset(self, now: int) -> None:
        """The transaction committed: forget its retry history."""
        self.attempts = 0
        self.first_attempt_at = now
        self.consecutive_stalls = 0
