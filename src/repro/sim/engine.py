"""The discrete-event multicore engine.

This is the reproduction's substitute for ZSim (see DESIGN.md): instead of
simulating x86 instructions cycle by cycle, each simulated thread is a
coroutine that yields one *transactional operation* at a time, and the
engine always advances the thread with the **smallest local clock**.  Every
operation is charged its latency from the cache/MVM timing model, so long
transactions genuinely overlap in simulated time with many short ones —
the property that produces the conflict patterns of Figures 1 and 7 — and
the per-thread clocks directly yield the makespans behind Figure 8.

Determinism: ties on the clock break by thread id, all randomness flows
from :class:`~repro.common.rng.SplitRandom` streams, so a run is a pure
function of (workload, system, seed).

Abort handling follows the TM API contract (:mod:`repro.tm.api`):

* self-aborts surface as :class:`TransactionAborted` from ``read``,
  ``write`` or ``commit``;
* eager requester-wins policies *doom* a victim transaction; the engine
  notices the doom mark before the victim's next operation and aborts it
  there (the victim's partially executed work stays charged — re-execution
  cost is exactly what makes high abort rates expensive);
* after an abort the engine re-runs the body from scratch (software
  rollback + restart, as in the paper's baseline) after the system's
  backoff delay.
"""

from __future__ import annotations

import heapq
import sys
from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Iterator, List, Optional

from repro.common.errors import (
    AbortCause,
    SimulationError,
    TransactionAborted,
)
from repro.sim.machine import ThreadArrays
from repro.sim.stats import RunStats
from repro.tm.api import StallRequested, TMSystem, Txn
from repro.tm.ops import Abort, Compute, Op, Read, Write

#: a transaction body: called fresh per attempt, yields Ops
BodyFactory = Callable[[], Generator[Op, object, None]]


@dataclass(frozen=True)
class TransactionSpec:
    """One logical transaction a thread must execute.

    ``serializable=True`` enforces read-write conflict detection for this
    transaction under SI by promoting **all** of its reads (section 5.1:
    "programmers can always enforce serializability by enforcing
    read-write conflict detection for all or a subset of transactions").
    It has no effect under the already-serializable systems.
    """

    body_factory: BodyFactory
    label: str = "txn"
    serializable: bool = False

    def __post_init__(self) -> None:
        # labels repeat across every transaction of a program; interned
        # they make the per-commit ``per_label`` dict probes pointer
        # comparisons (frozen dataclass, hence object.__setattr__)
        object.__setattr__(self, "label", sys.intern(self.label))


class Tracer:
    """Observer interface for trace tools (write-skew tool, oracle).

    The engine invokes these hooks for every transactional event; the
    default implementations do nothing, so tracing costs one attribute
    lookup per event when disabled.  ``on_read``/``on_write`` receive the
    value observed/stored, giving full-history recorders
    (:class:`repro.oracle.history.HistoryRecorder`) everything the
    isolation checker needs; ``on_begin``/``on_commit`` fire after the
    system assigned ``txn.start_ts`` / ``txn.commit_ts``.
    """

    def on_begin(self, txn: Txn) -> None:  # noqa: D102
        pass

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:  # noqa: D102
        pass

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:  # noqa: D102
        pass

    def on_commit(self, txn: Txn) -> None:  # noqa: D102
        pass

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:  # noqa: D102
        pass

    def on_stall(self, thread_id: int, cycles: int) -> None:  # noqa: D102
        # begin stall (Δ-protocol park, escalation quiesce, injected
        # stall storm): there is no Txn yet, so the hook carries the
        # thread id and the cycles charged
        pass


class _ThreadState:
    """Mutable execution state of one simulated thread."""

    __slots__ = ("thread_id", "specs", "spec", "txn", "gen", "pending",
                 "retries", "clock", "done", "redo_op",
                 "first_attempt_clock", "consecutive_stalls", "queued",
                 "queued_clock")

    def __init__(self, thread_id: int, specs: Iterator[TransactionSpec]):
        self.thread_id = thread_id
        self.specs = specs
        self.spec: Optional[TransactionSpec] = None
        self.txn: Optional[Txn] = None
        self.gen: Optional[Generator] = None
        self.pending: object = None
        self.retries = 0
        self.clock = 0
        self.done = False
        #: operation to re-issue after a NACK stall (LogTM-class systems)
        self.redo_op: object = None
        #: clock at the current transaction's first successful begin —
        #: the retry policy's starvation-age watermark
        self.first_attempt_clock = 0
        #: begin stalls since the last successful begin (stall-storm
        #: starvation detection; stalls never abort, so attempt counting
        #: alone cannot see them)
        self.consecutive_stalls = 0
        #: waiting in (or holding) the golden-token escalation queue
        self.queued = False
        #: clock key of this thread's live entry in the scheduler heap —
        #: lazy deletion: a popped entry whose clock differs is stale
        #: (a fresher entry is already queued) and is simply dropped
        self.queued_clock = 0


class _FastLoopBail(Exception):
    """Internal: a fatal condition detected inside the fast loop.

    Raised instead of :class:`SimulationError` so the burst-local state
    is flushed back onto the engine (the loop's ``finally`` blocks run
    during unwinding) *before* the diagnostics snapshot is taken; the
    fast loop's caller converts it, appending ``Engine.diagnostics``.
    """

    __slots__ = ("prefix",)

    def __init__(self, prefix: str):
        self.prefix = prefix
        super().__init__(prefix)


class Engine:
    """Drives thread programs through one TM system to completion."""

    #: cycles charged when a begin must stall (Δ-protocol, section 4.2)
    STALL_CYCLES = 20
    #: consecutive no-progress steps (begin stalls, escalation parks)
    #: before the watchdog raises: a permanent begin-stall — a backend
    #: whose ``begin`` returns None forever, or an unsuppressible stall
    #: storm — would otherwise spin silently to ``max_steps``.  Any
    #: dispatch, successful begin, commit or abort resets the streak, so
    #: a healthy Δ-protocol or overflow-drain stall can never trip it.
    WATCHDOG_STALL_STEPS = 20_000

    def __init__(self, tm: TMSystem,
                 programs: Iterable[Iterable[TransactionSpec]],
                 tracer: Optional[Tracer] = None,
                 promote_sites: Optional[set] = None,
                 soa: Optional[bool] = None):
        self.tm = tm
        self.machine = tm.machine
        #: telemetry registry (None when telemetry is off — the default)
        self.metrics = getattr(tm.machine, "metrics", None)
        #: cycle profiler (None when profiling is off — the default);
        #: a CycleProfiler in the tracer slot overrides this via
        #: attach_engine below
        self.profiler = getattr(tm.machine, "profiler", None)
        # explicit None test: a tracer with __len__ (e.g. TraceRecorder)
        # is falsy while empty and must not be discarded
        self.tracer = tracer if tracer is not None else Tracer()
        # tracers that need cycle timestamps (SpanRecorder) read thread
        # clocks straight off the engine rather than widening the hook
        # signatures every existing tracer implements
        attach = getattr(self.tracer, "attach_engine", None)
        if attach is not None:
            attach(self)
        #: source sites whose reads are force-promoted — the write-skew
        #: tool's automatic read-promotion fix (section 5.1)
        self.promote_sites = promote_sites or set()
        # Restart-cost jitter, applied after every abort regardless of the
        # TM system's backoff policy.  Real restarts never take identical
        # time twice; in a deterministic simulator, charging them equally
        # can lock two eager transactions into mutually aborting forever.
        self._restart_jitter = tm.rng.split("engine-restart-jitter")
        self.threads: List[_ThreadState] = [
            _ThreadState(i, iter(program))
            for i, program in enumerate(programs)]
        if len(self.threads) > self.machine.config.machine.cores:
            raise SimulationError(
                f"{len(self.threads)} threads exceed "
                f"{self.machine.config.machine.cores} cores")
        self.stats = RunStats(len(self.threads))
        tm.stats = self.stats
        self._steps = 0
        #: fault injector shared with the machine/MVM (None — the
        #: default — when the config carries no active plan)
        self.faults = getattr(tm.machine, "faults", None)
        #: engine-level retry policy (:mod:`repro.sim.retry`); None —
        #: the default — keeps the legacy behaviour byte-identical
        self.retry_policy = getattr(tm.machine.config, "retry", None)
        self._retry_rng = (tm.rng.split("engine-retry-backoff")
                           if self.retry_policy is not None else None)
        #: thread ids starving for the golden token, FIFO; the head
        #: runs serially (all other begins park) once in-flight
        #: transactions drain
        self._escalation_queue: List[int] = []
        #: thread id currently holding the golden token, or None
        self._golden: Optional[int] = None
        #: consecutive no-progress steps (watchdog streak)
        self._no_progress = 0
        #: scheduler-heap pushes (lazy-deletion bound: at most one live
        #: entry per thread, so pushes never exceed steps + threads)
        self._heap_pushes = 0
        #: struct-of-arrays layout override for the fast path (None =
        #: auto-select by thread count, see ThreadArrays.for_threads)
        self._soa = soa
        # Construction-time step-path selection: with no tracer, no
        # telemetry, no profiler, no fault injector and no retry policy
        # — the default — every observer hook in the per-operation path
        # is provably dead, so `run` takes the flattened fast loop.
        # Any observer present keeps the fully-guarded legacy path,
        # preserving the zero-overhead contracts of the observability
        # layers (each hook stays one `is not None` test).
        self._fast = (tracer is None
                      and self.metrics is None
                      and self.profiler is None
                      and self.faults is None
                      and self.retry_policy is None)

    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunStats:
        """Run every thread program to completion; return the statistics."""
        if self._fast:
            return self._run_fast(max_steps)
        heap = []
        for t in self.threads:
            t.queued_clock = t.clock
            heap.append((t.clock, t.thread_id))
        heapq.heapify(heap)
        self._heap_pushes += len(heap)
        while heap:
            if max_steps is not None and self._steps >= max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} engine steps\n"
                    + self.diagnostics())
            self._steps += 1
            clock, tid = heapq.heappop(heap)
            thread = self.threads[tid]
            if clock != thread.queued_clock:
                # stale lazy-deletion entry: the thread already has a
                # fresher entry queued, so drop this one — re-pushing
                # would leak one dead heap entry per reschedule
                continue
            if thread.clock != clock:
                # the thread's clock moved outside _step (e.g. an
                # external escalation charge); requeue at the new clock
                thread.queued_clock = thread.clock
                heapq.heappush(heap, (thread.clock, tid))
                self._heap_pushes += 1
                continue
            self._step(thread)
            if not thread.done:
                thread.queued_clock = thread.clock
                heapq.heappush(heap, (thread.clock, tid))
                self._heap_pushes += 1
            else:
                self.stats.threads[tid].cycles = thread.clock
        return self.stats

    # ------------------------------------------------------------------

    def _run_fast(self, max_steps: Optional[int] = None) -> RunStats:
        """The specialized hot loop for fully-unobserved runs.

        Selected at construction when tracer, metrics, profiler, fault
        injector and retry policy are all absent (the default).  The
        schedule — and therefore every statistic, history and RNG draw —
        is byte-identical to the legacy path (pinned by
        ``tests/sim/test_fastpath_differential.py``); only the host-side
        shape of the loop changes:

        * per-op dispatch goes through a handler table of closures over
          hoisted bound methods (``tm.read``, ``stats.record_commit``,
          the op-count columns) instead of a ``type(op) is ...`` chain
          behind three attribute hops; ``Compute`` — the only op with no
          TM interaction and no failure path — is checked ahead of the
          table and handled inline;
        * the NACK-redo case re-enters the same dispatch site rather
          than duplicating the ``try/except`` re-entry block;
        * per-thread clocks and op counters live in struct-of-arrays
          columns (:class:`~repro.sim.machine.ThreadArrays`), and while
          one thread runs, its execution state (spec, txn, generator,
          clock) lives in plain locals, flushed back to
          ``_ThreadState`` by a ``finally`` when the thread leaves the
          CPU — nothing reads that state mid-burst;
        * while the running thread remains the schedule minimum it
          keeps executing without any heap traffic — popping the
          minimum right after pushing it is the identity, so skipping
          the pair cannot reorder the schedule (thread ids break all
          ties, and the heap — hence its head — cannot change while no
          push happens).
        """
        threads = self.threads
        stats = self.stats
        arrays = ThreadArrays.for_threads(len(threads), self._soa)
        clocks = arrays.clocks
        reads = arrays.reads
        writes = arrays.writes
        thread_stats = stats.threads
        for t in threads:
            tid0 = t.thread_id
            clocks[tid0] = t.clock
            reads[tid0] = thread_stats[tid0].reads
            writes[tid0] = thread_stats[tid0].writes
        tm = self.tm
        tm_begin = tm.begin
        tm_read = tm.read
        tm_write = tm.write
        tm_commit = tm.commit
        tm_abort = tm.abort
        record_commit = stats.record_commit
        record_abort = stats.record_abort
        jitter = self._restart_jitter.randrange
        compute_cost = self.machine.config.compute_cycles
        promote_sites = self.promote_sites
        retry_limit = self.machine.config.tm.max_retries
        stall_cycles = self.STALL_CYCLES
        watchdog = self.WATCHDOG_STALL_STEPS
        heappush = heapq.heappush

        steps = self._steps
        no_progress = self._no_progress
        pushes = self._heap_pushes

        def sync() -> None:
            """Flush loop-local state back onto the engine (idempotent)."""
            self._steps = steps
            self._no_progress = no_progress
            self._heap_pushes = pushes
            for t in threads:
                tid = t.thread_id
                t.clock = clocks[tid]
                tstats = thread_stats[tid]
                tstats.reads = reads[tid]
                tstats.writes = writes[tid]

        def on_read(tid, spec, txn, op):
            promote = (op.promote
                       or spec.serializable
                       or (op.site in promote_sites
                           if promote_sites else False))
            value, cycles = tm_read(txn, op.addr, promote)
            reads[tid] += 1
            return value, cycles

        def on_write(tid, spec, txn, op):
            cycles = tm_write(txn, op.addr, op.value)
            writes[tid] += 1
            return None, cycles

        handler_get = {Read: on_read, Write: on_write}.get

        def do_abort(thread, spec, txn, gen, cause) -> int:
            """Abort bookkeeping; returns the cycles to charge."""
            nonlocal no_progress
            cycles = tm_abort(txn, cause)
            cycles += jitter(16)
            record_abort(thread.thread_id, spec.label, cause)
            no_progress = 0
            if gen is not None:
                gen.close()
            retries = thread.retries + 1
            thread.retries = retries
            if retries > stats.max_attempts_seen:
                stats.max_attempts_seen = retries
            return cycles

        limit = (1 << 62) if max_steps is None else max_steps
        inf = float("inf")
        heap = []
        for t in threads:
            t.queued_clock = clocks[t.thread_id]
            heap.append((clocks[t.thread_id], t.thread_id))
        heapq.heapify(heap)
        pushes += len(heap)
        heappop = heapq.heappop
        try:
            try:
                while heap:
                    clock, tid = heappop(heap)
                    thread = threads[tid]
                    if clock != thread.queued_clock:
                        continue  # stale lazy-deletion entry
                    # burst entry: this thread is the schedule minimum;
                    # hoist its execution state into locals until it
                    # leaves the CPU (nothing observes it mid-burst)
                    spec = thread.spec
                    txn = thread.txn
                    gen = thread.gen
                    send = gen.send if gen is not None else None
                    pending = thread.pending
                    redo = thread.redo_op
                    myclock = clocks[tid]
                    if heap:
                        head = heap[0]
                        head_clock = head[0]
                        head_tid = head[1]
                    else:
                        head_clock = inf
                        head_tid = -1
                    try:
                        while True:
                            if steps >= limit:
                                raise _FastLoopBail(
                                    f"exceeded {max_steps} engine steps\n")
                            steps += 1
                            if spec is None:
                                nxt = next(thread.specs, None)
                                if nxt is None:
                                    thread.done = True
                                    thread_stats[tid].cycles = myclock
                                    break
                                spec = nxt
                                thread.retries = 0
                            if txn is None:
                                txn, cycles = tm_begin(tid, spec.label,
                                                       thread.retries)
                                myclock += cycles
                                if txn is None:
                                    myclock += stall_cycles
                                    thread.consecutive_stalls += 1
                                    no_progress += 1
                                    if no_progress >= watchdog:
                                        raise _FastLoopBail(
                                            f"engine watchdog: no progress"
                                            f" in {no_progress} consecutive"
                                            f" steps (permanent begin"
                                            f" stall)\n")
                                else:
                                    thread.consecutive_stalls = 0
                                    no_progress = 0
                                    if thread.retries == 0:
                                        thread.first_attempt_clock = myclock
                                    gen = spec.body_factory()
                                    send = gen.send
                                    pending = None
                            elif txn.doomed is not None:
                                myclock += do_abort(thread, spec, txn,
                                                    gen, txn.doomed)
                                txn = None
                                gen = None
                                send = None
                                redo = None
                                if retry_limit \
                                        and thread.retries > retry_limit:
                                    raise _FastLoopBail(
                                        f"transaction {spec.label!r} "
                                        f"exceeded {retry_limit} "
                                        f"retries\n")
                            else:
                                op = redo
                                if op is not None:
                                    redo = None
                                    pending = None
                                else:
                                    try:
                                        op = send(pending)
                                    except StopIteration:
                                        op = None
                                        # body exhausted: commit now
                                        if txn.doomed is not None:
                                            myclock += do_abort(
                                                thread, spec, txn,
                                                gen, txn.doomed)
                                            txn = None
                                            gen = None
                                            send = None
                                            redo = None
                                            if retry_limit and \
                                                    thread.retries \
                                                    > retry_limit:
                                                raise _FastLoopBail(
                                                    f"transaction "
                                                    f"{spec.label!r} "
                                                    f"exceeded "
                                                    f"{retry_limit} "
                                                    f"retries\n")
                                        else:
                                            try:
                                                cycles = tm_commit(
                                                    txn, myclock)
                                            except TransactionAborted \
                                                    as aborted:
                                                myclock += do_abort(
                                                    thread, spec, txn,
                                                    gen, aborted.cause)
                                                txn = None
                                                gen = None
                                                send = None
                                                redo = None
                                                if retry_limit and \
                                                        thread.retries \
                                                        > retry_limit:
                                                    raise _FastLoopBail(
                                                        f"transaction "
                                                        f"{spec.label!r}"
                                                        f" exceeded "
                                                        f"{retry_limit} "
                                                        f"retries\n")
                                            else:
                                                myclock += cycles
                                                record_commit(
                                                    tid, spec.label,
                                                    thread.retries)
                                                no_progress = 0
                                                spec = None
                                                txn = None
                                                gen = None
                                                send = None
                                    except TransactionAborted as aborted:
                                        op = None
                                        myclock += do_abort(
                                            thread, spec, txn,
                                            gen, aborted.cause)
                                        txn = None
                                        gen = None
                                        send = None
                                        redo = None
                                        if retry_limit and \
                                                thread.retries \
                                                > retry_limit:
                                            raise _FastLoopBail(
                                                f"transaction "
                                                f"{spec.label!r} "
                                                f"exceeded "
                                                f"{retry_limit} "
                                                f"retries\n")
                                    else:
                                        pending = None
                                if op is not None:
                                    no_progress = 0
                                    cls = op.__class__
                                    if cls is Compute:
                                        myclock += (op.cycles
                                                    * compute_cost)
                                    else:
                                        try:
                                            handler = handler_get(cls)
                                            if handler is not None:
                                                pending, cycles = handler(
                                                    tid, spec, txn, op)
                                                myclock += cycles
                                            elif cls is Abort:
                                                raise TransactionAborted(
                                                    AbortCause.EXPLICIT)
                                            else:
                                                raise SimulationError(
                                                    f"unknown operation "
                                                    f"{op!r}")
                                        except StallRequested as stall:
                                            myclock += stall.cycles
                                            redo = op
                                        except TransactionAborted \
                                                as aborted:
                                            myclock += do_abort(
                                                thread, spec, txn,
                                                gen, aborted.cause)
                                            txn = None
                                            gen = None
                                            send = None
                                            redo = None
                                            if retry_limit and \
                                                    thread.retries \
                                                    > retry_limit:
                                                raise _FastLoopBail(
                                                    f"transaction "
                                                    f"{spec.label!r} "
                                                    f"exceeded "
                                                    f"{retry_limit} "
                                                    f"retries\n")
                            # scheduling tail: keep the CPU while still
                            # the schedule minimum (the heap head cannot
                            # change during the burst: no pushes happen)
                            if head_clock < myclock or (
                                    head_clock == myclock
                                    and head_tid < tid):
                                thread.queued_clock = myclock
                                heappush(heap, (myclock, tid))
                                pushes += 1
                                break
                    finally:
                        # burst exit (break, bail or foreign exception):
                        # flush the hoisted locals back where the outer
                        # loop, sync() and diagnostics expect them
                        thread.spec = spec
                        thread.txn = txn
                        thread.gen = gen
                        thread.pending = pending
                        thread.redo_op = redo
                        clocks[tid] = myclock
            finally:
                sync()
        except _FastLoopBail as bail:
            raise SimulationError(bail.prefix + self.diagnostics()) \
                from None
        return stats

    # ------------------------------------------------------------------

    def _step(self, thread: _ThreadState) -> None:
        """Execute one operation (or begin/commit/abort) of ``thread``."""
        if thread.spec is None:
            nxt = next(thread.specs, None)
            if nxt is None:
                thread.done = True
                return
            thread.spec = nxt
            thread.retries = 0
        if thread.txn is None:
            self._begin(thread)
            return
        txn = thread.txn
        if txn.doomed is not None:
            self._abort(thread, txn.doomed)
            return
        if thread.redo_op is not None:
            op, thread.redo_op = thread.redo_op, None
            thread.pending = None
            try:
                self._dispatch(thread, txn, op)
            except StallRequested as stall:
                thread.clock += stall.cycles
                if self.profiler is not None:
                    self.profiler.account(thread.thread_id, "stall",
                                          stall.cycles)
                thread.redo_op = op
            except TransactionAborted as aborted:
                self._abort(thread, aborted.cause)
            return
        try:
            op = thread.gen.send(thread.pending)
        except StopIteration:
            try:
                self._commit(thread)
            except TransactionAborted as aborted:
                self._abort(thread, aborted.cause)
            return
        except TransactionAborted as aborted:
            self._abort(thread, aborted.cause)
            return
        thread.pending = None
        try:
            self._dispatch(thread, txn, op)
        except StallRequested as stall:
            thread.clock += stall.cycles
            if self.profiler is not None:
                self.profiler.account(thread.thread_id, "stall",
                                      stall.cycles)
            thread.redo_op = op
        except TransactionAborted as aborted:
            self._abort(thread, aborted.cause)

    def _dispatch(self, thread: _ThreadState, txn: Txn, op: Op) -> None:
        self._no_progress = 0
        tstats = self.stats.threads[thread.thread_id]
        if type(op) is Read:
            promote = (op.promote
                       or thread.spec.serializable
                       or (op.site in self.promote_sites
                           if self.promote_sites else False))
            value, cycles = self.tm.read(txn, op.addr, promote=promote)
            thread.pending = value
            thread.clock += cycles
            if self.profiler is not None:
                self.profiler.account(thread.thread_id, "read", cycles)
            tstats.reads += 1
            self.tracer.on_read(txn, op.addr, op.site, value)
        elif type(op) is Write:
            cycles = self.tm.write(txn, op.addr, op.value)
            thread.clock += cycles
            if self.profiler is not None:
                self.profiler.account(thread.thread_id, "write", cycles)
            tstats.writes += 1
            self.tracer.on_write(txn, op.addr, op.site, op.value)
        elif type(op) is Compute:
            cycles = op.cycles * self.machine.config.compute_cycles
            thread.clock += cycles
            if self.profiler is not None:
                self.profiler.account(thread.thread_id, "compute", cycles)
        elif type(op) is Abort:
            raise TransactionAborted(AbortCause.EXPLICIT)
        else:
            raise SimulationError(f"unknown operation {op!r}")

    def _begin(self, thread: _ThreadState) -> None:
        if not self._may_begin(thread):
            # escalation quiesce: a starving thread heads the queue, so
            # everyone else parks at begin until it commits serially
            self._stall(thread)
            return
        if self.faults is not None and self.faults.begin_stall():
            # injected stall storm: the begin request never reaches the
            # TM system (a saturated timestamp-issue port)
            self._stall(thread)
            return
        txn, cycles = self.tm.begin(
            thread.thread_id, thread.spec.label, thread.retries)
        thread.clock += cycles
        if self.profiler is not None:
            self.profiler.account(thread.thread_id, "begin", cycles)
        if txn is None:
            self._stall(thread)
            return
        thread.consecutive_stalls = 0
        self._no_progress = 0
        if thread.retries == 0:
            thread.first_attempt_clock = thread.clock
        thread.txn = txn
        thread.gen = thread.spec.body_factory()
        thread.pending = None
        self.tracer.on_begin(txn)

    def _stall(self, thread: _ThreadState) -> None:
        """Charge one begin stall; detect stall starvation and no-progress."""
        thread.clock += self.STALL_CYCLES
        if self.profiler is not None:
            self.profiler.account(thread.thread_id, "begin_stall",
                                  self.STALL_CYCLES)
        if self.metrics is not None:
            self.metrics.inc("engine_begin_stalls")
            self.metrics.inc("engine_begin_stall_cycles",
                             self.STALL_CYCLES)
        self.tracer.on_stall(thread.thread_id, self.STALL_CYCLES)
        thread.consecutive_stalls += 1
        policy = self.retry_policy
        if (policy is not None and policy.escalation
                and not thread.queued
                and policy.stall_starved(thread.consecutive_stalls)):
            self._enqueue(thread)
        self._no_progress += 1
        if self._no_progress >= self.WATCHDOG_STALL_STEPS:
            raise SimulationError(
                f"engine watchdog: no progress in {self._no_progress} "
                f"consecutive steps (permanent begin stall)\n"
                + self.diagnostics())

    # -- golden-token escalation (repro.sim.retry) ---------------------

    def _may_begin(self, thread: _ThreadState) -> bool:
        """Gate begins while the escalation queue works off starvation."""
        if self._golden is not None:
            return self._golden == thread.thread_id
        if not self._escalation_queue:
            return True
        if self._escalation_queue[0] != thread.thread_id:
            return False
        if self.tm.active_txns:
            # the head waits for in-flight transactions to drain before
            # taking the token; ops/commits/aborts are never gated, so
            # the drain always completes
            return False
        self._acquire_golden(thread)
        return True

    def _enqueue(self, thread: _ThreadState) -> None:
        thread.queued = True
        self._escalation_queue.append(thread.thread_id)

    def _acquire_golden(self, thread: _ThreadState) -> None:
        self._golden = thread.thread_id
        self.stats.escalations += 1
        # the token holder runs as a software fallback: hardware
        # capacity bounds do not apply, so a transaction whose
        # footprint can never fit still terminates
        self.tm.capacity_suppressed = True
        if self.faults is not None:
            # the token holder runs fault-free: a serial, unfaulted
            # transaction commits in every backend, so each escalation
            # makes strict progress
            self.faults.suppressed = True
        if self.metrics is not None:
            self.metrics.inc("engine_escalations")

    def _release_golden(self, thread: _ThreadState) -> None:
        self._golden = None
        thread.queued = False
        self._escalation_queue.pop(0)
        self.tm.capacity_suppressed = False
        if self.faults is not None:
            self.faults.suppressed = False

    def _commit(self, thread: _ThreadState) -> None:
        txn = thread.txn
        assert txn is not None
        if txn.doomed is not None:
            self._abort(thread, txn.doomed)
            return
        if self.faults is not None and self.faults.spurious_abort():
            # injected conflict-detection false positive, surfaced with
            # the backend's own declared cause so oracle cause checks
            # treat it like any legal abort
            self._abort(thread, self.tm.SPURIOUS_ABORT_CAUSE)
            return
        cycles = self.tm.commit(txn, thread.clock)
        thread.clock += cycles
        if self.profiler is not None:
            self.profiler.account(thread.thread_id, "commit", cycles)
        self.stats.record_commit(thread.thread_id, thread.spec.label,
                                 thread.retries)
        self.tracer.on_commit(txn)
        self._no_progress = 0
        if self._golden == thread.thread_id:
            self._release_golden(thread)
        thread.spec = None
        thread.txn = None
        thread.gen = None

    def _abort(self, thread: _ThreadState, cause: AbortCause) -> None:
        txn = thread.txn
        assert txn is not None
        cycles = self.tm.abort(txn, cause)
        jitter = self._restart_jitter.randrange(16)
        thread.clock += cycles + jitter
        if self.profiler is not None:
            self.profiler.account(thread.thread_id, "abort",
                                  cycles + jitter)
            self.profiler.sub_account(thread.thread_id, "abort",
                                      "restart_jitter", jitter)
        policy = self.retry_policy
        if policy is not None:
            # engine-level capped exponential backoff with jitter, on
            # top of whatever the backend already charged
            delay = policy.delay(thread.retries, self._retry_rng)
            thread.clock += delay
            if self.profiler is not None:
                self.profiler.account(thread.thread_id, "abort", delay)
                self.profiler.sub_account(thread.thread_id, "abort",
                                          "retry_backoff", delay)
            if self.metrics is not None:
                self.metrics.inc("engine_retry_backoff_cycles", delay)
        self.stats.record_abort(thread.thread_id, thread.spec.label, cause)
        self.tracer.on_abort(txn, cause)
        self._no_progress = 0
        if thread.gen is not None:
            thread.gen.close()
        thread.txn = None
        thread.gen = None
        thread.redo_op = None
        thread.retries += 1
        self.stats.max_attempts_seen = max(self.stats.max_attempts_seen,
                                           thread.retries)
        if (policy is not None and policy.escalation
                and not thread.queued
                and policy.abort_starved(
                    thread.retries,
                    thread.clock - thread.first_attempt_clock)):
            self._enqueue(thread)
        limit = self.machine.config.tm.max_retries
        if limit and thread.retries > limit:
            raise SimulationError(
                f"transaction {thread.spec.label!r} exceeded {limit} "
                f"retries\n" + self.diagnostics())

    # ------------------------------------------------------------------

    @property
    def steps_taken(self) -> int:
        """Engine steps executed so far (one step = one scheduler slot)."""
        return self._steps

    def diagnostics(self) -> str:
        """Execution-state dump for no-progress failures.

        Attached to the :class:`SimulationError` raised on ``max_steps``
        exhaustion or retry-limit overrun, so a stuck run (a livelocked
        broken backend, a pathological schedule) is diagnosable from the
        exception alone: per-thread position, the retry distribution,
        and which abort causes dominated.
        """
        lines = [f"engine diagnostics after {self._steps} steps:"]
        for thread in self.threads:
            if thread.done:
                state = "done"
            elif thread.txn is None:
                state = "between transactions"
            else:
                state = f"in txn (doomed={thread.txn.doomed})"
            label = thread.spec.label if thread.spec is not None else "-"
            tstats = self.stats.threads[thread.thread_id]
            lines.append(
                f"  thread {thread.thread_id}: clock={thread.clock} "
                f"spec={label!r} retries={thread.retries} {state} "
                f"commits={tstats.commits} aborts={tstats.aborts} "
                f"stalls={thread.consecutive_stalls}")
        if self._golden is not None or self._escalation_queue:
            lines.append(
                f"  escalation: golden={self._golden} "
                f"queue={self._escalation_queue} "
                f"escalations={self.stats.escalations}")
        if self._no_progress:
            lines.append(f"  no-progress streak: {self._no_progress} steps")
        if self.faults is not None:
            injected = self.faults.stats()["injected"]
            if injected:
                sites = " ".join(f"{site}:{n}"
                                 for site, n in injected.items())
                lines.append(f"  injected faults: {sites}")
        if self.stats.retry_histogram:
            retries = " ".join(
                f"{k}:{v}"
                for k, v in sorted(self.stats.retry_histogram.items()))
            lines.append(f"  retries-to-commit histogram: {retries}")
        if self.stats.abort_causes:
            top = sorted(self.stats.abort_causes.items(),
                         key=lambda item: (-item[1], item[0].value))[:5]
            causes = " ".join(f"{cause.value}:{n}" for cause, n in top)
            lines.append(f"  top abort causes: {causes}")
        return "\n".join(lines)
