"""Noise-aware comparison of two BENCH artifacts.

The comparator answers one question per deterministic metric: *did it
move more than seed noise explains?*  Tolerances derive from the seed
relative standard deviation recorded in the artifacts themselves —
``tolerance = max(floor, multiplier x max(base, current) stddev)`` —
so a workload whose seeds naturally scatter 3% is not flagged for a 4%
wobble, while a tight workload is flagged for the same 4%.

Verdict semantics:

* **regressions** (exit non-zero): throughput drop or abort-rate rise
  beyond tolerance, a phase's cycle share shifting beyond its absolute
  tolerance, a cell present in the baseline but missing now, or
  artifacts from different suites (not comparable at all);
* **warnings** (advisory, never fatal): wall-clock slowdown, cells new
  in the current artifact, identical code fingerprints (the comparison
  is then vacuous) and improvements worth noting in the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["CompareReport", "compare_artifacts",
           "THROUGHPUT_FLOOR", "ABORT_RATE_FLOOR", "PHASE_SHARE_TOL",
           "STDDEV_MULTIPLIER", "WALL_CLOCK_WARN_RATIO"]

#: minimum relative throughput change considered meaningful
THROUGHPUT_FLOOR = 0.05
#: minimum absolute abort-rate change considered meaningful
ABORT_RATE_FLOOR = 0.02
#: absolute tolerance on a phase's share of total cycles
PHASE_SHARE_TOL = 0.05
#: how many seed stddevs a deterministic metric may legitimately move
STDDEV_MULTIPLIER = 3.0
#: advisory wall-clock ratio above which a warning is emitted
WALL_CLOCK_WARN_RATIO = 1.5


@dataclass
class CompareReport:
    """Outcome of one artifact comparison."""

    base_label: str
    current_label: str
    regressions: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no deterministic metric regressed."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable comparison summary."""
        lines = [f"Bench compare: {self.base_label} -> "
                 f"{self.current_label}"]
        for regression in self.regressions:
            lines.append(f"  REGRESSION: {regression}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for improvement in self.improvements:
            lines.append(f"  improved: {improvement}")
        if self.passed:
            lines.append("  PASS: no deterministic regressions")
        else:
            lines.append(f"  FAIL: {len(self.regressions)} deterministic "
                         f"regression(s)")
        return "\n".join(lines)


def compare_artifacts(base: dict, current: dict,
                      throughput_floor: float = THROUGHPUT_FLOOR,
                      abort_rate_floor: float = ABORT_RATE_FLOOR,
                      phase_share_tol: float = PHASE_SHARE_TOL,
                      stddev_multiplier: float = STDDEV_MULTIPLIER,
                      ) -> CompareReport:
    """Diff two validated BENCH artifacts; see the module docstring.

    ``base`` is the reference (the committed baseline), ``current`` the
    candidate.  Both must come from :func:`repro.perf.bench.
    load_artifact` or :func:`~repro.perf.bench.run_bench` — validation
    is the caller's job.
    """
    report = CompareReport(base.get("label", "?"),
                           current.get("label", "?"))
    if base.get("suite") != current.get("suite") \
            or base.get("profile") != current.get("profile") \
            or base.get("seeds") != current.get("seeds"):
        report.regressions.append(
            f"artifacts are not comparable: suite/profile/seeds differ "
            f"({base.get('suite')}/{base.get('profile')}/"
            f"{base.get('seeds')} vs {current.get('suite')}/"
            f"{current.get('profile')}/{current.get('seeds')})")
        return report
    if base.get("code_fingerprint") == current.get("code_fingerprint"):
        report.warnings.append(
            "identical code fingerprints: comparing a code version "
            "against itself")

    base_cells = base["deterministic"]
    current_cells = current["deterministic"]
    for key in sorted(base_cells):
        if key not in current_cells:
            report.regressions.append(
                f"{key}: cell present in baseline but missing now")
            continue
        b, c = base_cells[key], current_cells[key]

        # throughput: relative drop vs noise-aware tolerance
        tol = max(throughput_floor,
                  stddev_multiplier * max(b["throughput_rel_stddev"],
                                          c["throughput_rel_stddev"]))
        if b["throughput"] > 0:
            delta = (c["throughput"] - b["throughput"]) / b["throughput"]
            if delta < -tol:
                report.regressions.append(
                    f"{key}: throughput {b['throughput']:.2f} -> "
                    f"{c['throughput']:.2f} commits/Mcycle "
                    f"({100 * delta:+.1f}%, tolerance "
                    f"{100 * tol:.1f}%)")
            elif delta > tol:
                report.improvements.append(
                    f"{key}: throughput {100 * delta:+.1f}%")

        # abort rate: absolute rise vs noise-aware tolerance
        tol_abs = max(abort_rate_floor,
                      stddev_multiplier * max(b["abort_rate_stddev"],
                                              c["abort_rate_stddev"]))
        rise = c["abort_rate"] - b["abort_rate"]
        if rise > tol_abs:
            report.regressions.append(
                f"{key}: abort rate {b['abort_rate']:.3f} -> "
                f"{c['abort_rate']:.3f} (+{rise:.3f}, tolerance "
                f"{tol_abs:.3f})")
        elif rise < -tol_abs:
            report.improvements.append(
                f"{key}: abort rate {rise:+.3f}")

        # phase shares: absolute shift per phase (conserved totals, so
        # shares are comparable even when absolute cycles legitimately
        # move); a phase appearing/vanishing counts as a full shift
        phases = set(b.get("phase_shares", {})) \
            | set(c.get("phase_shares", {}))
        for phase in sorted(phases):
            b_share = b.get("phase_shares", {}).get(phase, 0.0)
            c_share = c.get("phase_shares", {}).get(phase, 0.0)
            if abs(c_share - b_share) > phase_share_tol:
                report.regressions.append(
                    f"{key}: phase {phase!r} share "
                    f"{100 * b_share:.1f}% -> {100 * c_share:.1f}% "
                    f"(tolerance {100 * phase_share_tol:.0f} points)")

    for key in sorted(set(current_cells) - set(base_cells)):
        report.warnings.append(f"{key}: new cell, no baseline to compare")

    # advisory: host-dependent, never fatal
    base_wall = base.get("advisory", {}).get("wall_clock_s", 0)
    cur_wall = current.get("advisory", {}).get("wall_clock_s", 0)
    if base_wall and cur_wall / base_wall > WALL_CLOCK_WARN_RATIO:
        report.warnings.append(
            f"wall clock {base_wall:.2f}s -> {cur_wall:.2f}s "
            f"({cur_wall / base_wall:.2f}x, advisory — host/cache "
            f"dependent)")
    return report
