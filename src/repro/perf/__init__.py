"""``repro.perf`` — benchmark-trajectory tracking for the simulator.

The ROADMAP's north star says the reproduction must stay "as fast as
the hardware allows"; this package is the guardrail.  ``sitm-harness
bench`` runs a pinned suite of simulation cells through the harness
executor and writes a schema-versioned ``results/bench/BENCH_<label>``
``.json`` artifact (:mod:`repro.perf.bench`); ``bench --compare``
diffs two artifacts with noise-aware thresholds derived from seed
relative standard deviation and fails on deterministic-metric
regressions (:mod:`repro.perf.compare`).  The artifact format and its
versioning rules live in ``docs/bench-schema.md``.
"""

from repro.perf.bench import (BENCH_DIR_ENV, DEFAULT_BENCH_DIR, SUITES,
                              BenchSuite, artifact_path, load_artifact,
                              run_bench, save_artifact, validate_artifact)
from repro.perf.compare import CompareReport, compare_artifacts
from repro.perf.micro import (PRE_REFACTOR_BASELINE, run_dispatch_micro,
                              run_fullstack_micro)

__all__ = [
    "BENCH_DIR_ENV", "DEFAULT_BENCH_DIR", "SUITES", "BenchSuite",
    "artifact_path", "load_artifact", "run_bench", "save_artifact",
    "validate_artifact",
    "CompareReport", "compare_artifacts",
    "PRE_REFACTOR_BASELINE", "run_dispatch_micro", "run_fullstack_micro",
]
