"""Pinned micro-benchmarks: host-side hot-loop throughput.

The suite artifacts (:mod:`repro.perf.bench`) measure *simulated*
throughput, which is deterministic and cannot move when only the host
cost of the hot loop changes.  This module measures the other axis: how
many engine steps per wall-clock second the discrete-event loop
dispatches on this machine.  Two pinned grids cover the two regimes:

* the **dispatch micro** (:func:`run_dispatch_micro`) — 64 simulated
  threads with deliberately skewed compute costs: one "driver" thread
  issues long runs of unit-cost :class:`~repro.tm.ops.Compute` ops
  while the other 63 threads issue few, very expensive ones.  The
  driver therefore stays the schedule minimum for hundreds of
  consecutive steps, which is exactly the shape the flat fast loop's
  consecutive-run burst batching accelerates (no heap traffic, no
  per-step thread-state stores).  Writes land on per-thread private
  lines, so aborts are exactly zero and the measurement isolates
  engine dispatch from TM behaviour.  The flat-loop refactor's
  headline claim (ISSUE 6 / ``BENCH_flat_loop.json``) is recorded
  against this grid.
* the **full-stack micro** (:func:`run_fullstack_micro`) — 32 threads
  of mostly-disjoint read/write/compute transactions over one shared
  MVM array under SI-TM with near-zero aborts.  Every step crosses the
  TM read/write path, cache timing and MVM snapshot reads, so this
  number moves with the whole stack, not just the engine loop.  It is
  recorded as *advisory* context next to the dispatch number.

Both grids assert their expected commit/abort counts, so a refactor
that changed observable behaviour fails loudly instead of producing a
silently incomparable number.  ``min``-of-N wall-clock absorbs
scheduler noise.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.tm.ops import Compute, Read, Write

__all__ = [
    "MICRO_THREADS", "MICRO_TXNS_PER_THREAD", "MICRO_OPS_PER_TXN",
    "MICRO_SLOTS_PER_THREAD",
    "DISPATCH_THREADS", "DISPATCH_DRIVER_TXNS",
    "DISPATCH_DRIVER_COMPUTES", "DISPATCH_SLOW_COST",
    "DISPATCH_SLOW_OPS", "DISPATCH_SLOW_TXNS",
    "PRE_REFACTOR_BASELINE",
    "run_dispatch_micro", "run_fullstack_micro",
]

# ---------------------------------------------------------------------------
# pinned shapes — changing any of these invalidates every recorded
# steps/s comparison, so extend by adding parameters to the run
# functions, not by editing the defaults

#: full-stack grid: threads × txns × ops over a shared MVM array
MICRO_THREADS = 32
MICRO_TXNS_PER_THREAD = 48
MICRO_OPS_PER_TXN = 12
#: slots in the shared MVM array; threads touch mostly-private stripes
#: so aborts stay near zero and per-op cost dominates
MICRO_SLOTS_PER_THREAD = 8

#: dispatch grid: one fast driver thread among 63 slow ones
DISPATCH_THREADS = 64
DISPATCH_DRIVER_TXNS = 80
#: unit-cost Compute ops per driver transaction — the burst length
DISPATCH_DRIVER_COMPUTES = 1000
#: simulated cycles per slow-thread Compute: while a slow thread burns
#: this many cycles in one step, the driver dispatches this many steps
DISPATCH_SLOW_COST = 8000
DISPATCH_SLOW_OPS = 4
DISPATCH_SLOW_TXNS = 3

#: steps/s measured with these exact grids on the commit *before* the
#: flat-loop refactor (ISSUE 6), via a pristine worktree of that
#: revision on the development host.  Host-specific — meaningful only
#: relative to post-refactor numbers measured on the same host, which
#: is how ``BENCH_flat_loop.json`` records the speedup.
PRE_REFACTOR_BASELINE: Dict[str, float] = {
    "dispatch": 732981.2,
    "fullstack": 285034.8,
}


def _machine(threads: int) -> Machine:
    config = SimConfig()
    if threads > config.machine.cores:
        config = config.replace(
            machine=dataclasses.replace(config.machine, cores=threads))
    return Machine(config)


def _fullstack_programs(base: int, threads: int, txns: int,
                        ops: int) -> List[List[TransactionSpec]]:
    """Per-thread spec lists: disjoint read/write/compute stripes."""
    programs: List[List[TransactionSpec]] = []
    for tid in range(threads):
        stripe = base + tid * MICRO_SLOTS_PER_THREAD

        def body(stripe: int = stripe, ops: int = ops):
            total = 0
            for i in range(ops - 3):
                total += yield Read(stripe + i % MICRO_SLOTS_PER_THREAD,
                                    site="micro.read")
            yield Compute(2)
            yield Write(stripe, total, site="micro.write")
            yield Write(stripe + 1, total + 1, site="micro.write2")

        programs.append([TransactionSpec(body, "micro")
                         for _ in range(txns)])
    return programs


def _dispatch_programs(machine: Machine, base: int, threads: int,
                       driver_txns: int, driver_computes: int,
                       slow_cost: int, slow_ops: int,
                       slow_txns: int) -> List[List[TransactionSpec]]:
    """Driver thread 0 plus ``threads - 1`` slow compute threads.

    The driver's compute ops are preallocated once and replayed via
    ``yield from`` — the engine never mutates op descriptors, so
    sharing instances across yields and transactions is safe and keeps
    the generator resumption as cheap as a tuple iterator.  Each
    thread writes one private cache line per transaction (lines, not
    just words, are disjoint) so the grid commits everything and
    aborts nothing.
    """
    wpl = machine.address_map.words_per_line
    fast_ops = tuple(Compute(1) for _ in range(driver_computes))
    slow_op = Compute(slow_cost)
    programs: List[List[TransactionSpec]] = []

    def driver_body():
        yield from fast_ops
        yield Write(base, 1, site="micro.driver")

    programs.append([TransactionSpec(driver_body, "driver")
                     for _ in range(driver_txns)])
    for tid in range(1, threads):
        def slow_body(tid: int = tid):
            for _ in range(slow_ops):
                yield slow_op
            yield Write(base + tid * wpl, tid, site="micro.slow")

        programs.append([TransactionSpec(slow_body, "slow")
                         for _ in range(slow_txns)])
    return programs


def _timed_runs(factory, reps: int, expected_commits: int):
    """min-of-``reps`` cold runs; returns (steps, best_wall_s)."""
    steps = 0
    best = None
    for _ in range(max(1, reps)):
        engine = factory()
        started = time.perf_counter()
        stats = engine.run()
        elapsed = time.perf_counter() - started
        if stats.total_commits != expected_commits:
            raise AssertionError(
                f"micro-benchmark must commit {expected_commits} txns, "
                f"got {stats.total_commits}")
        if stats.total_aborts:
            raise AssertionError(
                f"micro-benchmark grid must not abort, "
                f"got {stats.total_aborts} aborts")
        steps = engine.steps_taken
        best = elapsed if best is None else min(best, elapsed)
    return steps, best


def _result(name: str, steps: int, wall: float,
            baseline: Optional[float], extra: Dict[str, float],
            ) -> Dict[str, float]:
    result: Dict[str, float] = dict(extra)
    result["grid"] = name
    result["system_steps"] = steps
    result["wall_s"] = round(wall, 6)
    result["steps_per_s"] = round(steps / wall, 1) if wall else 0.0
    if baseline:
        result["baseline_steps_per_s"] = baseline
        result["speedup"] = round(result["steps_per_s"] / baseline, 2)
    return result


def run_dispatch_micro(threads: int = DISPATCH_THREADS,
                       driver_txns: int = DISPATCH_DRIVER_TXNS,
                       driver_computes: int = DISPATCH_DRIVER_COMPUTES,
                       reps: int = 3,
                       system: str = "SI-TM",
                       baseline_steps_per_s: Optional[float] = None,
                       ) -> Dict[str, float]:
    """Time the skewed dispatch grid; return the measurement dict.

    ``reps`` full cold-machine runs are timed and the *minimum* wall
    clock wins (the stable estimator of the true cost floor).  When
    ``baseline_steps_per_s`` is given — e.g.
    ``PRE_REFACTOR_BASELINE["dispatch"]`` on the host that recorded it
    — the result includes the achieved ``speedup`` against it.
    """
    def factory() -> Engine:
        machine = _machine(threads)
        wpl = machine.address_map.words_per_line
        base = machine.mvmalloc(threads * wpl)
        programs = _dispatch_programs(
            machine, base, threads, driver_txns, driver_computes,
            DISPATCH_SLOW_COST, DISPATCH_SLOW_OPS, DISPATCH_SLOW_TXNS)
        return Engine(SYSTEMS[system](machine, SplitRandom(7)), programs)

    expected = driver_txns + (threads - 1) * DISPATCH_SLOW_TXNS
    steps, best = _timed_runs(factory, reps, expected)
    return _result("dispatch", steps, best, baseline_steps_per_s, {
        "threads": threads,
        "driver_txns": driver_txns,
        "driver_computes": driver_computes,
    })


def run_fullstack_micro(threads: int = MICRO_THREADS,
                        txns: int = MICRO_TXNS_PER_THREAD,
                        ops: int = MICRO_OPS_PER_TXN,
                        reps: int = 3,
                        system: str = "SI-TM",
                        baseline_steps_per_s: Optional[float] = None,
                        ) -> Dict[str, float]:
    """Time the full-stack read/write grid; return the measurement dict."""
    def factory() -> Engine:
        machine = _machine(threads)
        base = machine.mvmalloc(threads * MICRO_SLOTS_PER_THREAD)
        programs = _fullstack_programs(base, threads, txns, ops)
        return Engine(SYSTEMS[system](machine, SplitRandom(7)), programs)

    steps, best = _timed_runs(factory, reps, threads * txns)
    return _result("fullstack", steps, best, baseline_steps_per_s, {
        "threads": threads,
        "txns_per_thread": txns,
        "ops_per_txn": ops,
    })


def main() -> None:
    """CLI entry: run both grids and print one line each."""
    for result in (run_dispatch_micro(), run_fullstack_micro()):
        print(f"{result['grid']}: {result['system_steps']} steps in "
              f"{result['wall_s']}s = {result['steps_per_s']:,.0f} "
              f"steps/s")


if __name__ == "__main__":
    main()
