"""Benchmark suites and the ``BENCH_*.json`` artifact format.

A **suite** is a pinned grid of simulation cells (workload, system,
threads) run over fixed seeds at a fixed workload profile — pinned so
that two artifacts produced from the same code are byte-identical in
their deterministic section, and two artifacts produced from different
code versions measure the same work.

An **artifact** separates metrics by trust level:

* ``deterministic`` — per-cell throughput, abort rate, commit/abort
  counts, makespan, and per-phase cycle shares from the profiler.
  These are pure functions of (code, suite); any change between two
  artifacts is a real behavioural change, so the comparator *gates* on
  them (with seed-stddev-aware tolerances for the seed-averaged ones).
* ``advisory`` — wall-clock seconds and executor cache-hit rate.
  These measure the host machine and cache state, not the simulator;
  the comparator only *warns* on them.

The schema is versioned (``schema``/``schema_version`` fields);
``docs/bench-schema.md`` documents the layout and the rules for
bumping the version.  :func:`validate_artifact` checks an artifact
against the schema without any external dependency.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SimConfig, TMConfig
from repro.common.errors import ConfigError
from repro.harness.executor import Executor, code_fingerprint, \
    serial_executor
from repro.harness.spec import ExperimentSpec
from repro.sim.retry import RetryPolicy

__all__ = ["SCHEMA", "SCHEMA_VERSION", "BENCH_DIR_ENV",
           "DEFAULT_BENCH_DIR", "SUITES", "BenchSuite", "artifact_path",
           "load_artifact", "run_bench", "save_artifact",
           "validate_artifact"]

#: artifact format identifier
SCHEMA = "sitm-bench"
#: bump on any breaking layout change (see docs/bench-schema.md)
SCHEMA_VERSION = 1

#: committed artifact location, relative to the repository root / CWD
DEFAULT_BENCH_DIR = pathlib.Path("results") / "bench"
#: environment override for the artifact location (test isolation)
BENCH_DIR_ENV = "SITM_BENCH_DIR"


@dataclass(frozen=True)
class BenchSuite:
    """A pinned grid of bench cells: the unit two artifacts can compare.

    Cells are ``(workload, system, threads)`` triples; every cell runs
    ``seeds`` consecutive seeds (from 1) at workload ``profile``.
    ``config`` optionally pins a non-default simulation config for the
    whole suite (the capacity suite bounds the read/write sets); the
    default ``None`` keeps every pre-existing suite's spec hashes — and
    therefore its artifact history — untouched.
    """

    name: str
    cells: Tuple[Tuple[str, str, int], ...]
    seeds: int = 2
    profile: str = "test"
    config: Optional[SimConfig] = None

    def specs(self) -> List[ExperimentSpec]:
        """The suite's full spec list, profiling enabled, in grid order."""
        return [ExperimentSpec(workload, system, threads, seed,
                               self.profile, self.config, profiling=True)
                for workload, system, threads in self.cells
                for seed in range(1, self.seeds + 1)]


#: the pinned suites; changing a suite's composition invalidates its
#: comparison history, so extend by adding new suites, not editing these
SUITES: Dict[str, BenchSuite] = {
    # minimal, for tests and docs examples
    "smoke": BenchSuite("smoke", (
        ("rbtree", "SI-TM", 4),
    ), seeds=2, profile="test"),
    # the CI perf gate: paper systems + the contended/structured extremes
    "quick": BenchSuite("quick", (
        ("rbtree", "SI-TM", 8),
        ("rbtree", "2PL", 8),
        ("array", "SI-TM", 8),
        ("list", "SONTM", 4),
    ), seeds=2, profile="test"),
    # the flat-loop refactor's simulated-behaviour pin (ISSUE 6): high
    # thread counts through the specialized fast path; the host-side
    # dispatch measurement lives in the artifact's advisory section
    # (see repro.perf.micro)
    "flat_loop": BenchSuite("flat_loop", (
        ("array", "SI-TM", 32),
        ("rbtree", "SI-TM", 32),
        ("rbtree", "2PL", 32),
    ), seeds=2, profile="test"),
    # the capacity-bounds pin (CI perf-smoke cell): tight read/write-set
    # limits with escalation-based termination, plus the hybrid backend
    # running on its own built-in bounds and lock fallback
    "capacity": BenchSuite("capacity", (
        ("list", "2PL", 4),
        ("list", "HybridHTM", 4),
        ("rbtree", "HybridHTM", 8),
    ), seeds=2, profile="test", config=SimConfig(
        tm=TMConfig(read_set_limit=8, write_set_limit=8),
        retry=RetryPolicy(attempt_budget=4, stall_budget=16,
                          starvation_age_cycles=50_000))),
    # broader sweep for manual before/after studies
    "full": BenchSuite("full", (
        ("rbtree", "2PL", 8),
        ("rbtree", "SONTM", 8),
        ("rbtree", "SI-TM", 8),
        ("rbtree", "SSI-TM", 8),
        ("rbtree", "LogTM", 8),
        ("array", "2PL", 8),
        ("array", "SI-TM", 8),
        ("list", "2PL", 4),
        ("list", "SI-TM", 4),
        ("genome", "SI-TM", 8),
        ("intruder", "SI-TM", 8),
    ), seeds=3, profile="quick"),
}


def _cell_key(workload: str, system: str, threads: int) -> str:
    return f"{workload}/{system}/t{threads}"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _rel_stddev(values: Sequence[float]) -> float:
    mean = _mean(values)
    if not mean:
        return 0.0
    variance = _mean([(v - mean) ** 2 for v in values])
    return math.sqrt(variance) / mean


def _stddev(values: Sequence[float]) -> float:
    mean = _mean(values)
    variance = _mean([(v - mean) ** 2 for v in values])
    return math.sqrt(variance)


def _merged_phase_shares(snapshots: Sequence[dict]) -> Dict[str, float]:
    """Phase shares over the summed per-phase cycles of several runs."""
    totals: Dict[str, int] = {}
    for snapshot in snapshots:
        for phases in snapshot.get("threads", {}).values():
            for phase, entry in phases.items():
                totals[phase] = totals.get(phase, 0) + entry["cycles"]
    grand = sum(totals.values())
    if not grand:
        return {}
    return {phase: totals[phase] / grand for phase in sorted(totals)}


def run_bench(suite: BenchSuite, label: str,
              executor: Optional[Executor] = None) -> dict:
    """Run ``suite`` through ``executor`` and build a BENCH artifact.

    The deterministic section is a pure function of (code, suite); the
    advisory section records this invocation's wall clock and cache-hit
    rate.  The executor's counters are read as a delta around this run
    so a shared executor reports the bench's own hit rate.
    """
    executor = executor if executor is not None else serial_executor()
    specs = suite.specs()
    hits0 = executor.hits
    misses0 = executor.misses
    started = time.monotonic()
    results = executor.run(specs)
    wall_clock = time.monotonic() - started
    lookups = (executor.hits - hits0) + (executor.misses - misses0)
    hit_rate = (executor.hits - hits0) / lookups if lookups else 0.0

    deterministic: Dict[str, dict] = {}
    for workload, system, threads in suite.cells:
        runs = [results[ExperimentSpec(workload, system, threads, seed,
                                       suite.profile, suite.config,
                                       profiling=True)]
                for seed in range(1, suite.seeds + 1)]
        throughputs = [r.throughput for r in runs]
        abort_rates = [r.abort_rate for r in runs]
        deterministic[_cell_key(workload, system, threads)] = {
            "throughput": _mean(throughputs),
            "throughput_rel_stddev": _rel_stddev(throughputs),
            "abort_rate": _mean(abort_rates),
            "abort_rate_stddev": _stddev(abort_rates),
            "commits": _mean([r.commits for r in runs]),
            "aborts": _mean([r.aborts for r in runs]),
            "makespan_cycles": _mean([r.makespan_cycles for r in runs]),
            "phase_shares": _merged_phase_shares(
                [r.phases for r in runs if r.phases]),
        }
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "suite": suite.name,
        "profile": suite.profile,
        "seeds": suite.seeds,
        "code_fingerprint": code_fingerprint(),
        "deterministic": deterministic,
        "advisory": {
            "wall_clock_s": round(wall_clock, 3),
            "cache_hit_rate": round(hit_rate, 4),
        },
    }


#: required numeric fields in every deterministic cell
_CELL_FIELDS = ("throughput", "throughput_rel_stddev", "abort_rate",
                "abort_rate_stddev", "commits", "aborts",
                "makespan_cycles")


def validate_artifact(artifact: dict) -> List[str]:
    """Validate a BENCH artifact; returns a list of errors (empty = OK).

    Hand-rolled (no jsonschema dependency): checks the schema marker,
    version, top-level layout, and the shape of every deterministic
    cell and the advisory block.
    """
    errors: List[str] = []
    if not isinstance(artifact, dict):
        return ["artifact is not a JSON object"]
    if artifact.get("schema") != SCHEMA:
        errors.append(f"schema is {artifact.get('schema')!r}, "
                      f"expected {SCHEMA!r}")
    version = artifact.get("schema_version")
    if not isinstance(version, int):
        errors.append("schema_version missing or not an integer")
    elif version > SCHEMA_VERSION:
        errors.append(f"schema_version {version} is newer than this "
                      f"code understands ({SCHEMA_VERSION})")
    for key in ("label", "suite", "profile"):
        if not isinstance(artifact.get(key), str):
            errors.append(f"{key} missing or not a string")
    if not isinstance(artifact.get("seeds"), int):
        errors.append("seeds missing or not an integer")
    if not isinstance(artifact.get("code_fingerprint"), str):
        errors.append("code_fingerprint missing or not a string")
    cells = artifact.get("deterministic")
    if not isinstance(cells, dict) or not cells:
        errors.append("deterministic missing, not an object, or empty")
    else:
        for key, cell in cells.items():
            if not isinstance(cell, dict):
                errors.append(f"cell {key!r} is not an object")
                continue
            for field in _CELL_FIELDS:
                if not isinstance(cell.get(field), (int, float)):
                    errors.append(f"cell {key!r}: {field} missing or "
                                  f"not a number")
            shares = cell.get("phase_shares")
            if not isinstance(shares, dict):
                errors.append(f"cell {key!r}: phase_shares missing or "
                              f"not an object")
            elif shares and abs(sum(shares.values()) - 1.0) > 1e-6:
                errors.append(f"cell {key!r}: phase_shares sum to "
                              f"{sum(shares.values()):.6f}, not 1 "
                              f"(conservation violated)")
    advisory = artifact.get("advisory")
    if not isinstance(advisory, dict):
        errors.append("advisory missing or not an object")
    else:
        for field in ("wall_clock_s", "cache_hit_rate"):
            if not isinstance(advisory.get(field), (int, float)):
                errors.append(f"advisory.{field} missing or not a number")
    return errors


def bench_dir(out_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Artifact directory: explicit arg, env override, or the default."""
    env = os.environ.get(BENCH_DIR_ENV)
    return pathlib.Path(out_dir or env or DEFAULT_BENCH_DIR)


def artifact_path(label: str,
                  out_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Path of the artifact named ``label``."""
    return bench_dir(out_dir) / f"BENCH_{label}.json"


def save_artifact(artifact: dict,
                  out_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Write ``artifact`` as ``BENCH_<label>.json``; returns the path."""
    errors = validate_artifact(artifact)
    if errors:
        raise ConfigError("refusing to save invalid bench artifact: "
                          + "; ".join(errors))
    path = artifact_path(artifact["label"], out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")
    return path


def load_artifact(path: os.PathLike) -> dict:
    """Load and validate an artifact; raises ConfigError when invalid."""
    path = pathlib.Path(path)
    try:
        artifact = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read bench artifact {path}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"bench artifact {path} is not JSON: {exc}")
    errors = validate_artifact(artifact)
    if errors:
        raise ConfigError(f"bench artifact {path} is invalid: "
                          + "; ".join(errors))
    return artifact
