"""Transactional skip list.

A sorted map with probabilistic balance — the other classic concurrent
container in STM benchmark suites.  Tower heights are derived
*deterministically from the key* (a hash), not from a random stream:
transaction bodies re-execute on abort, and a height that changed between
attempts would make retries structurally diverge.

Node layout (one line-aligned allocation)::

    word 0: key     word 1: value   word 2: height
    word 3+i: next pointer at level i   (i < height)

A head tower of ``MAX_HEIGHT`` levels fronts the list; level 0 links
every node, so a level-0 walk visits all keys in order.

Write-skew surface: like the linked list, ``remove`` unlinks by
redirecting predecessors at every level; two concurrent removes of
adjacent towers have disjoint write sets under SI.  ``skew_safe=True``
applies the Listing 2 fix at every level (null the removed node's next
pointers), forcing the write-write conflict.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import NULL, TxGen, TxStructure, read, write

MAX_HEIGHT = 8

_KEY = 0
_VALUE = 1
_HEIGHT = 2
_NEXT0 = 3

_HEAD_KEY = -(1 << 62)


def tower_height(key: int, max_height: int = MAX_HEIGHT) -> int:
    """Deterministic pseudo-random tower height for ``key`` (p = 1/2)."""
    mixed = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    mixed ^= mixed >> 31
    height = 1
    while height < max_height and (mixed >> height) & 1:
        height += 1
    return height


class TxSkipList(TxStructure):
    """Sorted transactional skip list with deterministic towers."""

    def __init__(self, machine: Machine, skew_safe: bool = False):
        super().__init__(machine)
        self.skew_safe = skew_safe
        self.head = self._new_node(_HEAD_KEY, 0, MAX_HEIGHT)

    def _new_node(self, key: int, value: int, height: int) -> int:
        node = self._alloc(_NEXT0 + height)
        self._plain_store(node + _KEY, key)
        self._plain_store(node + _VALUE, value)
        self._plain_store(node + _HEIGHT, height)
        for level in range(height):
            self._plain_store(node + _NEXT0 + level, NULL)
        return node

    # ------------------------------------------------------------------
    # traversal

    def _find_predecessors(self, key: int) -> TxGen:
        """Per-level predecessors of ``key`` plus the level-0 candidate."""
        preds = [self.head] * MAX_HEIGHT
        node = self.head
        steps = 0
        for level in reversed(range(MAX_HEIGHT)):
            while True:
                steps += 1
                self._guard(steps, "skiplist.find")
                nxt = yield from read(node + _NEXT0 + level,
                                      site="skiplist.find:next")
                if nxt == NULL:
                    break
                nxt_key = yield from read(nxt + _KEY,
                                          site="skiplist.find:key")
                if nxt_key >= key:
                    break
                node = nxt
            preds[level] = node
        candidate = yield from read(node + _NEXT0,
                                    site="skiplist.find:next")
        return preds, candidate

    # ------------------------------------------------------------------
    # operations

    def lookup(self, key: int) -> TxGen:
        """Return the stored value, or ``None`` when absent (read-only)."""
        _, candidate = yield from self._find_predecessors(key)
        if candidate == NULL:
            return None
        candidate_key = yield from read(candidate + _KEY,
                                        site="skiplist.lookup:key")
        if candidate_key != key:
            return None
        value = yield from read(candidate + _VALUE,
                                site="skiplist.lookup:value")
        return value

    def insert(self, key: int, value: int = 0) -> TxGen:
        """Insert ``key``; returns False when already present."""
        preds, candidate = yield from self._find_predecessors(key)
        if candidate != NULL:
            candidate_key = yield from read(candidate + _KEY,
                                            site="skiplist.insert:key")
            if candidate_key == key:
                return False
        height = tower_height(key)
        node = self._new_node(key, value, height)
        for level in range(height):
            succ = yield from read(preds[level] + _NEXT0 + level,
                                   site="skiplist.insert:succ",
                                   promote=self.skew_safe)
            yield from write(node + _NEXT0 + level, succ,
                             site="skiplist.insert:link")
            yield from write(preds[level] + _NEXT0 + level, node,
                             site="skiplist.insert:link")
        return True

    def remove(self, key: int) -> TxGen:
        """Remove ``key``; returns False when absent."""
        preds, candidate = yield from self._find_predecessors(key)
        if candidate == NULL:
            return False
        candidate_key = yield from read(candidate + _KEY,
                                        site="skiplist.remove:key")
        if candidate_key != key:
            return False
        height = yield from read(candidate + _HEIGHT,
                                 site="skiplist.remove:height")
        for level in range(height):
            pred_next = yield from read(preds[level] + _NEXT0 + level,
                                        site="skiplist.remove:prednext")
            if pred_next != candidate:
                continue  # tower not linked at this level from this pred
            succ = yield from read(candidate + _NEXT0 + level,
                                   site="skiplist.remove:succ")
            yield from write(preds[level] + _NEXT0 + level, succ,
                             site="skiplist.remove:unlink")
            if self.skew_safe:
                yield from write(candidate + _NEXT0 + level, NULL,
                                 site="skiplist.remove:fix")
        return True

    def length(self) -> TxGen:
        """Transactionally count elements (level-0 walk)."""
        count = 0
        node = yield from read(self.head + _NEXT0,
                               site="skiplist.length:next")
        while node != NULL:
            count += 1
            self._guard(count, "skiplist.length")
            node = yield from read(node + _NEXT0,
                                   site="skiplist.length:next")
        return count

    # ------------------------------------------------------------------
    # non-transactional setup/inspection

    def populate(self, items) -> None:
        """Bulk insert ``(key, value)`` pairs (or bare keys) during setup."""
        for item in items:
            key, value = item if isinstance(item, tuple) else (item, 0)
            self._run_plain(self.insert(int(key), int(value)))

    def _run_plain(self, gen):
        from repro.tm.ops import Read as _Read, Write as _Write
        try:
            op = next(gen)
            while True:
                if isinstance(op, _Read):
                    op = gen.send(self._plain(op.addr))
                elif isinstance(op, _Write):
                    self._plain_store(op.addr, op.value)
                    op = gen.send(None)
                else:
                    op = gen.send(None)
        except StopIteration as stop:
            return stop.value

    def keys(self) -> list:
        """Plain in-order key list."""
        out = []
        node = self._plain(self.head + _NEXT0)
        while node != NULL:
            out.append(self._plain(node + _KEY))
            node = self._plain(node + _NEXT0)
        return out

    def check_invariants(self) -> bool:
        """Sortedness at every level; towers consistent with level 0."""
        level0 = self.keys()
        if level0 != sorted(level0):
            return False
        level0_set = set(level0)
        for level in range(1, MAX_HEIGHT):
            node = self._plain(self.head + _NEXT0 + level)
            previous = _HEAD_KEY
            while node != NULL:
                key = self._plain(node + _KEY)
                if key <= previous or key not in level0_set:
                    return False
                previous = key
                node = self._plain(node + _NEXT0 + level)
        return True
