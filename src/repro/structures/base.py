"""Base plumbing for transactional data structures.

Every structure in this package is written once against the TM operation
protocol: methods are generators that ``yield`` :class:`~repro.tm.ops.Read`
and :class:`~repro.tm.ops.Write` descriptors and compose with
``yield from``.  A structure method can therefore run inside any
transaction body, under any of the four TM systems, unchanged — the
reproduction's analogue of RSTM's container library (section 6.2).

Conventions:

* the null pointer is address ``0`` (the heap never hands out address 0);
* nodes are allocated **line-aligned**, one node per cache line, so
  line-granularity conflict detection conflicts per *element* — matching
  the behaviour the paper measures for List and RBTree;
* every read/write carries a ``site`` tag (``"structure.method:field"``)
  so the write-skew tool can attribute anomalies to source locations,
  like the paper's PIN callstack backtraces (section 5.1);
* methods take no TM handle: the engine supplies TM semantics, the
  structure supplies pure access patterns.

Setup (``build``/``populate`` class methods) runs non-transactionally via
:class:`~repro.sim.machine.Machine` plain accesses, mirroring STAMP's
single-threaded initialisation phases.
"""

from __future__ import annotations

from typing import Generator

from repro.common.errors import StructureCorrupted
from repro.sim.machine import Machine
from repro.tm.ops import Op, Read, Write

NULL = 0

TxGen = Generator[Op, object, object]


def read(addr: int, site: str = "", promote: bool = False) -> TxGen:
    """Yield one transactional load and return its value."""
    value = yield Read(addr, promote=promote, site=site)
    return value


def write(addr: int, value: int, site: str = "") -> TxGen:
    """Yield one transactional store."""
    yield Write(addr, value, site=site)
    return None


class TxStructure:
    """Common base: remembers the machine and allocates in the MVM region."""

    #: traversal-step bound; a pointer cycle created by an un-fixed write
    #: skew would otherwise spin a transaction forever
    TRAVERSAL_CAP = 1 << 17

    def __init__(self, machine: Machine):
        self.machine = machine

    def _guard(self, steps: int, where: str) -> None:
        """Fail fast when a traversal ran impossibly long (cycle)."""
        if steps > self.TRAVERSAL_CAP:
            raise StructureCorrupted(
                f"{where}: traversal exceeded {self.TRAVERSAL_CAP} steps; "
                "the structure likely contains a pointer cycle caused by a "
                "write-skew anomaly (see repro.skew)")

    def _alloc(self, words: int) -> int:
        """Allocate shared multiversioned memory for structure state."""
        return self.machine.mvmalloc(words)

    def _plain(self, addr: int) -> int:
        """Non-transactional read (setup/verification only)."""
        return self.machine.plain_load(addr)

    def _plain_store(self, addr: int, value: int) -> None:
        """Non-transactional write (setup only)."""
        self.machine.plain_store(addr, value)
