"""Transactional sorted singly-linked list (the *List* microbenchmark).

The paper's Listing 2: ``remove`` unlinks a node by redirecting the
predecessor's ``next`` pointer.  Under snapshot isolation, two concurrent
removes of *adjacent* elements have disjoint write sets and both commit —
dropping a node from the list (a write-skew anomaly).  The fix the paper
gives (Listing 2, line 10) is to also null the removed node's ``next``
pointer, forcing a write-write conflict in exactly that schedule.

``TxLinkedList(machine, skew_safe=False)`` reproduces the anomalous
library version; ``skew_safe=True`` applies the fix.  The write-skew tool
(:mod:`repro.skew`) finds the anomaly in the former and verifies its
absence in the latter.

Node layout (one line-aligned allocation per node)::

    word 0: value
    word 1: next pointer

A sentinel head node (value = -inf marker) simplifies edge cases, as in
the RSTM implementation.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import NULL, TxGen, TxStructure, read, write

#: sentinel key smaller than any user value
_HEAD_KEY = -(1 << 62)

_VALUE = 0
_NEXT = 1


class TxLinkedList(TxStructure):
    """Sorted singly-linked list with optional write-skew fix."""

    def __init__(self, machine: Machine, skew_safe: bool = False):
        super().__init__(machine)
        self.skew_safe = skew_safe
        self.head = self._new_node(_HEAD_KEY, NULL)

    def _new_node(self, value: int, next_ptr: int) -> int:
        node = self._alloc(2)
        self._plain_store(node + _VALUE, value)
        self._plain_store(node + _NEXT, next_ptr)
        return node

    # ------------------------------------------------------------------
    # transactional operations (generators)

    def lookup(self, value: int) -> TxGen:
        """Return True when ``value`` is in the list."""
        node = yield from read(self.head + _NEXT, site="list.lookup:next")
        steps = 0
        while node != NULL:
            steps += 1
            self._guard(steps, "list.lookup")
            node_value = yield from read(node + _VALUE,
                                         site="list.lookup:value")
            if node_value >= value:
                return node_value == value
            node = yield from read(node + _NEXT, site="list.lookup:next")
        return False

    def insert(self, value: int) -> TxGen:
        """Insert ``value`` keeping the list sorted; False if present."""
        prev = self.head
        nxt = yield from read(prev + _NEXT, site="list.insert:next")
        steps = 0
        while nxt != NULL:
            steps += 1
            self._guard(steps, "list.insert")
            nxt_value = yield from read(nxt + _VALUE, site="list.insert:value")
            if nxt_value >= value:
                if nxt_value == value:
                    return False
                break
            prev = nxt
            nxt = yield from read(prev + _NEXT, site="list.insert:next")
        node = self._new_node(value, NULL)
        # link: node.next = nxt; prev.next = node
        yield from write(node + _NEXT, nxt, site="list.insert:link")
        yield from write(prev + _NEXT, node, site="list.insert:link")
        return True

    def remove(self, value: int) -> TxGen:
        """Remove ``value``; return False when absent.

        This is Listing 2 of the paper.  Without ``skew_safe`` the removed
        node's ``next`` pointer is left intact, admitting the adjacent-
        remove write skew under SI.
        """
        prev = self.head
        nxt = yield from read(prev + _NEXT, site="list.remove:next")
        steps = 0
        while nxt != NULL:
            steps += 1
            self._guard(steps, "list.remove")
            nxt_value = yield from read(nxt + _VALUE, site="list.remove:value")
            if nxt_value >= value:
                break
            prev = nxt
            nxt = yield from read(prev + _NEXT, site="list.remove:next")
        if nxt == NULL:
            return False
        nxt_value = yield from read(nxt + _VALUE, site="list.remove:value")
        if nxt_value != value:
            return False
        successor = yield from read(nxt + _NEXT, site="list.remove:succ")
        yield from write(prev + _NEXT, successor, site="list.remove:unlink")
        if self.skew_safe:
            # Listing 2 line 10: force a write-write conflict between
            # concurrent removes of adjacent elements.
            yield from write(nxt + _NEXT, NULL, site="list.remove:fix")
        return True

    def length(self) -> TxGen:
        """Transactionally count elements (long read transaction)."""
        count = 0
        node = yield from read(self.head + _NEXT, site="list.length:next")
        while node != NULL:
            count += 1
            self._guard(count, "list.length")
            node = yield from read(node + _NEXT, site="list.length:next")
        return count

    # ------------------------------------------------------------------
    # non-transactional setup/inspection

    def populate(self, values) -> None:
        """Build the list outside any transaction (sorted insert)."""
        for value in sorted(values, reverse=True):
            node = self._new_node(value, self._plain(self.head + _NEXT))
            self._plain_store(self.head + _NEXT, node)

    def to_list(self) -> list:
        """Plain contents in order, for tests."""
        items = []
        node = self._plain(self.head + _NEXT)
        while node != NULL:
            items.append(self._plain(node + _VALUE))
            node = self._plain(node + _NEXT)
        return items
