"""Transactional bounded FIFO queue and shared counter.

The queue backs intruder's packet-reassembly pipeline and labyrinth's
work-list; both head and tail words are contention hot spots, which is why
these kernels keep some aborts even under SI (dequeue/enqueue are
read-modify-write on the cursor words — true write-write conflicts).
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.sim.machine import Machine
from repro.structures.base import TxGen, TxStructure, read, write


class QueueFull(ReproError):
    """Enqueue on a full bounded queue."""


class TxQueue(TxStructure):
    """Bounded circular FIFO of words.

    Layout: ``[head, tail, slot0 .. slot(capacity-1)]``; head/tail occupy
    separate lines to avoid false sharing between producers and consumers.
    """

    def __init__(self, machine: Machine, capacity: int = 256):
        super().__init__(machine)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        per_line = machine.address_map.words_per_line
        self.capacity = capacity
        self.head_addr = self._alloc(1)
        self.tail_addr = self._alloc(1)
        self.slots = self._alloc(((capacity + per_line - 1) // per_line)
                                 * per_line)
        self._plain_store(self.head_addr, 0)
        self._plain_store(self.tail_addr, 0)

    def enqueue(self, value: int) -> TxGen:
        """Append ``value``; returns False when the queue is full."""
        head = yield from read(self.head_addr, site="queue.enq:head")
        tail = yield from read(self.tail_addr, site="queue.enq:tail")
        if tail - head >= self.capacity:
            return False
        yield from write(self.slots + tail % self.capacity, value,
                         site="queue.enq:slot")
        yield from write(self.tail_addr, tail + 1, site="queue.enq:tail")
        return True

    def dequeue(self) -> TxGen:
        """Pop the oldest value; returns ``None`` when empty."""
        head = yield from read(self.head_addr, site="queue.deq:head")
        tail = yield from read(self.tail_addr, site="queue.deq:tail")
        if head >= tail:
            return None
        value = yield from read(self.slots + head % self.capacity,
                                site="queue.deq:slot")
        yield from write(self.head_addr, head + 1, site="queue.deq:head")
        return value

    def size(self) -> TxGen:
        """Transactionally read the element count."""
        head = yield from read(self.head_addr, site="queue.size:head")
        tail = yield from read(self.tail_addr, site="queue.size:tail")
        return tail - head

    # ------------------------------------------------------------------

    def populate(self, values) -> None:
        """Non-transactional bulk enqueue (setup)."""
        head = self._plain(self.head_addr)
        tail = self._plain(self.tail_addr)
        for value in values:
            if tail - head >= self.capacity:
                raise QueueFull(f"capacity {self.capacity} exceeded in setup")
            self._plain_store(self.slots + tail % self.capacity, value)
            tail += 1
        self._plain_store(self.tail_addr, tail)

    def drain_plain(self) -> list:
        """Plain contents oldest-first, for tests."""
        head = self._plain(self.head_addr)
        tail = self._plain(self.tail_addr)
        return [self._plain(self.slots + i % self.capacity)
                for i in range(head, tail)]


class TxCounter(TxStructure):
    """A single shared transactional counter word."""

    def __init__(self, machine: Machine, initial: int = 0):
        super().__init__(machine)
        self.addr = self._alloc(1)
        self._plain_store(self.addr, initial)

    def get(self) -> TxGen:
        """Transactionally read the counter."""
        return read(self.addr, site="counter.get")

    def add(self, delta: int = 1) -> TxGen:
        """Read-modify-write increment; returns the new value."""
        value = yield from read(self.addr, site="counter.add:read")
        yield from write(self.addr, value + delta, site="counter.add:write")
        return value + delta

    @property
    def value(self) -> int:
        """Plain (committed) value, for tests."""
        return self._plain(self.addr)
