"""Transactional chained hash map.

Fixed bucket array with per-bucket singly-linked chains.  Used by the
STAMP-like kernels (genome's segment table, intruder's flow table,
vacation's reservation tables).  Transactions touching different buckets
have disjoint read/write sets, so contention scales with load factor —
the behaviour that makes these kernels mostly SI-friendly.

Node layout: ``word 0 = key``, ``word 1 = value``, ``word 2 = next``.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import NULL, TxGen, TxStructure, read, write

_KEY = 0
_VALUE = 1
_NEXT = 2


class TxHashMap(TxStructure):
    """Chained transactional hash map with a fixed bucket count."""

    def __init__(self, machine: Machine, buckets: int = 64):
        super().__init__(machine)
        if buckets <= 0:
            raise ValueError("bucket count must be positive")
        self.buckets = buckets
        self.table = self._alloc(buckets)
        for i in range(buckets):
            self._plain_store(self.table + i, NULL)

    def _bucket(self, key: int) -> int:
        # Multiplicative hashing keeps adjacent keys in distinct buckets.
        return self.table + ((key * 2654435761) & 0x7FFFFFFF) % self.buckets

    def _new_node(self, key: int, value: int, nxt: int) -> int:
        node = self._alloc(3)
        self._plain_store(node + _KEY, key)
        self._plain_store(node + _VALUE, value)
        self._plain_store(node + _NEXT, nxt)
        return node

    # ------------------------------------------------------------------

    def get(self, key: int) -> TxGen:
        """Return the value for ``key``, or ``None`` when absent."""
        node = yield from read(self._bucket(key), site="hash.get:bucket")
        while node != NULL:
            node_key = yield from read(node + _KEY, site="hash.get:key")
            if node_key == key:
                value = yield from read(node + _VALUE, site="hash.get:value")
                return value
            node = yield from read(node + _NEXT, site="hash.get:next")
        return None

    def contains(self, key: int) -> TxGen:
        """True when ``key`` is present."""
        value = yield from self.get(key)
        return value is not None

    def put(self, key: int, value: int) -> TxGen:
        """Insert or update; returns True when a new entry was created."""
        bucket = self._bucket(key)
        head = yield from read(bucket, site="hash.put:bucket")
        node = head
        while node != NULL:
            node_key = yield from read(node + _KEY, site="hash.put:key")
            if node_key == key:
                yield from write(node + _VALUE, value, site="hash.put:update")
                return False
            node = yield from read(node + _NEXT, site="hash.put:next")
        fresh = self._new_node(key, value, NULL)
        yield from write(fresh + _NEXT, head, site="hash.put:link")
        yield from write(bucket, fresh, site="hash.put:link")
        return True

    def increment(self, key: int, delta: int = 1) -> TxGen:
        """Read-modify-write the value for ``key`` (insert 0 if absent)."""
        bucket = self._bucket(key)
        node = yield from read(bucket, site="hash.inc:bucket")
        while node != NULL:
            node_key = yield from read(node + _KEY, site="hash.inc:key")
            if node_key == key:
                value = yield from read(node + _VALUE, site="hash.inc:value")
                yield from write(node + _VALUE, value + delta,
                                 site="hash.inc:update")
                return value + delta
            node = yield from read(node + _NEXT, site="hash.inc:next")
        head = yield from read(bucket, site="hash.inc:bucket")
        fresh = self._new_node(key, delta, NULL)
        yield from write(fresh + _NEXT, head, site="hash.inc:link")
        yield from write(bucket, fresh, site="hash.inc:link")
        return delta

    def remove(self, key: int) -> TxGen:
        """Remove ``key``; returns True when it was present."""
        bucket = self._bucket(key)
        prev = NULL
        node = yield from read(bucket, site="hash.remove:bucket")
        while node != NULL:
            node_key = yield from read(node + _KEY, site="hash.remove:key")
            if node_key == key:
                nxt = yield from read(node + _NEXT, site="hash.remove:next")
                if prev == NULL:
                    yield from write(bucket, nxt, site="hash.remove:unlink")
                else:
                    yield from write(prev + _NEXT, nxt,
                                     site="hash.remove:unlink")
                return True
            prev = node
            node = yield from read(node + _NEXT, site="hash.remove:next")
        return False

    # ------------------------------------------------------------------

    def populate(self, items) -> None:
        """Non-transactional bulk insert of ``(key, value)`` pairs."""
        for key, value in items:
            bucket = self._bucket(key)
            self._plain_store(
                bucket, self._new_node(key, value, self._plain(bucket)))

    def to_dict(self) -> dict:
        """Plain contents, for tests."""
        out = {}
        for i in range(self.buckets):
            node = self._plain(self.table + i)
            while node != NULL:
                out.setdefault(self._plain(node + _KEY),
                               self._plain(node + _VALUE))
                node = self._plain(node + _NEXT)
        return out
