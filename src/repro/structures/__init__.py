"""Transactional data structures built on the TM operation protocol."""

from repro.structures.array import TxArray
from repro.structures.base import NULL, TxStructure, read, write
from repro.structures.dlist import TxDoublyLinkedList
from repro.structures.hashmap import TxHashMap
from repro.structures.linked_list import TxLinkedList
from repro.structures.queue import QueueFull, TxCounter, TxQueue
from repro.structures.rbtree import TxRedBlackTree
from repro.structures.skiplist import TxSkipList

__all__ = [
    "NULL",
    "QueueFull",
    "TxArray",
    "TxCounter",
    "TxDoublyLinkedList",
    "TxHashMap",
    "TxLinkedList",
    "TxQueue",
    "TxRedBlackTree",
    "TxSkipList",
    "TxStructure",
    "read",
    "write",
]
