"""Transactional sorted doubly-linked list.

Section 5.1 reports write-skew anomalies in the STAMP data-structure
library's doubly-linked list.  The doubly-linked variant has a richer
anomaly surface than Listing 2's singly-linked list: concurrent removes of
adjacent nodes A-B-C-D (removing B and C) under SI write
``{A.next, C.prev}`` and ``{B.next, D.prev}`` — disjoint write sets whose
combined effect corrupts both directions of the chain.  ``skew_safe=True``
nulls the removed node's own pointers, forcing the write-write conflict.

Node layout: ``word 0 = value``, ``word 1 = next``, ``word 2 = prev``.
Head and tail sentinels avoid edge cases.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import NULL, TxGen, TxStructure, read, write

_HEAD_KEY = -(1 << 62)
_TAIL_KEY = 1 << 62

_VALUE = 0
_NEXT = 1
_PREV = 2


class TxDoublyLinkedList(TxStructure):
    """Sorted doubly-linked list with sentinels."""

    def __init__(self, machine: Machine, skew_safe: bool = False):
        super().__init__(machine)
        self.skew_safe = skew_safe
        self.head = self._new_node(_HEAD_KEY)
        self.tail = self._new_node(_TAIL_KEY)
        self._plain_store(self.head + _NEXT, self.tail)
        self._plain_store(self.tail + _PREV, self.head)

    def _new_node(self, value: int) -> int:
        node = self._alloc(3)
        self._plain_store(node + _VALUE, value)
        self._plain_store(node + _NEXT, NULL)
        self._plain_store(node + _PREV, NULL)
        return node

    # ------------------------------------------------------------------

    def _find(self, value: int) -> TxGen:
        """Return the first node with ``node.value >= value`` (may be tail)."""
        node = yield from read(self.head + _NEXT, site="dlist.find:next")
        steps = 0
        while True:
            steps += 1
            self._guard(steps, "dlist.find")
            node_value = yield from read(node + _VALUE, site="dlist.find:value")
            if node_value >= value:
                return node
            node = yield from read(node + _NEXT, site="dlist.find:next")

    def lookup(self, value: int) -> TxGen:
        """True when ``value`` is present."""
        node = yield from self._find(value)
        node_value = yield from read(node + _VALUE, site="dlist.lookup:value")
        return node_value == value

    def insert(self, value: int) -> TxGen:
        """Sorted insert; False when already present."""
        succ = yield from self._find(value)
        succ_value = yield from read(succ + _VALUE, site="dlist.insert:value")
        if succ_value == value:
            return False
        pred = yield from read(succ + _PREV, site="dlist.insert:prev")
        node = self._new_node(value)
        yield from write(node + _NEXT, succ, site="dlist.insert:link")
        yield from write(node + _PREV, pred, site="dlist.insert:link")
        yield from write(pred + _NEXT, node, site="dlist.insert:link")
        yield from write(succ + _PREV, node, site="dlist.insert:link")
        return True

    def remove(self, value: int) -> TxGen:
        """Remove ``value``; False when absent.

        Unsafe variant writes only ``{pred.next, succ.prev}``; two
        concurrent adjacent removes have disjoint write sets under SI.
        """
        node = yield from self._find(value)
        node_value = yield from read(node + _VALUE, site="dlist.remove:value")
        if node_value != value:
            return False
        pred = yield from read(node + _PREV, site="dlist.remove:prev")
        succ = yield from read(node + _NEXT, site="dlist.remove:next")
        yield from write(pred + _NEXT, succ, site="dlist.remove:unlink")
        yield from write(succ + _PREV, pred, site="dlist.remove:unlink")
        if self.skew_safe:
            yield from write(node + _NEXT, NULL, site="dlist.remove:fix")
            yield from write(node + _PREV, NULL, site="dlist.remove:fix")
        return True

    def length(self) -> TxGen:
        """Transactionally count elements."""
        count = 0
        node = yield from read(self.head + _NEXT, site="dlist.length:next")
        while node != self.tail:
            count += 1
            self._guard(count, "dlist.length")
            node = yield from read(node + _NEXT, site="dlist.length:next")
        return count

    # ------------------------------------------------------------------

    def populate(self, values) -> None:
        """Non-transactional sorted bulk insert."""
        for value in sorted(values, reverse=True):
            succ = self._plain(self.head + _NEXT)
            node = self._new_node(value)
            self._plain_store(node + _NEXT, succ)
            self._plain_store(node + _PREV, self.head)
            self._plain_store(self.head + _NEXT, node)
            self._plain_store(succ + _PREV, node)

    def to_list(self) -> list:
        """Plain contents in order."""
        items = []
        node = self._plain(self.head + _NEXT)
        while node != self.tail:
            items.append(self._plain(node + _VALUE))
            node = self._plain(node + _NEXT)
        return items

    def check_consistent(self) -> bool:
        """Forward and backward traversals agree (skew detector for tests)."""
        forward = self.to_list()
        backward = []
        node = self._plain(self.tail + _PREV)
        while node != self.head:
            backward.append(self._plain(node + _VALUE))
            node = self._plain(node + _PREV)
        return forward == list(reversed(backward))
