"""Transactional red-black tree (the *RBTree* microbenchmark, §6.2).

A classic CLRS red-black tree over multiversioned memory.  Every field
access is a transactional read or write, so a single ``insert`` or
``remove`` touches a logarithmic path plus rebalancing writes — the
paper's observation that "a single update operation can lead to many
transactional writes due to rebalancing" is directly visible in the write
sets this structure produces.

No nil sentinel node is used: leaves are NULL pointers and fix-up routines
carry the parent explicitly.  A shared nil node would be transactionally
*written* during deletion fix-up (CLRS temporarily sets ``nil.parent``),
creating artificial write-write hot spots that the real RSTM container
avoids the same way.

Node layout (one line-aligned allocation)::

    word 0: key     word 1: value   word 2: left
    word 3: right   word 4: parent  word 5: color (0 black, 1 red)

The tree root pointer lives in its own line-aligned word.

Section 5.1 reports *multiple write skews* in the STAMP/RSTM red-black
tree; the anomaly surface here is structural: concurrent updates read
overlapping search/rebalance paths but write disjoint node sets, so under
plain SI both commit and the red-black invariants (or even the pointer
structure) break.  The ``skew_safe=True`` variant applies the paper's
read-promotion fix at the granularity their tool produces: **every read
performed by an update operation is promoted** (validated at commit like
a write, creating no version), which restores serializability among
updates while read-only lookups keep SI's zero-overhead commit.  This
also reproduces the paper's RBTree observation that "for insert and
delete operations only, the three TM implementations perform similar"
while lookups never abort.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import NULL, TxGen, TxStructure, read, write

KEY = 0
VALUE = 1
LEFT = 2
RIGHT = 3
PARENT = 4
COLOR = 5

BLACK = 0
RED = 1


class TxRedBlackTree(TxStructure):
    """Transactional red-black tree with insert/remove/lookup."""

    def __init__(self, machine: Machine, skew_safe: bool = False):
        super().__init__(machine)
        self.skew_safe = skew_safe
        self.root_ptr = self._alloc(1)
        self._plain_store(self.root_ptr, NULL)

    # ------------------------------------------------------------------
    # field helpers

    def _get(self, node: int, field: int, site: str,
             promote: bool = False) -> TxGen:
        return read(node + field, site=site, promote=promote)

    def _upget(self, node: int, field: int, site: str) -> TxGen:
        """Update-path read: promoted when ``skew_safe`` (section 5.1).

        Promoting every read an update performs makes update transactions
        validate their whole footprint at commit, restoring
        serializability among updates while leaving read-only lookups
        zero-overhead -- the read-promotion fix the paper's tool applies
        to the RBTree's "multiple write skews".
        """
        return read(node + field, site=site, promote=self.skew_safe)

    def _set(self, node: int, field: int, value: int, site: str) -> TxGen:
        return write(node + field, value, site=site)

    def _root(self, update: bool = False) -> TxGen:
        return read(self.root_ptr, site="rbtree:root",
                    promote=self.skew_safe and update)

    def _set_root(self, node: int) -> TxGen:
        return write(self.root_ptr, node, site="rbtree:root")

    def _new_node(self, key: int, value: int) -> int:
        node = self._alloc(6)
        self._plain_store(node + KEY, key)
        self._plain_store(node + VALUE, value)
        self._plain_store(node + LEFT, NULL)
        self._plain_store(node + RIGHT, NULL)
        self._plain_store(node + PARENT, NULL)
        self._plain_store(node + COLOR, RED)
        return node

    def _is_red(self, node: int) -> TxGen:
        if node == NULL:
            return False
        color = yield from self._upget(node, COLOR, "rbtree:color")
        return color == RED

    # ------------------------------------------------------------------
    # rotations

    def _rotate_left(self, x: int) -> TxGen:
        y = yield from self._upget(x, RIGHT, "rbtree.rot:right")
        y_left = yield from self._upget(y, LEFT, "rbtree.rot:left")
        yield from self._set(x, RIGHT, y_left, "rbtree.rot:link")
        if y_left != NULL:
            yield from self._set(y_left, PARENT, x, "rbtree.rot:parent")
        x_parent = yield from self._upget(x, PARENT, "rbtree.rot:parent")
        yield from self._set(y, PARENT, x_parent, "rbtree.rot:parent")
        if x_parent == NULL:
            yield from self._set_root(y)
        else:
            parent_left = yield from self._upget(x_parent, LEFT, "rbtree.rot:pl")
            if parent_left == x:
                yield from self._set(x_parent, LEFT, y, "rbtree.rot:link")
            else:
                yield from self._set(x_parent, RIGHT, y, "rbtree.rot:link")
        yield from self._set(y, LEFT, x, "rbtree.rot:link")
        yield from self._set(x, PARENT, y, "rbtree.rot:parent")

    def _rotate_right(self, x: int) -> TxGen:
        y = yield from self._upget(x, LEFT, "rbtree.rot:left")
        y_right = yield from self._upget(y, RIGHT, "rbtree.rot:right")
        yield from self._set(x, LEFT, y_right, "rbtree.rot:link")
        if y_right != NULL:
            yield from self._set(y_right, PARENT, x, "rbtree.rot:parent")
        x_parent = yield from self._upget(x, PARENT, "rbtree.rot:parent")
        yield from self._set(y, PARENT, x_parent, "rbtree.rot:parent")
        if x_parent == NULL:
            yield from self._set_root(y)
        else:
            parent_right = yield from self._upget(x_parent, RIGHT, "rbtree.rot:pr")
            if parent_right == x:
                yield from self._set(x_parent, RIGHT, y, "rbtree.rot:link")
            else:
                yield from self._set(x_parent, LEFT, y, "rbtree.rot:link")
        yield from self._set(y, RIGHT, x, "rbtree.rot:link")
        yield from self._set(x, PARENT, y, "rbtree.rot:parent")

    # ------------------------------------------------------------------
    # lookup

    def lookup(self, key: int) -> TxGen:
        """Return the stored value, or ``None`` when absent (read-only)."""
        node = yield from self._root()
        steps = 0
        while node != NULL:
            steps += 1
            self._guard(steps, "rbtree.lookup")
            node_key = yield from self._get(node, KEY, "rbtree.lookup:key")
            if key == node_key:
                value = yield from self._get(node, VALUE, "rbtree.lookup:val")
                return value
            field = LEFT if key < node_key else RIGHT
            node = yield from self._get(node, field, "rbtree.lookup:child")
        return None

    # ------------------------------------------------------------------
    # insert

    def insert(self, key: int, value: int = 0) -> TxGen:
        """Insert ``key``; returns False when the key already exists."""
        parent = NULL
        node = yield from self._root(update=True)
        steps = 0
        while node != NULL:
            steps += 1
            self._guard(steps, "rbtree.insert")
            parent = node
            node_key = yield from self._upget(node, KEY, "rbtree.insert:key")
            if key == node_key:
                return False
            field = LEFT if key < node_key else RIGHT
            node = yield from self._upget(node, field, "rbtree.insert:child")
        fresh = self._new_node(key, value)
        yield from self._set(fresh, PARENT, parent, "rbtree.insert:parent")
        if parent == NULL:
            yield from self._set_root(fresh)
        else:
            parent_key = yield from self._upget(parent, KEY, "rbtree.insert:key")
            field = LEFT if key < parent_key else RIGHT
            yield from self._set(parent, field, fresh, "rbtree.insert:link")
        yield from self._insert_fixup(fresh)
        return True

    def _insert_fixup(self, z: int) -> TxGen:
        steps = 0
        while True:
            steps += 1
            self._guard(steps, "rbtree.insert_fixup")
            parent = yield from self._upget(z, PARENT, "rbtree.fix:parent")
            parent_red = yield from self._is_red(parent)
            if not parent_red:
                break
            grand = yield from self._upget(parent, PARENT, "rbtree.fix:grand")
            grand_left = yield from self._upget(grand, LEFT, "rbtree.fix:gl")
            if parent == grand_left:
                uncle = yield from self._upget(grand, RIGHT, "rbtree.fix:uncle")
                uncle_red = yield from self._is_red(uncle)
                if uncle_red:
                    yield from self._set(parent, COLOR, BLACK, "rbtree.fix:c")
                    yield from self._set(uncle, COLOR, BLACK, "rbtree.fix:c")
                    yield from self._set(grand, COLOR, RED, "rbtree.fix:c")
                    z = grand
                    continue
                parent_right = yield from self._upget(parent, RIGHT,
                                                    "rbtree.fix:pr")
                if z == parent_right:
                    z = parent
                    yield from self._rotate_left(z)
                    parent = yield from self._upget(z, PARENT, "rbtree.fix:parent")
                    grand = yield from self._upget(parent, PARENT,
                                                 "rbtree.fix:grand")
                yield from self._set(parent, COLOR, BLACK, "rbtree.fix:c")
                yield from self._set(grand, COLOR, RED, "rbtree.fix:c")
                yield from self._rotate_right(grand)
            else:
                uncle = yield from self._upget(grand, LEFT, "rbtree.fix:uncle")
                uncle_red = yield from self._is_red(uncle)
                if uncle_red:
                    yield from self._set(parent, COLOR, BLACK, "rbtree.fix:c")
                    yield from self._set(uncle, COLOR, BLACK, "rbtree.fix:c")
                    yield from self._set(grand, COLOR, RED, "rbtree.fix:c")
                    z = grand
                    continue
                parent_left = yield from self._upget(parent, LEFT,
                                                   "rbtree.fix:pl")
                if z == parent_left:
                    z = parent
                    yield from self._rotate_right(z)
                    parent = yield from self._upget(z, PARENT, "rbtree.fix:parent")
                    grand = yield from self._upget(parent, PARENT,
                                                 "rbtree.fix:grand")
                yield from self._set(parent, COLOR, BLACK, "rbtree.fix:c")
                yield from self._set(grand, COLOR, RED, "rbtree.fix:c")
                yield from self._rotate_left(grand)
        root = yield from self._root(update=True)
        root_red = yield from self._is_red(root)
        if root_red:
            yield from self._set(root, COLOR, BLACK, "rbtree.fix:c")

    # ------------------------------------------------------------------
    # remove

    def remove(self, key: int) -> TxGen:
        """Remove ``key``; returns False when absent."""
        z = yield from self._root(update=True)
        steps = 0
        while z != NULL:
            steps += 1
            self._guard(steps, "rbtree.remove")
            z_key = yield from self._upget(z, KEY, "rbtree.remove:key")
            if key == z_key:
                break
            field = LEFT if key < z_key else RIGHT
            z = yield from self._upget(z, field, "rbtree.remove:child")
        if z == NULL:
            return False
        z_left = yield from self._upget(z, LEFT, "rbtree.remove:left")
        z_right = yield from self._upget(z, RIGHT, "rbtree.remove:right")
        if z_left != NULL and z_right != NULL:
            # two children: splice the successor instead
            succ = z_right
            steps = 0
            while True:
                steps += 1
                self._guard(steps, "rbtree.remove:succ")
                succ_left = yield from self._upget(succ, LEFT,
                                                 "rbtree.remove:succ")
                if succ_left == NULL:
                    break
                succ = succ_left
            succ_key = yield from self._upget(succ, KEY, "rbtree.remove:key")
            succ_value = yield from self._upget(succ, VALUE, "rbtree.remove:val")
            yield from self._set(z, KEY, succ_key, "rbtree.remove:copy")
            yield from self._set(z, VALUE, succ_value, "rbtree.remove:copy")
            z = succ
            z_left = yield from self._upget(z, LEFT, "rbtree.remove:left")
            z_right = yield from self._upget(z, RIGHT, "rbtree.remove:right")
        # z now has at most one child
        child = z_left if z_left != NULL else z_right
        parent = yield from self._upget(z, PARENT, "rbtree.remove:parent")
        if child != NULL:
            yield from self._set(child, PARENT, parent, "rbtree.remove:link")
        if parent == NULL:
            yield from self._set_root(child)
        else:
            parent_left = yield from self._upget(parent, LEFT, "rbtree.remove:pl")
            if parent_left == z:
                yield from self._set(parent, LEFT, child, "rbtree.remove:link")
            else:
                yield from self._set(parent, RIGHT, child, "rbtree.remove:link")
        z_red = yield from self._is_red(z)
        if not z_red:
            yield from self._remove_fixup(child, parent)
        return True

    def _remove_fixup(self, x: int, parent: int) -> TxGen:
        """Restore black-height after removing a black node.

        ``x`` (possibly NULL, counted black) carries an extra black;
        ``parent`` is tracked explicitly because ``x`` may be NULL.
        """
        steps = 0
        while parent != NULL:
            steps += 1
            self._guard(steps, "rbtree.remove_fixup")
            x_red = yield from self._is_red(x)
            if x_red:
                break
            parent_left = yield from self._upget(parent, LEFT, "rbtree.dfx:pl")
            if x == parent_left:
                w = yield from self._upget(parent, RIGHT, "rbtree.dfx:sib")
                w_red = yield from self._is_red(w)
                if w_red:
                    yield from self._set(w, COLOR, BLACK, "rbtree.dfx:c")
                    yield from self._set(parent, COLOR, RED, "rbtree.dfx:c")
                    yield from self._rotate_left(parent)
                    w = yield from self._upget(parent, RIGHT, "rbtree.dfx:sib")
                w_left = yield from self._upget(w, LEFT, "rbtree.dfx:wl")
                w_right = yield from self._upget(w, RIGHT, "rbtree.dfx:wr")
                wl_red = yield from self._is_red(w_left)
                wr_red = yield from self._is_red(w_right)
                if not wl_red and not wr_red:
                    yield from self._set(w, COLOR, RED, "rbtree.dfx:c")
                    x = parent
                    parent = yield from self._upget(x, PARENT, "rbtree.dfx:up")
                    continue
                if not wr_red:
                    yield from self._set(w_left, COLOR, BLACK, "rbtree.dfx:c")
                    yield from self._set(w, COLOR, RED, "rbtree.dfx:c")
                    yield from self._rotate_right(w)
                    w = yield from self._upget(parent, RIGHT, "rbtree.dfx:sib")
                parent_color = yield from self._upget(parent, COLOR,
                                                    "rbtree.dfx:c")
                yield from self._set(w, COLOR, parent_color, "rbtree.dfx:c")
                yield from self._set(parent, COLOR, BLACK, "rbtree.dfx:c")
                w_right = yield from self._upget(w, RIGHT, "rbtree.dfx:wr")
                if w_right != NULL:
                    yield from self._set(w_right, COLOR, BLACK, "rbtree.dfx:c")
                yield from self._rotate_left(parent)
                x = yield from self._root(update=True)
                break
            else:
                w = yield from self._upget(parent, LEFT, "rbtree.dfx:sib")
                w_red = yield from self._is_red(w)
                if w_red:
                    yield from self._set(w, COLOR, BLACK, "rbtree.dfx:c")
                    yield from self._set(parent, COLOR, RED, "rbtree.dfx:c")
                    yield from self._rotate_right(parent)
                    w = yield from self._upget(parent, LEFT, "rbtree.dfx:sib")
                w_left = yield from self._upget(w, LEFT, "rbtree.dfx:wl")
                w_right = yield from self._upget(w, RIGHT, "rbtree.dfx:wr")
                wl_red = yield from self._is_red(w_left)
                wr_red = yield from self._is_red(w_right)
                if not wl_red and not wr_red:
                    yield from self._set(w, COLOR, RED, "rbtree.dfx:c")
                    x = parent
                    parent = yield from self._upget(x, PARENT, "rbtree.dfx:up")
                    continue
                if not wl_red:
                    yield from self._set(w_right, COLOR, BLACK, "rbtree.dfx:c")
                    yield from self._set(w, COLOR, RED, "rbtree.dfx:c")
                    yield from self._rotate_left(w)
                    w = yield from self._upget(parent, LEFT, "rbtree.dfx:sib")
                parent_color = yield from self._upget(parent, COLOR,
                                                    "rbtree.dfx:c")
                yield from self._set(w, COLOR, parent_color, "rbtree.dfx:c")
                yield from self._set(parent, COLOR, BLACK, "rbtree.dfx:c")
                w_left = yield from self._upget(w, LEFT, "rbtree.dfx:wl")
                if w_left != NULL:
                    yield from self._set(w_left, COLOR, BLACK, "rbtree.dfx:c")
                yield from self._rotate_right(parent)
                x = yield from self._root(update=True)
                break
        if x != NULL:
            yield from self._set(x, COLOR, BLACK, "rbtree.dfx:c")

    # ------------------------------------------------------------------
    # non-transactional setup/inspection

    def populate(self, keys) -> None:
        """Build the tree outside any transaction via throwaway commits.

        Setup uses the plain-memory path by driving the generator bodies
        with a trivial interpreter that applies reads/writes immediately.
        """
        for key in keys:
            self._run_plain(self.insert(int(key)))

    def _run_plain(self, gen) -> object:
        """Drive a structure generator against plain memory (setup only)."""
        from repro.tm.ops import Read as _Read, Write as _Write
        result = None
        try:
            op = next(gen)
            while True:
                if isinstance(op, _Read):
                    op = gen.send(self._plain(op.addr))
                elif isinstance(op, _Write):
                    self._plain_store(op.addr, op.value)
                    op = gen.send(None)
                else:
                    op = gen.send(None)
        except StopIteration as stop:
            result = stop.value
        return result

    def keys_inorder(self) -> list:
        """Plain in-order key traversal, for tests."""
        items = []

        def walk(node: int) -> None:
            if node == NULL:
                return
            walk(self._plain(node + LEFT))
            items.append(self._plain(node + KEY))
            walk(self._plain(node + RIGHT))

        walk(self._plain(self.root_ptr))
        return items

    def check_invariants(self) -> bool:
        """Red-black invariants hold on the committed state (tests)."""
        root = self._plain(self.root_ptr)
        if root == NULL:
            return True
        if self._plain(root + COLOR) == RED:
            return False
        ok = True

        def walk(node: int) -> int:
            nonlocal ok
            if node == NULL:
                return 1
            color = self._plain(node + COLOR)
            left = self._plain(node + LEFT)
            right = self._plain(node + RIGHT)
            if color == RED:
                for child in (left, right):
                    if child != NULL and self._plain(child + COLOR) == RED:
                        ok = False
            left_black = walk(left)
            right_black = walk(right)
            if left_black != right_black:
                ok = False
            return left_black + (1 if color == BLACK else 0)

        walk(root)
        return ok
