"""Transactional fixed-size array (the RSTM *Array* microbenchmark, §6.2).

A flat array of words in multiversioned memory.  Disjoint cells never
conflict; a long transaction iterating the whole array conflicts under 2PL
with *every* concurrent update — the pathology the Array microbenchmark
isolates and SI-TM eliminates (3000x abort reduction, Figure 7).
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.structures.base import TxGen, TxStructure, read, write


class TxArray(TxStructure):
    """Fixed-size transactional array of words."""

    def __init__(self, machine: Machine, size: int):
        super().__init__(machine)
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.base = self._alloc(size)

    def _addr(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0,{self.size})")
        return self.base + index

    # ------------------------------------------------------------------
    # transactional operations

    def get(self, index: int) -> TxGen:
        """Transactionally load one cell."""
        return read(self._addr(index), site="array.get")

    def set(self, index: int, value: int) -> TxGen:
        """Transactionally store one cell."""
        return write(self._addr(index), value, site="array.set")

    def add(self, index: int, delta: int) -> TxGen:
        """Read-modify-write one cell."""
        value = yield from read(self._addr(index), site="array.add:read")
        yield from write(self._addr(index), value + delta,
                         site="array.add:write")
        return value + delta

    def sum_all(self) -> TxGen:
        """Long-running read transaction: iterate every cell."""
        total = 0
        for index in range(self.size):
            total += yield from read(self._addr(index), site="array.sum")
        return total

    def sum_range(self, start: int, stop: int) -> TxGen:
        """Sum a sub-range of cells."""
        total = 0
        for index in range(start, stop):
            total += yield from read(self._addr(index), site="array.sum_range")
        return total

    # ------------------------------------------------------------------
    # non-transactional setup/inspection

    def populate(self, values) -> None:
        """Initialise cells outside any transaction."""
        for index, value in enumerate(values):
            self._plain_store(self._addr(index), value)

    def snapshot(self) -> list:
        """Plain (newest-version) contents, for tests."""
        return [self._plain(self._addr(i)) for i in range(self.size)]
