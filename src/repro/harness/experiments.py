"""Per-figure experiment drivers (section 6 + appendix).

Each ``figure*``/``table*`` function regenerates the corresponding result
of the paper as structured data; the CLI (:mod:`repro.harness.cli`)
renders them as text.  DESIGN.md carries the experiment index mapping
each function to the paper's figure/table and to the modules involved.

The grid drivers (Figures 1, 7, 8 and Table 2) *declare* their whole
:class:`~repro.harness.spec.ExperimentSpec` grid up front and hand it to
an :class:`~repro.harness.executor.Executor`, then assemble rows from
the returned result map — so one ``--jobs N`` knob parallelises every
figure and the content-addressed cache memoizes across invocations.
With no executor argument they run serially with caching off, which is
byte-identical to the historical inline-loop behaviour.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import (MVMConfig, SimConfig, TMConfig,
                                 VersionCapPolicy)
from repro.common.errors import AbortCause, ConfigError, TransactionAborted
from repro.common.rng import SplitRandom
from repro.mvm.overhead import report as overhead_report
from repro.sim.machine import Machine
from repro.tm import SYSTEMS, SONTM, SerializableSITM, SnapshotIsolationTM
from repro.harness.executor import Executor, serial_executor
from repro.harness.runner import Aggregate
from repro.harness.spec import ExperimentSpec, seed_specs
from repro.workloads import PAPER_ORDER

#: benchmarks shown in Figure 1 (2PL abort breakdown)
FIGURE1_BENCHMARKS = ["genome", "bayes", "intruder", "kmeans", "labyrinth",
                      "ssca2", "vacation", "list", "rbtree"]
#: systems compared throughout section 6
FIGURE_SYSTEMS = ["2PL", "SONTM", "SI-TM"]

#: one aggregate cell of a figure grid
Cell = Tuple[str, str, int]


def _run_cells(cells: Sequence[Cell], profile: str, seeds: int,
               executor: Optional[Executor],
               config: Optional[SimConfig] = None,
               seed0: int = 1) -> Dict[Cell, Aggregate]:
    """Fan a grid of aggregate cells out through one executor batch.

    Declares every (cell x seed) spec up front — one ``run`` call gives
    the executor the whole grid to parallelise — then regroups results
    into seed-averaged :class:`Aggregate` records per cell.
    """
    executor = executor if executor is not None else serial_executor()
    specs = [spec for workload, system, threads in cells
             for spec in seed_specs(workload, system, threads, profile,
                                    seeds, seed0, config)]
    results = executor.run(specs)
    aggregates: Dict[Cell, Aggregate] = {}
    for workload, system, threads in cells:
        outcomes = [results[spec]
                    for spec in seed_specs(workload, system, threads,
                                           profile, seeds, seed0, config)]
        # quarantined seeds (RunFailure records) are excluded from the
        # aggregate's runs and counted so figure renderers can mark the
        # cell partial/FAILED instead of averaging over garbage
        runs = [r for r in outcomes if not getattr(r, "failed", False)]
        aggregates[(workload, system, threads)] = Aggregate(
            workload, system, threads, runs,
            failures=len(outcomes) - len(runs))
    return aggregates


# ----------------------------------------------------------------------
# Figure 1 — read-write vs write-write aborts under 2PL


@dataclass
class Figure1Row:
    """One bar of Figure 1 (plus the killer→victim provenance split).

    The provenance columns are ``None`` when the rows were built
    without span telemetry (the pre-provenance shape) and carry the
    decisive/cascading/self-inflicted abort percentages and wasted
    cycles per run otherwise.
    """

    workload: str
    read_write_pct: float
    write_write_pct: float
    total_aborts: float
    decisive_pct: Optional[float] = None
    cascading_pct: Optional[float] = None
    self_inflicted_pct: Optional[float] = None
    wasted_cycles: Optional[float] = None


def figure1(profile: str = "quick", threads: int = 16,
            seeds: int = 3,
            executor: Optional[Executor] = None) -> List[Figure1Row]:
    """Reproduce Figure 1: abort-cause split under the 2PL baseline.

    The paper's claim: 75%-99% of all aborts in STAMP-class applications
    are read-write conflicts.  The runs carry span telemetry (which
    never perturbs the simulation), so each row also reports *who* the
    aborts are attributable to: the decisive/cascading/self-inflicted
    provenance split and the mean wasted cycles per run.
    """
    from repro.obs import Span, build_provenance, merge_provenance
    executor = executor if executor is not None else serial_executor()
    specs = {name: seed_specs(name, "2PL", threads, profile, seeds,
                              telemetry=True)
             for name in FIGURE1_BENCHMARKS}
    results = executor.run([spec for cell in specs.values()
                            for spec in cell])
    rows = []
    for name in FIGURE1_BENCHMARKS:
        outcomes = [results[spec] for spec in specs[name]]
        runs = [r for r in outcomes if not getattr(r, "failed", False)]
        rw = sum(r.read_write_aborts for r in runs)
        ww = sum(r.write_write_aborts for r in runs)
        total = rw + ww
        # classification happens per run (span uids restart each run);
        # the merged report then carries the provenance split
        report = merge_provenance([
            build_provenance([Span.from_dict(row) for row in r.spans])
            for r in runs if r.spans is not None])
        aborts = report.aborts
        rows.append(Figure1Row(
            workload=name,
            read_write_pct=100.0 * rw / total if total else 0.0,
            write_write_pct=100.0 * ww / total if total else 0.0,
            total_aborts=total / seeds,
            decisive_pct=(100.0 * report.by_class["decisive"] / aborts
                          if aborts else 0.0),
            cascading_pct=(100.0 * report.by_class["cascading"] / aborts
                           if aborts else 0.0),
            self_inflicted_pct=(
                100.0 * report.by_class["self_inflicted"] / aborts
                if aborts else 0.0),
            wasted_cycles=report.wasted_cycles / seeds))
    return rows


# ----------------------------------------------------------------------
# Figure 2 — example schedule under the three consistency models


@dataclass
class ScheduleOutcome:
    """Which transactions of a hand-built schedule committed."""

    system: str
    committed: List[str]
    aborted: List[str]
    abort_causes: Dict[str, str] = field(default_factory=dict)


def _figure2_addresses(machine: Machine) -> Dict[str, int]:
    return {name: machine.mvmalloc(1) for name in "ABC"}


def figure2() -> List[ScheduleOutcome]:
    """Reproduce Figure 2's example schedule.

    Four transactions race: TX0 reads A then writes A and B; TX1 reads A;
    TX2 reads B, writes C, then reads A after TX0's commit; TX3 reads A
    and writes A.  The paper's outcomes:

    * **2PL** (the figure narrates lazy commit-time invalidation):
      TX0's commit aborts all three others — every conflict is fatal;
    * **CS**: TX0 and TX1 commit; TX2 and TX3 abort (temporal cycles);
    * **SI**: only TX3 aborts (the write-write conflict on A).

    The CS and SI outcomes are produced by driving SONTM and SI-TM
    directly; the 2PL row reflects the figure's lazy-2PL narration (our
    eager requester-wins baseline of section 6.1 aborts on the same three
    conflicts, merely choosing different victims).
    """
    outcomes = [ScheduleOutcome(
        system="2PL",
        committed=["TX0"],
        aborted=["TX1", "TX2", "TX3"],
        abort_causes={"TX1": AbortCause.READ_WRITE.value,
                      "TX2": AbortCause.READ_WRITE.value,
                      "TX3": AbortCause.READ_WRITE.value})]
    for system in ("SONTM", "SI-TM"):
        machine = Machine()
        addr = _figure2_addresses(machine)
        tm = SYSTEMS[system](machine, SplitRandom(0))
        committed, aborted, causes = [], [], {}
        txns = {}
        for name in ("TX0", "TX1", "TX2", "TX3"):
            txn, _ = tm.begin(len(txns), name, 0)
            txns[name] = txn

        def attempt(name, action):
            try:
                action()
                return True
            except TransactionAborted as abort:
                aborted.append(name)
                causes[name] = abort.cause.value
                return False

        tm.read(txns["TX0"], addr["A"])
        tm.read(txns["TX3"], addr["A"])
        tm.write(txns["TX0"], addr["A"], 10)
        tm.read(txns["TX2"], addr["B"])
        tm.write(txns["TX0"], addr["B"], 20)
        tm.read(txns["TX1"], addr["A"])
        tm.write(txns["TX2"], addr["C"], 30)
        tm.write(txns["TX3"], addr["A"], 40)
        if attempt("TX0", lambda: tm.commit(txns["TX0"], 0)):
            committed.append("TX0")
        if attempt("TX1", lambda: tm.commit(txns["TX1"], 0)):
            committed.append("TX1")
        if attempt("TX3", lambda: tm.commit(txns["TX3"], 0)):
            committed.append("TX3")
        ok = attempt("TX2", lambda: tm.read(txns["TX2"], addr["A"]))
        if ok and attempt("TX2", lambda: tm.commit(txns["TX2"], 0)):
            committed.append("TX2")
        outcomes.append(ScheduleOutcome(system, committed, aborted, causes))
    return outcomes


def figure6() -> List[ScheduleOutcome]:
    """Reproduce Figure 6: temporal vs type-based cyclic dependencies.

    A long read-only transaction scans A..E while a short writer updates
    A and E and commits mid-scan.  Conflict serializability sees a
    temporal cycle (read-before-write on A, read-after-commit on E) and
    aborts the reader; SSI records two dependencies of the *same*
    direction (reader -> writer) — no dangerous structure — and commits
    both, as does plain SI.
    """
    outcomes = []
    for system in ("SONTM", "SI-TM", "SSI-TM"):
        machine = Machine()
        addrs = [machine.mvmalloc(1) for _ in range(5)]  # A..E
        tm = SYSTEMS[system](machine, SplitRandom(0))
        committed, aborted, causes = [], [], {}
        reader, _ = tm.begin(0, "TX0", 0)
        writer, _ = tm.begin(1, "TX1", 0)
        tm.read(reader, addrs[0])                 # A, old value
        tm.write(writer, addrs[0], 1)
        tm.write(writer, addrs[4], 1)
        try:
            tm.commit(writer, 0)
            committed.append("TX1")
        except TransactionAborted as abort:
            aborted.append("TX1")
            causes["TX1"] = abort.cause.value
        for addr in addrs[1:]:                    # B..E, E after commit
            tm.read(reader, addr)
        try:
            tm.commit(reader, 0)
            committed.append("TX0")
        except TransactionAborted as abort:
            aborted.append("TX0")
            causes["TX0"] = abort.cause.value
        outcomes.append(ScheduleOutcome(system, committed, aborted, causes))
    return outcomes


# ----------------------------------------------------------------------
# Figure 7 — abort rates relative to 2PL


@dataclass
class Figure7Cell:
    """One benchmark x thread-count group of Figure 7."""

    workload: str
    threads: int
    aborts: Dict[str, float]            # system -> mean absolute aborts
    relative: Dict[str, Optional[float]]  # system -> aborts / 2PL aborts
    #: system -> relative stddev of per-seed throughput (paper: <5%)
    rel_stddev: Dict[str, float] = field(default_factory=dict)
    #: system -> mean cycles burned in post-abort backoff
    backoff: Dict[str, float] = field(default_factory=dict)
    #: system -> mean cycles queued on the commit token
    commit_wait: Dict[str, float] = field(default_factory=dict)
    #: system -> True when every seed of that cell was quarantined by
    #: the executor (rendered as an explicit FAILED cell)
    failed: Dict[str, bool] = field(default_factory=dict)


def figure7(profile: str = "quick",
            thread_counts: Sequence[int] = (8, 16, 32),
            seeds: int = 3,
            workloads: Optional[Sequence[str]] = None,
            systems: Optional[Sequence[str]] = None,
            executor: Optional[Executor] = None) -> List[Figure7Cell]:
    """Reproduce Figure 7: aborts of each system relative to 2PL.

    ``systems`` defaults to the paper's three; add ``"SSI-TM"`` to measure
    the serializable-SI extension alongside them.
    """
    workloads = list(workloads or PAPER_ORDER)
    systems = list(systems or FIGURE_SYSTEMS)
    grid = [(name, system, threads)
            for name in workloads
            for threads in thread_counts
            for system in systems]
    aggregates = _run_cells(grid, profile, seeds, executor)
    cells = []
    for name in workloads:
        for threads in thread_counts:
            aborts: Dict[str, float] = {}
            stddev: Dict[str, float] = {}
            backoff: Dict[str, float] = {}
            commit_wait: Dict[str, float] = {}
            failed: Dict[str, bool] = {}
            for system in systems:
                agg = aggregates[(name, system, threads)]
                aborts[system] = agg.aborts
                stddev[system] = agg.throughput_rel_stddev
                backoff[system] = agg.backoff_cycles
                commit_wait[system] = agg.commit_wait_cycles
                failed[system] = agg.failed
            base = aborts["2PL"]
            relative = {system: (value / base if base else None)
                        for system, value in aborts.items()}
            cells.append(Figure7Cell(name, threads, aborts, relative,
                                     stddev, backoff, commit_wait, failed))
    return cells


# ----------------------------------------------------------------------
# Figure 8 — application speedup


@dataclass
class Figure8Series:
    """One speedup line of Figure 8."""

    workload: str
    system: str
    threads: List[int]
    speedup: List[float]
    #: per-point relative stddev of throughput across seeds (paper: <5%)
    rel_stddev: List[float] = field(default_factory=list)
    #: per-point mean cycles burned in post-abort backoff
    backoff: List[float] = field(default_factory=list)
    #: per-point mean cycles queued on the commit token
    commit_wait: List[float] = field(default_factory=list)


def figure8(profile: str = "quick",
            thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
            seeds: int = 3,
            workloads: Optional[Sequence[str]] = None,
            systems: Optional[Sequence[str]] = None,
            executor: Optional[Executor] = None) -> List[Figure8Series]:
    """Reproduce Figure 8: throughput speedup over one thread.

    Speedup is committed-transaction throughput (commits per cycle)
    normalised to the same system's single-thread run, which is valid for
    both fixed-total and per-thread-scaled workloads.
    """
    workloads = list(workloads or PAPER_ORDER)
    systems = list(systems or FIGURE_SYSTEMS)
    grid = [(name, system, threads)
            for name in workloads
            for system in systems
            for threads in thread_counts]
    aggregates = _run_cells(grid, profile, seeds, executor)
    series = []
    for name in workloads:
        for system in systems:
            speedups: List[float] = []
            stddevs: List[float] = []
            backoff: List[float] = []
            commit_wait: List[float] = []
            base: Optional[float] = None
            for threads in thread_counts:
                agg = aggregates[(name, system, threads)]
                if base is None:
                    base = agg.throughput or 1e-12
                speedups.append(agg.throughput / base)
                stddevs.append(agg.throughput_rel_stddev)
                backoff.append(agg.backoff_cycles)
                commit_wait.append(agg.commit_wait_cycles)
            series.append(Figure8Series(name, system,
                                        list(thread_counts), speedups,
                                        stddevs, backoff, commit_wait))
    return series


# ----------------------------------------------------------------------
# Telemetry traces — one run per workload, spans + metrics captured


def trace_specs(experiment: str, system: str = "SI-TM", threads: int = 8,
                seed: int = 1, profile: str = "quick",
                workloads: Optional[Sequence[str]] = None,
                profiling: bool = False) -> List[ExperimentSpec]:
    """Specs for ``sitm-harness trace``: telemetry runs for one figure.

    ``experiment`` is a figure name (``figure1``, ``figure7``,
    ``figure8`` — its workload set under one backend) or a single
    workload name.  Each spec runs with ``telemetry=True`` and becomes
    one process track in the exported Chrome trace; ``profiling=True``
    (``sitm-harness profile``) additionally carries the cycle profiler.

    Raises :class:`~repro.common.errors.ConfigError` on unknown
    experiment, workload or system names so CLI callers can fail with a
    one-line error instead of a traceback mid-run.
    """
    from repro.workloads import REGISTRY
    if system not in SYSTEMS:
        raise ConfigError(
            f"unknown backend {system!r}; known: {sorted(SYSTEMS)}")
    if workloads:
        names = list(workloads)
        unknown = [name for name in names if name not in REGISTRY]
        if unknown:
            raise ConfigError(
                f"unknown workload(s) {unknown}; "
                f"known: {sorted(REGISTRY.names())}")
    elif experiment == "figure1":
        names = list(FIGURE1_BENCHMARKS)
    elif experiment in ("figure7", "figure8"):
        names = list(PAPER_ORDER)
    elif experiment in REGISTRY:
        names = [experiment]
    else:
        raise ConfigError(
            f"unknown experiment {experiment!r}; expected figure1/"
            f"figure7/figure8 or a workload ({sorted(REGISTRY.names())})")
    return [ExperimentSpec(name, system, threads, seed, profile,
                           telemetry=True, profiling=profiling)
            for name in names]


def watch_specs(experiment: str, system: str = "SI-TM", threads: int = 8,
                seeds: int = 1, seed0: int = 1, profile: str = "quick",
                workloads: Optional[Sequence[str]] = None
                ) -> List[ExperimentSpec]:
    """Specs for ``sitm-harness watch``: a live-monitored telemetry grid.

    The same workload resolution as :func:`trace_specs`, crossed with
    ``seeds`` consecutive seeds — watch monitors a *campaign*, so it
    wants enough cells to show per-cell state evolving, not a single
    run.  Every spec carries ``telemetry=True``: that is what arms the
    time-series sampler (the event stream) and the flight recorder.
    """
    if seeds < 1:
        raise ConfigError(f"watch needs seeds >= 1, got {seeds}")
    specs: List[ExperimentSpec] = []
    for offset in range(seeds):
        specs.extend(trace_specs(experiment, system=system,
                                 threads=threads, seed=seed0 + offset,
                                 profile=profile, workloads=workloads))
    return specs


# ----------------------------------------------------------------------
# Table 2 / Appendix A — version-depth census


def table2(profile: str = "quick", threads: int = 32,
           seed: int = 1,
           workloads: Optional[Sequence[str]] = None,
           executor: Optional[Executor] = None) -> Dict[str, List[dict]]:
    """Reproduce Table 2: accesses per version depth, unbounded versions.

    Runs every benchmark under SI-TM with the version cap removed and the
    census enabled, counting transactional reads by the age rank of the
    version they hit.  The paper's conclusion: <1% of accesses reach past
    the 4th version, so a 4-deep MVM suffices.
    """
    config = SimConfig(mvm=MVMConfig(
        cap_policy=VersionCapPolicy.UNBOUNDED, census=True))
    names = list(workloads or PAPER_ORDER)
    specs = [ExperimentSpec(name, "SI-TM", threads, seed, profile, config)
             for name in names]
    executor = executor if executor is not None else serial_executor()
    run_results = executor.run(specs)
    results: Dict[str, List[dict]] = {}
    for name, spec in zip(names, specs):
        outcome = run_results[spec]
        if getattr(outcome, "failed", False):
            results[name] = []
            continue
        results[name] = outcome.census_rows or []
    return results


def census_tail_fraction(rows: List[dict], depth: int = 4) -> float:
    """Fraction of census accesses strictly deeper than ``depth``."""
    order = ["1st", "2nd", "3rd", "4th", "5th", "tail"]
    total = sum(r["accesses"] for r in rows)
    if not total:
        return 0.0
    deeper = sum(r["accesses"] for r in rows
                 if order.index(r["version"]) >= depth)
    return deeper / total


# ----------------------------------------------------------------------
# Capacity sweep — abort rate vs. hardware capacity (POWER-style bounds)


#: capacity levels swept by ``sitm-harness capacity``: the common bound
#: applied to both the tracked read set and the tracked write set, in
#: cache lines; 0 = unbounded (the paper's perfect sets)
CAPACITY_LEVELS: Tuple[int, ...] = (4, 8, 16, 32, 0)
#: STAMP workloads with contrasting footprints for the capacity sweep
CAPACITY_WORKLOADS = ["genome", "vacation", "kmeans"]
#: the declared capacity abort causes, in export order
CAPACITY_CAUSES = (AbortCause.READ_CAPACITY.value,
                   AbortCause.WRITE_CAPACITY.value,
                   AbortCause.VERSION_CAPACITY.value)


def _capacity_config(limit: int) -> Optional[SimConfig]:
    """Config for one sweep level; ``None`` for the unbounded baseline.

    Finite levels carry a retry policy: a transaction whose footprint
    can never fit the bound must eventually escalate to the golden
    token, which runs capacity-exempt (the software-fallback analogue),
    so every cell terminates no matter how tight the squeeze.
    """
    if not limit:
        return None
    from repro.sim.retry import RetryPolicy
    return SimConfig(
        tm=TMConfig(read_set_limit=limit, write_set_limit=limit),
        retry=RetryPolicy(attempt_budget=4, stall_budget=16,
                          starvation_age_cycles=50_000))


@dataclass
class CapacityCell:
    """One (workload, system, capacity) point of the capacity sweep."""

    workload: str
    system: str
    #: swept read/write-set bound in lines (0 = unbounded)
    limit: int
    commits: float
    aborts: float
    abort_rate: float
    #: mean aborts attributed to the three capacity causes
    capacity_aborts: float
    #: per-cause mean counts (read-/write-/version-capacity)
    capacity_causes: Dict[str, float] = field(default_factory=dict)
    throughput: float = 0.0
    failed: bool = False


def capacity(profile: str = "quick", threads: int = 8, seeds: int = 3,
             workloads: Optional[Sequence[str]] = None,
             systems: Optional[Sequence[str]] = None,
             levels: Optional[Sequence[int]] = None,
             executor: Optional[Executor] = None) -> List[CapacityCell]:
    """Abort rate vs. declared capacity: every backend, >=3 workloads.

    Sweeps one common read/write-set bound over ``levels`` (default
    :data:`CAPACITY_LEVELS`) for every (workload, system) pair.  The
    unbounded level (0) runs the pristine default config, so its cells
    are byte-identical to — and cache-share with — the figure grids;
    finite levels ride a retry policy whose golden-token escalation is
    capacity-exempt, guaranteeing termination below the footprint.
    Every abort the bound causes carries one of the three declared
    capacity causes, which is what the per-cause columns report.
    """
    workloads = list(workloads or CAPACITY_WORKLOADS)
    systems = list(systems or sorted(SYSTEMS))
    levels = list(levels if levels is not None else CAPACITY_LEVELS)
    grid = [(name, system, threads)
            for name in workloads for system in systems]
    cells: List[CapacityCell] = []
    for limit in levels:
        aggregates = _run_cells(grid, profile, seeds, executor,
                                config=_capacity_config(limit))
        for name, system, _ in grid:
            agg = aggregates[(name, system, threads)]
            runs = agg.runs
            n = max(1, len(runs))
            causes = {c: sum(r.abort_causes.get(c, 0) for r in runs) / n
                      for c in CAPACITY_CAUSES}
            cells.append(CapacityCell(
                workload=name, system=system, limit=limit,
                commits=sum(r.commits for r in runs) / n,
                aborts=agg.aborts, abort_rate=agg.abort_rate,
                capacity_aborts=sum(causes.values()),
                capacity_causes=causes,
                throughput=agg.throughput, failed=agg.failed))
    return cells


# ----------------------------------------------------------------------
# Section 3.2 — MVM overhead model


def overheads(bundle_lines: Sequence[int] = (1, 8)) -> List[dict]:
    """Reproduce the section 3.2 overhead arithmetic."""
    rows = []
    for bundle in bundle_lines:
        config = MVMConfig(bundle_lines=bundle)
        rep = overhead_report(config)
        rows.append({
            "bundle_lines": bundle,
            "overhead_full_versions_pct": 100 * rep.overhead_at_full_versions,
            "overhead_worst_case_pct": 100 * rep.overhead_worst_case,
            "bandwidth_best_case_pct": 100 * rep.bandwidth_best_case,
        })
    return rows
