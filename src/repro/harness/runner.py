"""Experiment runner: one simulation = (workload, system, threads, seed).

The runner owns machine construction (applying per-experiment MVM/TM
configuration such as the unbounded-version census mode), engine
execution, and aggregation across seeds.  The paper averages every
measurement over :data:`PAPER_SEEDS` (5) runs with different random
seeds and reports <5% standard deviation; :func:`run_seeds` reproduces
that protocol, defaulting to :data:`DEFAULT_SEEDS` (3) so quick runs
stay CI-friendly — pass ``seeds=PAPER_SEEDS`` (CLI: ``--seeds 5``) for
the paper-faithful protocol.  :class:`Aggregate` exposes the relative
standard deviation so the <5% claim is checkable.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.errors import AbortCause, ConfigError, SimulationError
from repro.common.rng import SplitRandom, derive_seed
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.stats import RunStats
from repro.tm import SYSTEMS
from repro.workloads import REGISTRY

#: seeds per cell in the paper's measurement protocol (section 6.1)
PAPER_SEEDS = 5
#: default seeds per cell for quick/CI runs
DEFAULT_SEEDS = 3


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    workload: str
    system: str
    threads: int
    seed: int
    commits: int
    aborts: int
    abort_rate: float
    read_write_aborts: int
    write_write_aborts: int
    makespan_cycles: int
    reads: int
    writes: int
    verified: Optional[bool]
    mvm_stats: Dict[str, int] = field(default_factory=dict)
    census_rows: Optional[List[dict]] = None
    abort_causes: Dict[str, int] = field(default_factory=dict)
    #: cycles spent in post-abort exponential backoff (summed over threads)
    backoff_cycles: int = 0
    #: cycles spent queued on the commit token (summed over threads)
    commit_wait_cycles: int = 0
    #: telemetry-only payloads (None when the spec ran without telemetry):
    #: the canonical metrics snapshot and the per-attempt span dicts —
    #: both JSON-safe so they survive the executor's cache/process
    #: boundary byte-identically
    metrics: Optional[dict] = None
    spans: Optional[List[dict]] = None
    #: telemetry-only payload (None when the spec ran without
    #: telemetry): the windowed time-series export of
    #: :class:`repro.obs.live.TimeSeriesSampler` — exact window
    #: aggregates plus any online anomaly alerts, JSON-safe
    timeseries: Optional[dict] = None
    #: profiling-only payload (None when the spec ran without
    #: profiling): the conservation-checked cycle-attribution snapshot
    #: (:meth:`repro.obs.profile.CycleProfiler.snapshot`)
    phases: Optional[dict] = None
    #: starving transactions escalated to serial golden-token mode by
    #: the engine's retry policy (0 when no policy was configured)
    escalations: int = 0
    #: highest attempt count any single transaction needed (the
    #: starvation watermark; 1 = everything committed first try)
    max_attempts_seen: int = 0
    #: fault-injector summary (None when the config carried no active
    #: :class:`~repro.faults.FaultPlan`): per-site injection counts
    fault_stats: Optional[dict] = None

    @property
    def throughput(self) -> float:
        """Committed transactions per megacycle (Figure 8's metric)."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.commits / (self.makespan_cycles / 1e6)

    def to_dict(self) -> dict:
        """Serialise to plain JSON-safe types (cache / process boundary)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        return cls(**data)


@dataclass
class Aggregate:
    """Seed-averaged metrics for one (workload, system, threads) cell.

    Under the crash-tolerant executor a cell may complete with fewer
    seeds than requested: quarantined specs surface as
    :class:`~repro.harness.executor.RunFailure` records, counted in
    ``failures`` and excluded from ``runs``.  Every mean guards against
    the all-seeds-failed case (``runs`` empty) so partial grids still
    render — with FAILED cells — instead of dividing by zero.
    """

    workload: str
    system: str
    threads: int
    runs: List[RunResult]
    #: seeds whose runs were quarantined by the executor (crash,
    #: timeout, or in-run error); > 0 marks this cell as partial
    failures: int = 0

    @property
    def failed(self) -> bool:
        """True when no seed of this cell produced a result."""
        return not self.runs

    @property
    def abort_rate(self) -> float:
        """Mean abort rate across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.abort_rate for r in self.runs) / len(self.runs)

    @property
    def aborts(self) -> float:
        """Mean absolute abort count across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.aborts for r in self.runs) / len(self.runs)

    @property
    def throughput(self) -> float:
        """Mean commits-per-megacycle across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.throughput for r in self.runs) / len(self.runs)

    @property
    def makespan(self) -> float:
        """Mean makespan cycles across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.makespan_cycles for r in self.runs) / len(self.runs)

    @property
    def throughput_stddev(self) -> float:
        """Population standard deviation of per-seed throughput.

        The paper reports <5% standard deviation across its 5-seed
        averages; this (with :attr:`throughput_rel_stddev`) makes that
        protocol claim checkable on our reproduction.
        """
        if not self.runs:
            return 0.0
        mean = self.throughput
        variance = sum((r.throughput - mean) ** 2
                       for r in self.runs) / len(self.runs)
        return math.sqrt(variance)

    @property
    def throughput_rel_stddev(self) -> float:
        """Throughput stddev as a fraction of the mean (0 when mean is 0)."""
        mean = self.throughput
        return self.throughput_stddev / mean if mean else 0.0

    @property
    def backoff_cycles(self) -> float:
        """Mean cycles burned in post-abort backoff across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.backoff_cycles for r in self.runs) / len(self.runs)

    @property
    def commit_wait_cycles(self) -> float:
        """Mean cycles spent queued on the commit token across seeds."""
        if not self.runs:
            return 0.0
        return sum(r.commit_wait_cycles for r in self.runs) / len(self.runs)

    @property
    def read_write_fraction(self) -> Optional[float]:
        """Fraction of conflict aborts that are read-write (Figure 1)."""
        rw = sum(r.read_write_aborts for r in self.runs)
        ww = sum(r.write_write_aborts for r in self.runs)
        return rw / (rw + ww) if rw + ww else None

    @property
    def all_verified(self) -> bool:
        """All seeds passed the workload's consistency check (or had none)."""
        return all(r.verified in (None, True) for r in self.runs)


def run_once(workload: str, system: str, threads: int, seed: int,
             profile: str = "quick",
             config: Optional[SimConfig] = None,
             telemetry: bool = False,
             profiling: bool = False,
             flight_path=None,
             window_cycles: Optional[int] = None) -> RunResult:
    """Run one simulation and collect its statistics.

    With ``telemetry=True`` the run carries a :class:`~repro.obs.metrics.
    MetricsRegistry` (wired into the machine, MVM, and TM hot paths), a
    :class:`~repro.obs.spans.SpanRecorder` and a
    :class:`~repro.obs.live.TimeSeriesSampler` in the engine's tracer
    slot; the result then includes the canonical metrics snapshot, the
    per-attempt span dicts and the windowed time-series export
    (``window_cycles`` overrides the sampler's window width).
    ``flight_path`` (telemetry runs only) additionally arms a
    :class:`~repro.obs.flight.FlightRecorder` at that path: discarded
    on a clean finish, dumped — and left on disk — when the run dies
    of a :class:`~repro.common.errors.SimulationError` (including the
    engine watchdog) or of anything harsher the recorder's periodic
    persists already covered.  With ``profiling=True`` a
    :class:`~repro.obs.profile.CycleProfiler` rides in the same tracer
    slot (composed via ``MultiTracer``).  None of these perturb the
    simulation — schedules and statistics are identical either way —
    so cached results from plain runs stay valid.
    """
    if system not in SYSTEMS:
        raise ConfigError(f"unknown system {system!r}; known: {sorted(SYSTEMS)}")
    config = config or SimConfig()
    if threads > config.machine.cores:
        config = config.replace(
            machine=dataclasses.replace(config.machine, cores=threads))
    machine = Machine(config)
    registry = recorder = profiler = sampler = flight = None
    if telemetry:
        from repro.obs import (MetricsRegistry, SpanRecorder,
                               TimeSeriesSampler)
        from repro.obs.live import DEFAULT_WINDOW_CYCLES
        registry = MetricsRegistry()
        recorder = SpanRecorder(metrics=registry)
        machine.enable_telemetry(registry)
        sampler = TimeSeriesSampler(
            window_cycles=window_cycles or DEFAULT_WINDOW_CYCLES)
        if flight_path is not None:
            from repro.obs import FlightRecorder
            from repro.obs.live import context
            flight = FlightRecorder(flight_path, context=context())
            sampler.flight = flight
            flight.start()
    if profiling:
        from repro.obs import CycleProfiler
        profiler = CycleProfiler()
    parts = [t for t in (recorder, sampler, profiler) if t is not None]
    if len(parts) > 1:
        from repro.obs import MultiTracer
        tracer = MultiTracer(*parts)
    else:
        tracer = parts[0] if parts else None
    rng = SplitRandom(derive_seed(seed, workload, system, threads))
    bench = REGISTRY.create(workload, profile=profile)
    instance = bench.setup(machine, threads, rng.split("workload"))
    tm = SYSTEMS[system](machine, rng.split("tm"))
    engine = Engine(tm, instance.programs, tracer=tracer)
    try:
        stats: RunStats = engine.run()
    except SimulationError as exc:
        # the run's last moments are already in the sampler/recorder:
        # flush what closed and leave the flight artifact for the
        # executor to attach to this spec's RunFailure cell
        if sampler is not None:
            sampler.finish()
        if flight is not None:
            flight.dump(reason=str(exc).splitlines()[0])
        raise
    verified = instance.verify() if instance.verify is not None else None
    census_rows = (machine.mvm.census.rows()
                   if machine.mvm.census is not None else None)
    metrics_snapshot = spans = phases = timeseries = None
    if telemetry:
        from repro.obs import collect_run_metrics, record_provenance_metrics
        collect_run_metrics(registry, machine, tm, stats)
        # end-of-run fold: killer outcomes are only knowable once every
        # span has closed, so provenance counters cost the hot path nothing
        provenance = record_provenance_metrics(registry, system,
                                               recorder.spans)
        timeseries = sampler.export()
        for alert in timeseries["alerts"]:
            registry.inc("obs_alerts_total", rule=alert["rule"])
        metrics_snapshot = registry.snapshot()
        spans = [s.to_dict() for s in recorder.spans]
        if flight is not None:
            flight.discard()
    if profiling:
        # with telemetry on, reconcile the span ledger's per-victim-thread
        # wasted cycles against the profiler's independent clock-delta
        # tally — the two must agree exactly
        wasted = provenance.wasted_by_thread if telemetry else None
        profiler.check_conservation([t.cycles for t in stats.threads],
                                    wasted_by_thread=wasted)
        phases = profiler.snapshot()
    return RunResult(
        workload=workload, system=system, threads=threads, seed=seed,
        commits=stats.total_commits, aborts=stats.total_aborts,
        abort_rate=stats.abort_rate,
        read_write_aborts=stats.read_write_aborts,
        write_write_aborts=stats.write_write_aborts,
        makespan_cycles=stats.makespan_cycles,
        reads=sum(t.reads for t in stats.threads),
        writes=sum(t.writes for t in stats.threads),
        verified=verified,
        mvm_stats=machine.mvm.stats(),
        census_rows=census_rows,
        abort_causes={c.value: n for c, n in stats.abort_causes.items()},
        backoff_cycles=sum(t.backoff_cycles for t in stats.threads),
        commit_wait_cycles=sum(t.commit_wait_cycles for t in stats.threads),
        metrics=metrics_snapshot,
        spans=spans,
        timeseries=timeseries,
        phases=phases,
        escalations=stats.escalations,
        max_attempts_seen=stats.max_attempts_seen,
        fault_stats=(machine.faults.stats()
                     if machine.faults is not None else None),
    )


def run_seeds(workload: str, system: str, threads: int,
              profile: str = "quick", seeds: int = DEFAULT_SEEDS,
              seed0: int = 1,
              config: Optional[SimConfig] = None) -> Aggregate:
    """Average one experiment cell over ``seeds`` independent runs.

    Defaults to :data:`DEFAULT_SEEDS` for speed; the paper's protocol is
    :data:`PAPER_SEEDS`.
    """
    runs = [run_once(workload, system, threads, seed0 + i, profile, config)
            for i in range(seeds)]
    return Aggregate(workload, system, threads, runs)
