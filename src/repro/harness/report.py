"""Plain-text table and series rendering for experiment reports.

The harness prints the same rows/series the paper's figures plot; these
helpers keep the formatting consistent (fixed-width ASCII tables that read
well in a terminal and diff cleanly in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i])
                               if _is_numeric(cell) else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("e", "").replace("-", "") \
        .replace("+", "").replace(".", "")
    return stripped.isdigit()


def format_relative(value: Optional[float]) -> str:
    """Render an abort count relative to the 2PL baseline (Figure 7)."""
    if value is None:
        return "n/a"
    if value == 0:
        return "0"
    if value < 0.001:
        return f"{value:.1e}"
    return f"{value:.3f}"


def format_rel_stddev(value: Optional[float]) -> str:
    """Render a relative stddev as a percentage (the paper claims <5%)."""
    if value is None:
        return "n/a"
    return f"{100.0 * value:.1f}%"


def format_series(label: str, xs: Sequence[int], ys: Sequence[float],
                  stddev: Optional[Sequence[float]] = None) -> str:
    """Render one figure series as ``label: x=y, x=y, ...``.

    With ``stddev`` (per-point relative stddevs), appends the series'
    worst seed noise as ``(max sd x.x%)`` so the paper's <5% protocol
    claim is visible in every table.
    """
    points = ", ".join(f"{x}={_cell(float(y))}" for x, y in zip(xs, ys))
    suffix = ""
    if stddev:
        suffix = f"  (max sd {format_rel_stddev(max(stddev))})"
    return f"{label}: {points}{suffix}"


def line_chart(series: Dict[str, Sequence[float]], xs: Sequence[int],
               width: int = 64, height: int = 12, title: str = "") -> str:
    """ASCII line chart: one mark per series (Figure 8's speedup curves).

    ``series`` maps a label to y-values aligned with ``xs``.  Each series
    is drawn with the first letter of its label; collisions show ``*``.
    """
    lines = [title] if title else []
    all_values = [v for ys in series.values() for v in ys]
    if not all_values or not xs:
        lines.append("(no data)")
        return "\n".join(lines)
    top = max(all_values) or 1.0
    grid = [[" "] * width for _ in range(height)]
    columns = [int(i * (width - 1) / max(1, len(xs) - 1))
               for i in range(len(xs))]
    for label, ys in series.items():
        mark = label[0] if label else "?"
        for column, value in zip(columns, ys):
            row = height - 1 - int((value / top) * (height - 1))
            row = min(height - 1, max(0, row))
            cell = grid[row][column]
            grid[row][column] = mark if cell == " " else "*"
    for row_index, row in enumerate(grid):
        value_at = top * (height - 1 - row_index) / (height - 1)
        lines.append(f"{value_at:6.1f} |{''.join(row)}")
    axis = [" "] * width
    for column, x in zip(columns, xs):
        text = str(x)
        for offset, ch in enumerate(text):
            if column + offset < width:
                axis[column + offset] = ch
    lines.append("       +" + "-" * width)
    lines.append("        " + "".join(axis))
    legend = "  ".join(f"{label[0]}={label}" for label in series)
    lines.append("        " + legend)
    return "\n".join(lines)


def bar_chart(items: Dict[str, float], width: int = 40,
              title: str = "") -> str:
    """ASCII horizontal bar chart (for Figure 1's percentage bars)."""
    lines = [title] if title else []
    top = max(items.values(), default=1.0) or 1.0
    label_width = max((len(k) for k in items), default=0)
    for key, value in items.items():
        bar = "#" * int(round(width * value / top))
        lines.append(f"{key.ljust(label_width)} |{bar} {value:.1f}")
    return "\n".join(lines)
