"""Programmatic verification of the paper's headline claims.

DESIGN.md lists the shape targets this reproduction must hit; this module
turns each into an executable check returning expected-vs-measured, so
"did the reproduction reproduce?" is one command::

    python -m repro.harness.cli claims --profile test

Thresholds are *shape* thresholds (who wins, roughly by how much), looser
than the paper's absolute factors because the substrate is an
operation-level simulator at reduced scale — see DESIGN.md section 2 and
EXPERIMENTS.md for the full argument and the measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.harness import experiments
from repro.harness.executor import Executor


@dataclass
class ClaimResult:
    """One verified claim."""

    claim_id: str
    description: str
    expected: str
    measured: str
    passed: bool


def _relative(cells, workload: str, system: str) -> Optional[float]:
    for cell in cells:
        if cell.workload == workload:
            return cell.relative[system]
    return None


def check_claims(profile: str = "test", threads: int = 8,
                 seeds: int = 2,
                 executor: Optional[Executor] = None) -> List[ClaimResult]:
    """Run the whole battery; returns one result per headline claim.

    ``executor`` parallelises/memoizes the grid-shaped checks; the
    hand-built schedules (Figures 2 and 6) always run inline.
    """
    results: List[ClaimResult] = []

    # -- Figure 1: read-write aborts dominate under 2PL ------------------
    rows = experiments.figure1(profile, threads, seeds, executor=executor)
    rw = sum(r.read_write_pct * r.total_aborts for r in rows)
    ww = sum(r.write_write_pct * r.total_aborts for r in rows)
    fraction = rw / (rw + ww) if rw + ww else 0.0
    results.append(ClaimResult(
        "fig1-rw-dominates",
        "75-99% of 2PL aborts are read-write conflicts",
        ">= 0.75", f"{fraction:.3f}", fraction >= 0.75))

    # -- Figure 7 shapes --------------------------------------------------
    cells = experiments.figure7(profile, (threads,), seeds,
                                executor=executor)

    def claim_relative(claim_id, workload, bound, description):
        value = _relative(cells, workload, "SI-TM")
        measured = "n/a" if value is None else f"{value:.3f}"
        passed = value is not None and value < bound
        results.append(ClaimResult(
            claim_id, description, f"< {bound}", measured, passed))

    claim_relative("fig7-array", "array", 0.20,
                   "Array: SI-TM collapses aborts vs 2PL (paper: ~3000x)")
    claim_relative("fig7-list", "list", 0.20,
                   "List: SI-TM far below 2PL (paper: >30x)")
    claim_relative("fig7-vacation", "vacation", 0.35,
                   "Vacation: SI-TM a small fraction of 2PL (paper: <1%)")
    claim_relative("fig7-intruder", "intruder", 0.60,
                   "Intruder: SI-TM well below 2PL (paper: ~50x)")

    kmeans_rel = _relative(cells, "kmeans", "SI-TM")
    results.append(ClaimResult(
        "fig7-kmeans-null", "Kmeans: SI cannot dodge RMW conflicts",
        "> 0.30",
        "n/a" if kmeans_rel is None else f"{kmeans_rel:.3f}",
        kmeans_rel is not None and kmeans_rel > 0.30))

    sontm_array = _relative(cells, "array", "SONTM")
    results.append(ClaimResult(
        "fig7-cs-between", "CS sits between 2PL and SI on Array",
        "SI < SONTM < 1.0",
        f"SONTM={sontm_array:.3f}" if sontm_array is not None else "n/a",
        sontm_array is not None
        and (_relative(cells, "array", "SI-TM") or 1) < sontm_array < 1.0))

    # -- Figure 8: read-heavy scalability ---------------------------------
    series = experiments.figure8(profile, (1, threads), seeds,
                                 workloads=["array", "vacation"],
                                 executor=executor)
    by_key = {(s.workload, s.system): s.speedup[-1] for s in series}
    for workload in ("array", "vacation"):
        si = by_key[(workload, "SI-TM")]
        baseline = by_key[(workload, "2PL")]
        results.append(ClaimResult(
            f"fig8-{workload}",
            f"{workload}: SI-TM outscales 2PL at {threads} threads",
            "SI > 2PL", f"SI={si:.2f} 2PL={baseline:.2f}", si > baseline))

    # -- Table 2: 4 versions suffice --------------------------------------
    census = experiments.table2(profile, threads,
                                workloads=["array", "list", "rbtree"],
                                executor=executor)
    worst_tail = max(experiments.census_tail_fraction(rows_, 4)
                     for rows_ in census.values())
    results.append(ClaimResult(
        "table2-four-versions",
        "accesses beyond the 4th version are marginal (paper: <1%)",
        "< 0.05", f"{worst_tail:.4f}", worst_tail < 0.05))

    # -- Figures 2 and 6: exact schedule outcomes -------------------------
    fig2 = {o.system: o for o in experiments.figure2()}
    fig2_ok = (sorted(fig2["SONTM"].committed) == ["TX0", "TX1"]
               and fig2["SI-TM"].aborted == ["TX3"])
    results.append(ClaimResult(
        "fig2-schedule", "example schedule: CS commits 2, SI aborts only TX3",
        "exact", "exact" if fig2_ok else "mismatch", fig2_ok))

    fig6 = {o.system: o for o in experiments.figure6()}
    fig6_ok = ("TX0" in fig6["SONTM"].aborted
               and sorted(fig6["SSI-TM"].committed) == ["TX0", "TX1"])
    results.append(ClaimResult(
        "fig6-temporal", "CS aborts the long reader; SSI commits it",
        "exact", "exact" if fig6_ok else "mismatch", fig6_ok))

    # -- Section 3.2 arithmetic -------------------------------------------
    rows_ = experiments.overheads()
    by_bundle = {r["bundle_lines"]: r for r in rows_}
    arithmetic_ok = (
        abs(by_bundle[1]["overhead_full_versions_pct"] - 12.5) < 1e-9
        and abs(by_bundle[1]["overhead_worst_case_pct"] - 50.0) < 1e-9
        and abs(by_bundle[8]["overhead_worst_case_pct"] - 6.25) < 1e-9)
    results.append(ClaimResult(
        "sec3.2-overheads", "12.5% / 50% / 6.25% metadata overheads",
        "exact", "exact" if arithmetic_ok else "mismatch", arithmetic_ok))

    return results


def all_passed(results: Sequence[ClaimResult]) -> bool:
    """True when every claim check passed."""
    return all(r.passed for r in results)
