"""Machine-readable experiment exports (CSV and JSON).

The text tables are for humans; plotting scripts and CI dashboards want
rows.  These helpers flatten the experiment drivers' structured results
into plain dict-rows, serialise them, and back the CLI's ``--csv``/
``--json`` options.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Sequence

from repro.harness.experiments import (
    CAPACITY_CAUSES,
    CapacityCell,
    Figure1Row,
    Figure7Cell,
    Figure8Series,
    ScheduleOutcome,
)
from repro.harness.runner import RunResult
from repro.harness.spec import ExperimentSpec


def figure1_rows(rows: Sequence[Figure1Row]) -> List[dict]:
    """Flatten Figure 1 results.

    Provenance columns follow the omitted-when-None convention: rows
    built without span telemetry flatten to exactly the historical
    four-key shape.
    """
    out = []
    for r in rows:
        row = {"workload": r.workload,
               "read_write_pct": round(r.read_write_pct, 2),
               "write_write_pct": round(r.write_write_pct, 2),
               "aborts_per_run": round(r.total_aborts, 2)}
        if r.decisive_pct is not None:
            row["decisive_pct"] = round(r.decisive_pct, 2)
            row["cascading_pct"] = round(r.cascading_pct, 2)
            row["self_inflicted_pct"] = round(r.self_inflicted_pct, 2)
            row["wasted_cycles_per_run"] = round(r.wasted_cycles, 2)
        out.append(row)
    return out


def figure7_rows(cells: Sequence[Figure7Cell]) -> List[dict]:
    """Flatten Figure 7 results: one row per (workload, threads, system)."""
    out = []
    for cell in cells:
        for system, aborts in cell.aborts.items():
            relative = cell.relative.get(system)
            rel_stddev = cell.rel_stddev.get(system)
            out.append({
                "workload": cell.workload,
                "threads": cell.threads,
                "system": system,
                "aborts": round(aborts, 2),
                "relative_to_2pl": (round(relative, 6)
                                    if relative is not None else ""),
                "throughput_rel_stddev": (round(rel_stddev, 6)
                                          if rel_stddev is not None else ""),
                "backoff_cycles": round(cell.backoff.get(system, 0.0), 2),
                "commit_wait_cycles": round(
                    cell.commit_wait.get(system, 0.0), 2),
            })
    return out


def figure8_rows(series: Sequence[Figure8Series]) -> List[dict]:
    """Flatten Figure 8 results: one row per (workload, system, threads)."""
    out = []
    for entry in series:
        stddevs = entry.rel_stddev or [None] * len(entry.threads)
        backoffs = entry.backoff or [0.0] * len(entry.threads)
        waits = entry.commit_wait or [0.0] * len(entry.threads)
        for threads, speedup, stddev, backoff, wait in zip(
                entry.threads, entry.speedup, stddevs, backoffs, waits):
            out.append({"workload": entry.workload,
                        "system": entry.system,
                        "threads": threads,
                        "speedup": round(speedup, 4),
                        "throughput_rel_stddev": (round(stddev, 6)
                                                  if stddev is not None
                                                  else ""),
                        "backoff_cycles": round(backoff, 2),
                        "commit_wait_cycles": round(wait, 2)})
    return out


def capacity_rows(cells: Sequence[CapacityCell]) -> List[dict]:
    """Flatten the capacity sweep: one row per (workload, system, limit).

    ``limit`` 0 denotes the unbounded baseline; the per-cause columns
    split the capacity aborts by their declared cause so plots can
    distinguish read-set, write-set and version-buffer pressure.
    """
    out = []
    for cell in cells:
        row = {"workload": cell.workload,
               "system": cell.system,
               "limit": cell.limit,
               "commits": round(cell.commits, 2),
               "aborts": round(cell.aborts, 2),
               "abort_rate": round(cell.abort_rate, 6),
               "capacity_aborts": round(cell.capacity_aborts, 2),
               "throughput": round(cell.throughput, 6),
               "failed": cell.failed}
        for cause in CAPACITY_CAUSES:
            row[cause] = round(cell.capacity_causes.get(cause, 0.0), 2)
        out.append(row)
    return out


def run_result_rows(results: Mapping[ExperimentSpec, RunResult]
                    ) -> List[dict]:
    """Flatten an executor result map: one row per spec.

    The unified record the execution layer traffics in — each row is the
    spec's identity (including its hash, which is also the cache key
    input) plus the headline metrics of its :class:`RunResult`.
    """
    out = []
    for spec, result in results.items():
        out.append({
            "spec_hash": spec.spec_hash(),
            "workload": spec.workload,
            "system": spec.system,
            "threads": spec.threads,
            "seed": spec.seed,
            "profile": spec.profile,
            "commits": result.commits,
            "aborts": result.aborts,
            "abort_rate": round(result.abort_rate, 6),
            "makespan_cycles": result.makespan_cycles,
            "throughput": round(result.throughput, 6),
        })
    return out


def schedule_rows(outcomes: Sequence[ScheduleOutcome]) -> List[dict]:
    """Flatten Figure 2/6 outcomes."""
    return [{"system": o.system,
             "committed": " ".join(o.committed),
             "aborted": " ".join(o.aborted),
             "causes": " ".join(f"{k}:{v}"
                                for k, v in o.abort_causes.items())}
            for o in outcomes]


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise dict-rows as CSV (columns from the first row)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise dict-rows as pretty JSON."""
    return json.dumps(list(rows), indent=2, sort_keys=True) + "\n"
