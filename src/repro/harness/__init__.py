"""Experiment harness: runners, per-figure drivers, report rendering, CLI."""

from repro.harness.claims import ClaimResult, all_passed, check_claims
from repro.harness.experiments import (
    FIGURE1_BENCHMARKS,
    FIGURE_SYSTEMS,
    Figure1Row,
    Figure7Cell,
    Figure8Series,
    ScheduleOutcome,
    census_tail_fraction,
    figure1,
    figure2,
    figure6,
    figure7,
    figure8,
    overheads,
    table2,
)
from repro.harness.report import (
    bar_chart,
    line_chart,
    format_relative,
    format_series,
    format_table,
)
from repro.harness.runner import Aggregate, RunResult, run_once, run_seeds

__all__ = [
    "Aggregate",
    "ClaimResult",
    "all_passed",
    "check_claims",
    "FIGURE1_BENCHMARKS",
    "FIGURE_SYSTEMS",
    "Figure1Row",
    "Figure7Cell",
    "Figure8Series",
    "RunResult",
    "ScheduleOutcome",
    "bar_chart",
    "census_tail_fraction",
    "figure1",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "format_relative",
    "format_series",
    "format_table",
    "line_chart",
    "overheads",
    "run_once",
    "run_seeds",
    "table2",
]
