"""Command-line harness: regenerate every figure and table of the paper.

Usage::

    sitm-harness fig1  [--profile quick] [--threads 16] [--seeds 3]
    sitm-harness fig2
    sitm-harness fig6
    sitm-harness fig7  [--profile quick] [--seeds 3] [--jobs 4]
    sitm-harness fig8  [--profile quick] [--seeds 3] [--jobs 4]
    sitm-harness table1
    sitm-harness table2 [--profile quick]
    sitm-harness capacity [--profile quick] [--threads 8] [--seeds 3]
    sitm-harness overheads
    sitm-harness cache [--stats | --clear]
    sitm-harness fuzz  [--backend all] [--schedules N] [--seed S] [--jobs 4]
                       [--faults]
    sitm-harness faults [--list | --no-escalation] [--seeds 3] [--jobs 4]
    sitm-harness trace   [--experiment figure7] [--backend sitm]
                         [--out trace.json]
    sitm-harness metrics [--experiment rbtree] [--backend sitm]
                         [--format text|prom]
    sitm-harness watch   [--experiment rbtree] [--backend sitm]
                         [--seeds 2] [--jobs 2] [--headless]
                         [--series-out series.jsonl] [--crash-cell]
    sitm-harness blame   [--experiment rbtree] [--backend sitm]
                         [--top N] [--dot graph.dot] [--json blame.json]
    sitm-harness profile [--experiment rbtree] [--backend sitm]
                         [--stacks stacks.txt]
    sitm-harness bench [--suite quick] [--label current] [--jobs 4]
    sitm-harness bench --compare BASE.json CURRENT.json
    sitm-harness all   [--profile test]

``--profile`` selects the workload scaling profile (see
:mod:`repro.workloads.base`); ``full`` is closest to the paper but slow in
pure Python.  ``--seeds`` sets independent seeds per cell: the default 3
keeps quick runs fast, the paper's protocol averages 5 (``--seeds 5``).

Grid commands (fig1/fig7/fig8/table2/claims) execute through the
parallel, memoizing executor: ``--jobs N`` fans simulations out over N
worker processes (``--jobs 0`` = one per CPU), and completed runs are
cached content-addressed under ``results/.cache`` so a re-run is served
from disk.  ``--no-cache`` disables the cache, ``--refresh`` recomputes
and overwrites it, and ``sitm-harness cache --stats/--clear`` inspects
or empties it.  Results are byte-identical serial, parallel, or cached.

Live monitoring: ``sitm-harness watch`` runs a telemetry grid under
the campaign monitor (per-cell state, abort-rate sparklines, alerts,
ETA; ``--headless`` for line-mode output, ``--series-out`` to persist
the streamed time series, ``--crash-cell`` to add one deliberately
crashing cell and exercise the flight recorder), and every grid
command accepts ``--progress`` for periodic one-line status on stderr.
See ``docs/observability.md`` ("Live monitoring") and
``docs/timeseries-schema.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.config import table1_dict
from repro.common.errors import ConfigError
from repro.harness import experiments
from repro.harness.claims import all_passed, check_claims
from repro.harness import export
from repro.harness.executor import Executor, ResultCache
from repro.harness.report import (format_rel_stddev, format_relative,
                                  format_series, format_table, line_chart)
from repro.harness.runner import DEFAULT_SEEDS, PAPER_SEEDS


def _fig1(args) -> str:
    rows = experiments.figure1(args.profile, args.threads, args.seeds,
                               executor=args.executor)
    _export(args, export.figure1_rows(rows))

    def pct(value) -> str:
        return "-" if value is None else f"{value:.1f}"

    return format_table(
        ["benchmark", "read-write %", "write-write %", "aborts/run",
         "decisive %", "cascading %", "self %", "wasted kc/run"],
        [[r.workload, f"{r.read_write_pct:.1f}", f"{r.write_write_pct:.1f}",
          f"{r.total_aborts:.0f}", pct(r.decisive_pct),
          pct(r.cascading_pct), pct(r.self_inflicted_pct),
          "-" if r.wasted_cycles is None
          else f"{r.wasted_cycles / 1000.0:.1f}"] for r in rows],
        title="Figure 1: abort causes under 2PL")


def _export(args, rows) -> None:
    """Write machine-readable rows when --csv/--json were given."""
    if getattr(args, "csv", None):
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(export.to_csv(rows))
    if getattr(args, "json", None):
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(export.to_json(rows))


def _schedule_table(outcomes, title: str) -> str:
    return format_table(
        ["system", "committed", "aborted", "causes"],
        [[o.system, " ".join(o.committed) or "-",
          " ".join(o.aborted) or "-",
          " ".join(f"{k}:{v}" for k, v in o.abort_causes.items()) or "-"]
         for o in outcomes],
        title=title)


def _fig2(args) -> str:
    return _schedule_table(experiments.figure2(),
                           "Figure 2: example schedule outcomes")


def _fig6(args) -> str:
    return _schedule_table(experiments.figure6(),
                           "Figure 6: temporal cyclic dependency")


def _fig7(args) -> str:
    systems = args.systems or list(experiments.FIGURE_SYSTEMS)
    if "2PL" not in systems:
        systems = ["2PL"] + systems
    cells = experiments.figure7(args.profile, seeds=args.seeds,
                                workloads=args.workloads, systems=systems,
                                executor=args.executor)
    _export(args, export.figure7_rows(cells))
    headers = (["benchmark", "threads"] + systems
               + [f"{s}/2PL" for s in systems if s != "2PL"]
               + ["max sd", "backoff(2PL) kc", "wait(2PL) kc"])
    rows = []
    for c in cells:
        row = [c.workload, c.threads]
        row += ["FAILED" if c.failed.get(s) else f"{c.aborts[s]:.0f}"
                for s in systems]
        row += [format_relative(c.relative[s]) for s in systems
                if s != "2PL"]
        row.append(format_rel_stddev(
            max(c.rel_stddev.values()) if c.rel_stddev else None))
        row.append(f"{c.backoff.get('2PL', 0.0) / 1000.0:.1f}")
        row.append(f"{c.commit_wait.get('2PL', 0.0) / 1000.0:.1f}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Figure 7: aborts relative to 2PL")


def _fig8(args) -> str:
    series = experiments.figure8(args.profile, seeds=args.seeds,
                                 workloads=args.workloads,
                                 systems=args.systems,
                                 executor=args.executor)
    _export(args, export.figure8_rows(series))
    lines = ["Figure 8: speedup over one thread"]
    for s in series:
        line = format_series(f"{s.workload:10s} {s.system:6s}",
                             s.threads, s.speedup, s.rel_stddev)
        if s.backoff and s.commit_wait:
            # contention cost at the widest point of the curve: where
            # backoff and commit-token queueing eat the speedup
            line += (f"  [backoff {s.backoff[-1] / 1000.0:.1f}kc"
                     f" wait {s.commit_wait[-1] / 1000.0:.1f}kc"
                     f" @t{s.threads[-1]}]")
        lines.append(line)
    if args.chart:
        by_workload = {}
        for s in series:
            by_workload.setdefault(s.workload, {})[s.system] = s.speedup
        for workload, curves in by_workload.items():
            lines.append("")
            lines.append(line_chart(curves, series[0].threads,
                                    title=f"{workload} speedup"))
    return "\n".join(lines)


def _table1(args) -> str:
    return format_table(["parameter", "value"],
                        [[k, v] for k, v in table1_dict().items()],
                        title="Table 1: simulated architecture")


def _table2(args) -> str:
    results = experiments.table2(args.profile, workloads=args.workloads,
                                 executor=args.executor)
    headers = ["version"] + list(results)
    depth_rows = {}
    for name, rows in results.items():
        for row in rows:
            depth_rows.setdefault(row["version"], {})[name] = row["accesses"]
    table_rows = [[version] + [cells.get(name, 0) for name in results]
                  for version, cells in depth_rows.items()]
    return format_table(headers, table_rows,
                        title="Table 2: accesses per MVM version (unbounded)")


def _claims(args) -> str:
    results = check_claims(profile=args.profile, threads=args.threads,
                           seeds=args.seeds, executor=args.executor)
    table = format_table(
        ["claim", "description", "expected", "measured", "ok"],
        [[r.claim_id, r.description, r.expected, r.measured,
          "PASS" if r.passed else "FAIL"] for r in results],
        title="Headline-claim verification")
    verdict = "ALL CLAIMS PASS" if all_passed(results) else "FAILURES PRESENT"
    return table + f"\n\n{verdict}"


def _capacity(args) -> str:
    """``sitm-harness capacity``: abort rate vs. capacity curves."""
    cells = experiments.capacity(args.profile, threads=args.threads,
                                 seeds=args.seeds,
                                 workloads=args.workloads,
                                 systems=args.systems,
                                 executor=args.executor)
    _export(args, export.capacity_rows(cells))
    table_rows = []
    for c in cells:
        causes = " ".join(f"{k.split('-')[0]}:{v:.0f}"
                          for k, v in c.capacity_causes.items() if v)
        table_rows.append([
            c.workload, c.system, c.limit if c.limit else "inf",
            "FAILED" if c.failed else f"{c.abort_rate:.3f}",
            f"{c.capacity_aborts:.0f}", causes or "-"])
    lines = [format_table(
        ["benchmark", "system", "limit", "abort rate", "capacity aborts",
         "by cause"],
        table_rows,
        title="Capacity sweep: abort rate vs. read/write-set bound")]
    levels: List[int] = []
    for c in cells:
        if c.limit not in levels:
            levels.append(c.limit)
    by_workload = {}
    for c in cells:
        by_workload.setdefault(c.workload, {}).setdefault(
            c.system, []).append(c.abort_rate)
    for workload, curves in by_workload.items():
        lines.append("")
        lines.append(line_chart(
            curves, levels,
            title=f"{workload}: abort rate vs. capacity "
                  f"(x = set limit in lines, 0 = unbounded)"))
    return "\n".join(lines)


def _overheads(args) -> str:
    rows = experiments.overheads()
    return format_table(
        ["bundle", "overhead @4 versions %", "worst case %",
         "bandwidth best case %"],
        [[r["bundle_lines"], f"{r['overhead_full_versions_pct']:.1f}",
          f"{r['overhead_worst_case_pct']:.1f}",
          f"{r['bandwidth_best_case_pct']:.1f}"] for r in rows],
        title="Section 3.2: MVM overhead model")


def _fuzz(args) -> str:
    from repro.oracle.fuzz import fuzz_batch, schedule_violations
    from repro.oracle.shrink import load_repro
    from repro.tm import SYSTEMS
    systems = (list(SYSTEMS) if args.backend == "all" else [args.backend])
    if args.replay:
        payload = load_repro(args.replay)
        replay_systems = payload.get("systems") or systems
        violations = schedule_violations(
            payload["schedule"], replay_systems,
            seed=payload.get("seed", args.seed),
            broken=payload.get("broken") or args.broken)
        args._fuzz_failed = bool(violations)
        lines = [f"replayed {args.replay} under "
                 f"{' '.join(replay_systems)}: "
                 f"{len(violations)} violation(s)"]
        lines += [f"  {v}" for v in violations]
        if payload.get("span_log"):
            lines.append(f"span log: {payload['span_log']} "
                         f"(next to the repro)")
        if args.trace_out:
            lines.append(_replay_trace(args, payload, replay_systems))
        return "\n".join(lines)
    config_patch = None
    if args.faults:
        from repro.faults import adversarial_plan
        from repro.sim.retry import RetryPolicy
        config_patch = {
            "faults": adversarial_plan(args.seed).to_dict(),
            "retry": RetryPolicy(attempt_budget=4, stall_budget=16,
                                 starvation_age_cycles=50_000).to_dict(),
        }
    report = fuzz_batch(
        args.executor, systems, args.schedules, seed=args.seed,
        threads=args.fuzz_threads, txns=args.fuzz_txns,
        cells=args.fuzz_cells, ops=args.fuzz_ops, broken=args.broken,
        out_dir=args.fuzz_out, config_patch=config_patch)
    args._fuzz_failed = not report.clean
    table = format_table(
        ["system", "schedules", "committed", "aborted", "violations"],
        [[system, row["schedules"], row["committed"], row["aborted"],
          row["violations"]]
         for system, row in report.per_system.items()],
        title=f"Isolation fuzz: {args.schedules} schedules, seed "
              f"{args.seed}" + (f", broken={args.broken}"
                                if args.broken else "")
              + (", adversarial faults" if args.faults else ""))
    if report.clean:
        return table + "\nNO ISOLATION VIOLATIONS"
    lines = [table, f"{len(report.violations)} VIOLATION(S):"]
    for system, index, violation in report.violations[:20]:
        lines.append(f"  schedule {index} [{system}] "
                     f"{violation['rule']}: {violation['detail']}")
    if len(report.violations) > 20:
        lines.append(f"  ... and {len(report.violations) - 20} more")
    if report.repro_path:
        lines.append(f"minimal repro persisted: {report.repro_path}")
    return "\n".join(lines)


def _faults(args) -> str:
    """``sitm-harness faults``: list injectable sites or run the pinned
    adversarial campaign through the isolation oracle."""
    from repro.faults import FAULT_SITES
    from repro.oracle.fuzz import fault_campaign
    from repro.tm import SYSTEMS
    if args.list:
        return format_table(
            ["site", "layer", "plan fields", "effect"],
            [[site["site"], site["layer"], site["fields"], site["effect"]]
             for site in FAULT_SITES],
            title="Injectable fault sites (FaultPlan)")
    systems = (list(SYSTEMS) if args.backend == "all" else [args.backend])
    seeds = list(range(args.seeds))
    report = fault_campaign(args.executor, systems, seeds=seeds,
                            escalation=not args.no_escalation,
                            out_dir=args.fuzz_out)
    args._fuzz_failed = not report.clean
    mode = ("escalation DISABLED (expect no-progress)"
            if args.no_escalation else "escalation enabled")
    table = format_table(
        ["system", "schedules", "committed", "aborted", "violations"],
        [[system, row["schedules"], row["committed"], row["aborted"],
          row["violations"]]
         for system, row in report.per_system.items()],
        title=f"Adversarial fault campaign: {len(seeds)} seed(s) x "
              f"{len(systems)} backend(s), {mode}")
    if report.clean:
        return (table + "\nALL RUNS TERMINATED, NO ISOLATION VIOLATIONS"
                "\n(version-cap squeeze + timestamp overflow + stall "
                "storms + abort bursts + gc pauses)")
    lines = [table, f"{len(report.violations)} VIOLATION(S):"]
    for system, index, violation in report.violations[:20]:
        lines.append(f"  schedule {index} [{system}] "
                     f"{violation['rule']}: {violation['detail']}")
    if len(report.violations) > 20:
        lines.append(f"  ... and {len(report.violations) - 20} more")
    if report.repro_path:
        lines.append(f"minimal repro persisted: {report.repro_path}")
    return "\n".join(lines)


def _replay_trace(args, payload, replay_systems) -> str:
    """Re-run a repro with span telemetry and emit its Chrome trace."""
    from repro.common.errors import SimulationError
    from repro.obs import SpanRecorder, chrome_trace, write_chrome_trace
    from repro.oracle.fuzz import run_schedule
    runs = []
    name = payload["schedule"].get("name", "repro")
    for system in replay_systems:
        recorder = SpanRecorder()
        try:
            run_schedule(payload["schedule"], system,
                         seed=payload.get("seed", args.seed),
                         broken=payload.get("broken") or args.broken,
                         tracer=recorder)
        except SimulationError:
            pass  # livelocked runs still leave their partial spans
        runs.append((f"{name} [{system}]", recorder.spans))
    target = write_chrome_trace(args.trace_out, chrome_trace(runs))
    return f"Chrome trace written: {target}"


def _trace_results(args, profiling: bool = False):
    """Run the telemetry specs for --experiment and return (specs, results)."""
    system = args.backend if args.backend != "all" else "SI-TM"
    specs = experiments.trace_specs(
        args.experiment, system=system, threads=args.threads,
        seed=args.seed or 1, profile=args.profile,
        workloads=args.workloads, profiling=profiling)
    return specs, args.executor.run(specs)


def _trace(args) -> str:
    from repro.obs import Span, chrome_trace, write_chrome_trace
    specs, results = _trace_results(args)
    runs = [(str(spec),
             [Span.from_dict(row) for row in results[spec].spans or []])
            for spec in specs]
    trace = chrome_trace(runs)
    target = write_chrome_trace(args.out or "trace.json", trace)
    # --out names the trace file itself, not a text report copy
    args.out = None
    slices = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
    lines = [f"Chrome trace written: {target}",
             f"  runs (processes): {len(runs)}",
             f"  transaction slices: {slices}",
             "  open in https://ui.perfetto.dev or chrome://tracing"]
    for name, spans in runs:
        commits = sum(1 for s in spans if s.outcome == "commit")
        aborts = sum(1 for s in spans if s.outcome == "abort")
        lines.append(f"  {name}: {len(spans)} spans "
                     f"({commits} commit / {aborts} abort)")
    return "\n".join(lines)


def _metrics(args) -> str:
    from repro.obs import (Span, abort_attribution, metrics_table,
                           version_occupancy)
    if args.format == "prom":
        return _metrics_prom(args)
    specs, results = _trace_results(args)
    sections = []
    for spec in specs:
        result = results[spec]
        spans = [Span.from_dict(row) for row in result.spans or []]
        sections.append("\n".join([
            f"=== {spec} ===",
            abort_attribution(spans),
            "",
            version_occupancy(result.metrics or {}),
            "",
            metrics_table(result.metrics or {}),
        ]))
    return "\n\n".join(sections)


def _metrics_prom(args) -> str:
    """``sitm-harness metrics --format prom``: text exposition.

    A Prometheus exposition is one flat sample namespace, so it must
    come from exactly one run — ``--experiment <workload>`` (a figure
    name would emit duplicate metric families).
    """
    from repro.obs import prometheus_exposition
    specs, results = _trace_results(args)
    if len(specs) != 1:
        raise ConfigError(
            "--format prom needs exactly one run; pass --experiment "
            "<workload> (a figure name expands to "
            f"{len(specs)} workloads)")
    result = results[specs[0]]
    if getattr(result, "failed", False):
        raise ConfigError(f"telemetry run failed: {result.message}")
    # exposition only: no table wrapper, scrape-ready on stdout
    return prometheus_exposition(result.metrics or {}).rstrip("\n")


def _blame(args) -> str:
    """``sitm-harness blame``: killer→victim abort attribution.

    Runs the same telemetry specs as ``trace``/``metrics``, builds the
    conflict-provenance report for each, and renders the wasted-work
    Pareto ledger.  ``--dot``/``--json`` export the merged
    killer→victim graph for Graphviz / machine consumption.
    """
    import json as json_module
    from repro.obs import (Span, blame_table, build_provenance,
                           merge_provenance)
    specs, results = _trace_results(args)
    sections = []
    reports = []
    for spec in specs:
        spans = [Span.from_dict(row) for row in results[spec].spans or []]
        report = build_provenance(spans)
        reports.append(report)
        sections.append(f"=== {spec} ===\n"
                        + blame_table(report, top=args.top))
    merged = merge_provenance(reports)
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(merged.to_dot())
        sections.append(f"conflict graph (DOT) written: {args.dot}")
    if args.json:
        document = {"runs": {str(spec): report.to_dict()
                             for spec, report in zip(specs, reports)},
                    "merged": merged.to_dict()}
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json_module.dumps(document, sort_keys=True,
                                           indent=2) + "\n")
        sections.append(f"provenance report (JSON) written: {args.json}")
        # --json names the provenance export, not a figure-row dump
        args.json = None
    return "\n\n".join(sections)


def _profile(args) -> str:
    from repro.obs import (Span, collapsed_stacks, conflict_heatmap,
                           phase_table)
    specs, results = _trace_results(args, profiling=True)
    sections = []
    stacks = []
    for spec in specs:
        result = results[spec]
        spans = [Span.from_dict(row) for row in result.spans or []]
        snapshot = result.phases or {}
        sections.append("\n".join([
            f"=== {spec} ===",
            phase_table(snapshot),
            "",
            conflict_heatmap(spans, snapshot),
        ]))
        if args.stacks:
            stacks.append(collapsed_stacks(snapshot, root=str(spec)))
    report = "\n\n".join(sections)
    if args.stacks:
        # each block already ends with a newline (one line per stack)
        with open(args.stacks, "w", encoding="utf-8") as handle:
            handle.write("".join(stacks))
        report += (f"\n\ncollapsed stacks written: {args.stacks} "
                   f"(render with flamegraph.pl or speedscope)")
    return report


def _watch(args) -> str:
    """``sitm-harness watch``: run a telemetry grid under live view.

    Builds the watch specs (telemetry on, so every cell streams window
    aggregates, alerts and lifecycle events), wires a
    :class:`~repro.obs.monitor.CampaignMonitor` — plus an optional
    ``--series-out`` JSONL sink — into the executor, and runs.  The
    live view goes to stdout while the grid executes (full-screen when
    interactive, status lines under ``--headless``/redirection); the
    returned report is the final rendered view.
    """
    from repro.obs import CampaignMonitor, TimeSeriesWriter
    system = args.backend if args.backend != "all" else "SI-TM"
    specs = experiments.watch_specs(
        args.experiment, system=system, threads=args.threads,
        seeds=args.seeds, profile=args.profile,
        workloads=args.workloads)
    if args.crash_cell:
        import dataclasses
        from repro.faults import FaultPlan
        # one deliberately doomed cell (SIGKILL at its 5th begin) on a
        # reserved seed: demonstrates quarantine + the flight recorder;
        # the invocation exits non-zero like any grid with failures
        specs = specs + [dataclasses.replace(
            specs[0], seed=97, faults=FaultPlan(crash_at_begin=5))]
        if args.executor.jobs == 1:
            # the executor already routes crash faults to a sacrificial
            # worker; two workers keep the healthy cells flowing while
            # the doomed one dies
            args.executor.jobs = 2
    headless = args.headless or not sys.stdout.isatty()
    monitor = CampaignMonitor(
        total=len(specs), stream=sys.stdout,
        style="line" if headless else "screen",
        interval=1.0 if headless else 0.25)
    writer = (TimeSeriesWriter(args.series_out)
              if args.series_out else None)

    def sink(event: dict) -> None:
        if writer is not None:
            writer(event)
        monitor.handle(event)

    args.executor.monitor = sink
    try:
        args.executor.run(specs)
    finally:
        if writer is not None:
            writer.close()
        monitor.stream = None  # the final view goes via the report path
    lines = [monitor.render()]
    if writer is not None:
        lines.append(f"time series written: {args.series_out} "
                     f"({writer.rows_written} rows)")
    return "\n".join(lines)


def _bench(args) -> str:
    from repro.perf import (SUITES, BenchSuite, compare_artifacts,
                            load_artifact, run_bench, save_artifact)
    if args.compare:
        base = load_artifact(args.compare[0])
        current = load_artifact(args.compare[1])
        report = compare_artifacts(base, current)
        args._bench_failed = not report.passed
        return report.render()
    suite = SUITES[args.suite]
    if args.backend != "all":
        cells = tuple(c for c in suite.cells if c[1] == args.backend)
        if not cells:
            raise ConfigError(f"suite {suite.name!r} has no "
                              f"{args.backend} cells; systems: "
                              f"{sorted({c[1] for c in suite.cells})}")
        suite = BenchSuite(suite.name, cells, suite.seeds, suite.profile,
                           suite.config)
    artifact = run_bench(suite, args.label, executor=args.executor)
    path = save_artifact(artifact, args.bench_out)
    lines = [f"bench artifact written: {path}",
             f"  suite {suite.name}: {len(suite.cells)} cells x "
             f"{suite.seeds} seeds, profile {suite.profile}"]
    det = artifact["deterministic"]
    for key in sorted(det):
        cell = det[key]
        lines.append(f"  {key}: {cell['throughput']:.1f} commits/Mcycle "
                     f"(sd {100 * cell['throughput_rel_stddev']:.1f}%), "
                     f"abort rate {cell['abort_rate']:.3f}")
    advisory = artifact["advisory"]
    lines.append(f"  advisory: wall clock {advisory['wall_clock_s']:.2f}s, "
                 f"cache hit rate {100 * advisory['cache_hit_rate']:.0f}%")
    lines.append(f"  compare against a baseline: sitm-harness bench "
                 f"--compare <baseline.json> {path}")
    return "\n".join(lines)


def _cache(args) -> str:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        return f"cache cleared: {removed} entries removed from {cache.root}"
    stats = cache.stats()
    return format_table(
        ["property", "value"],
        [["location", stats["root"]],
         ["entries", stats["entries"]],
         ["size (KB)", stats["bytes"] // 1024],
         ["current code", stats["current_code"]],
         ["stale (old code)", stats["stale"]]],
        title="Experiment result cache")


#: case-insensitive backend spellings -> canonical system names, so the
#: CLI accepts `--backend sitm` as well as the registry's `SI-TM`
_BACKEND_ALIASES = {
    "2pl": "2PL", "sontm": "SONTM", "sitm": "SI-TM", "si-tm": "SI-TM",
    "ssi": "SSI-TM", "ssitm": "SSI-TM", "ssi-tm": "SSI-TM",
    "logtm": "LogTM", "hybrid": "HybridHTM", "hybridhtm": "HybridHTM",
    "hybrid-htm": "HybridHTM", "all": "all",
}


def _backend(name: str) -> str:
    """argparse type hook normalising backend aliases (sitm -> SI-TM)."""
    canon = _BACKEND_ALIASES.get(name.lower().replace("_", "-"))
    if canon is None:
        raise argparse.ArgumentTypeError(
            f"unknown backend {name!r}; known: "
            + " ".join(sorted(set(_BACKEND_ALIASES.values()))))
    return canon


def _system(name: str) -> str:
    """Like :func:`_backend` but for --systems lists: no 'all' wildcard."""
    canon = _backend(name)
    if canon == "all":
        raise argparse.ArgumentTypeError(
            "--systems takes explicit system names; "
            "'all' is only meaningful for --backend")
    return canon


_COMMANDS = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "table1": _table1,
    "table2": _table2,
    "overheads": _overheads,
    "claims": _claims,
}


def build_parser() -> argparse.ArgumentParser:
    """The harness argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="sitm-harness",
        description="Regenerate the SI-TM paper's figures and tables.")
    parser.add_argument("command",
                        choices=list(_COMMANDS) + ["capacity", "trace",
                                                   "metrics", "profile",
                                                   "blame", "bench",
                                                   "cache", "fuzz",
                                                   "faults", "watch",
                                                   "all"])
    parser.add_argument("--profile", default="quick",
                        choices=("test", "quick", "full"))
    parser.add_argument("--threads", type=int, default=16,
                        help="thread count for fig1/trace/metrics")
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS,
                        help="independent seeds per cell (default "
                             f"{DEFAULT_SEEDS} for quick runs; the paper "
                             f"averages {PAPER_SEEDS})")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these workloads")
    parser.add_argument("--systems", nargs="*", default=None,
                        type=_system,
                        help="systems for fig7/fig8 (default: the paper's "
                             "three; add SSI-TM to measure the extension; "
                             "case-insensitive aliases like 'sitm' "
                             "accepted)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for grid experiments "
                             "(1 = serial, 0 = one per CPU)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECS",
                        help="per-spec wall-clock budget in pool mode "
                             "(--jobs > 1): a spec exceeding it has its "
                             "worker killed and is retried in isolation, "
                             "then quarantined as a FAILED cell "
                             "(default: no timeout)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute every run, overwriting the cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location (default "
                             "results/.cache, or $SITM_CACHE_DIR)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    parser.add_argument("--chart", action="store_true",
                        help="fig8: also draw ASCII speedup charts")
    parser.add_argument("--csv", default=None,
                        help="fig1/fig7/fig8/capacity: write rows to "
                             "this CSV file")
    parser.add_argument("--json", default=None,
                        help="fig1/fig7/fig8/capacity: write rows to "
                             "this JSON file; blame: write the "
                             "provenance report there instead")
    parser.add_argument("--clear", action="store_true",
                        help="cache: delete every entry")
    parser.add_argument("--list", action="store_true",
                        help="faults: enumerate injectable fault sites "
                             "instead of running the campaign")
    parser.add_argument("--no-escalation", action="store_true",
                        help="faults: run the campaign with golden-token "
                             "escalation disabled (demonstrates the "
                             "livelock the retry policy exists to break; "
                             "exits non-zero)")
    parser.add_argument("--faults", action="store_true",
                        help="fuzz: apply the pinned adversarial fault "
                             "plan + retry policy to every generated "
                             "schedule")
    parser.add_argument("--stats", action="store_true",
                        help="cache: print entry counts (the default)")
    parser.add_argument("--backend", default="all", type=_backend,
                        choices=("2PL", "SONTM", "SI-TM", "SSI-TM",
                                 "LogTM", "HybridHTM", "all"),
                        help="trace/metrics/profile: system to telemeter "
                             "(default SI-TM); fuzz: backend(s) to "
                             "cross-check; bench: restrict the suite to "
                             "one system's cells; case-insensitive "
                             "aliases like 'sitm' accepted")
    parser.add_argument("--format", default="text",
                        choices=("text", "prom"),
                        help="metrics: report format — text tables or "
                             "Prometheus exposition (prom needs "
                             "--experiment <workload>)")
    parser.add_argument("--progress", action="store_true",
                        help="grid commands: print periodic one-line "
                             "status (done/running/cached/failed, ETA) "
                             "to stderr — the non-TTY/CI companion of "
                             "'watch'")
    parser.add_argument("--headless", action="store_true",
                        help="watch: line-mode status output instead of "
                             "the full-screen view (implied when stdout "
                             "is not a TTY)")
    parser.add_argument("--series-out", default=None,
                        help="watch: persist the streamed window/alert "
                             "events as a time-series JSONL artifact "
                             "(docs/timeseries-schema.md)")
    parser.add_argument("--crash-cell", action="store_true",
                        help="watch: append one deliberately crashing "
                             "cell to demonstrate quarantine + the "
                             "flight recorder (exits non-zero)")
    parser.add_argument("--stacks", default=None,
                        help="profile: write collapsed flamegraph stacks "
                             "to this file")
    parser.add_argument("--top", type=int, default=None,
                        help="blame: show only the N worst "
                             "(killer, victim) pairs in the Pareto table")
    parser.add_argument("--dot", default=None,
                        help="blame: write the merged killer→victim "
                             "conflict graph as Graphviz DOT to this file")
    parser.add_argument("--suite", default="quick",
                        choices=("smoke", "quick", "flat_loop",
                                 "capacity", "full"),
                        help="bench: pinned suite to run")
    parser.add_argument("--label", default="current",
                        help="bench: artifact label; written as "
                             "BENCH_<label>.json")
    parser.add_argument("--bench-out", default=None,
                        help="bench: artifact output directory (default "
                             "results/bench, or $SITM_BENCH_DIR)")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("BASE", "CURRENT"),
                        help="bench: diff two artifacts instead of "
                             "running; exits non-zero on deterministic "
                             "regressions")
    parser.add_argument("--experiment", default="figure7",
                        help="trace/metrics: figure1/figure7/figure8 "
                             "(that figure's workload set) or one "
                             "workload name")
    parser.add_argument("--schedules", type=int, default=50,
                        help="fuzz: number of randomized schedules")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz: root seed (schedules are a pure "
                             "function of it)")
    parser.add_argument("--fuzz-threads", type=int, default=3,
                        help="fuzz: simulated threads per schedule")
    parser.add_argument("--fuzz-txns", type=int, default=2,
                        help="fuzz: transactions per thread")
    parser.add_argument("--fuzz-cells", type=int, default=4,
                        help="fuzz: shared cells (one line each)")
    parser.add_argument("--fuzz-ops", type=int, default=3,
                        help="fuzz: max operations per transaction")
    parser.add_argument("--fuzz-out", default=None,
                        help="fuzz: repro output directory (default "
                             "results/fuzz, or $SITM_FUZZ_DIR)")
    parser.add_argument("--broken", default=None,
                        choices=("no-ww", "no-lock"),
                        help="fuzz: deliberately break a backend "
                             "(oracle self-test hook): no-ww disables "
                             "SI-TM's write-write validation, no-lock "
                             "un-serializes HybridHTM's fallback")
    parser.add_argument("--replay", default=None,
                        help="fuzz: re-check a persisted repro or "
                             "schedule JSON instead of generating")
    parser.add_argument("--trace-out", default=None,
                        help="fuzz --replay: also re-run the repro with "
                             "span telemetry and write a Chrome trace "
                             "to this file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one per CPU)")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    args.executor = Executor(jobs=args.jobs, cache=not args.no_cache,
                             refresh=args.refresh,
                             cache_dir=args.cache_dir,
                             timeout=args.timeout)
    if args.progress and args.command != "watch":
        # CI-friendly heartbeat: one-line campaign status on stderr,
        # fed by the same event stream the watch view consumes
        from repro.obs import CampaignMonitor
        args.executor.monitor = CampaignMonitor(
            stream=sys.stderr, style="line", prefix="[progress]")
    try:
        if args.command == "all":
            report = "\n\n".join(fn(args) for fn in _COMMANDS.values())
        elif args.command == "cache":
            report = _cache(args)
        elif args.command == "capacity":
            report = _capacity(args)
        elif args.command == "fuzz":
            report = _fuzz(args)
        elif args.command == "faults":
            report = _faults(args)
        elif args.command == "watch":
            report = _watch(args)
        elif args.command == "trace":
            report = _trace(args)
        elif args.command == "metrics":
            report = _metrics(args)
        elif args.command == "profile":
            report = _profile(args)
        elif args.command == "blame":
            report = _blame(args)
        elif args.command == "bench":
            report = _bench(args)
        else:
            report = _COMMANDS[args.command](args)
    except ConfigError as exc:
        # unknown experiment/backend/workload names and malformed bench
        # artifacts are user errors: one line on stderr, no traceback
        print(f"sitm-harness {args.command}: error: {exc}",
              file=sys.stderr)
        return 2
    counters = args.executor.counters()
    if counters["runs"]:
        # stdout only: archived --out reports must not embed run-specific
        # cache counters
        print(report + (
            "\n\n[executor] jobs={jobs} runs={runs} "
            "cache-hits={cache_hits} cache-misses={cache_misses} "
            "hit-rate={pct:.0f}%".format(
                pct=100.0 * counters["hit_rate"], **counters)))
    else:
        print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    failures = args.executor.failures
    if failures:
        # quarantined specs: the grid completed around them, but the
        # invocation must not pretend everything ran
        print(f"\n[failures] {len(failures)} spec(s) quarantined:")
        for failure in failures:
            print(f"  {failure.spec} [{failure.kind}] after "
                  f"{failure.attempts} attempt(s): {failure.message}")
            if failure.flight:
                print(f"    flight recorder: {failure.flight}")
        return 1
    if getattr(args, "_fuzz_failed", False):
        return 1
    return 1 if getattr(args, "_bench_failed", False) else 0


if __name__ == "__main__":
    sys.exit(main())
