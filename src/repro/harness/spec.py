"""Experiment specifications: the canonical unit of harness work.

Every figure and table of the paper is a grid of independent
simulations, and :func:`repro.harness.runner.run_once` is a pure
function of ``(workload, system, threads, seed, profile, config)``.
:class:`ExperimentSpec` reifies that tuple as a canonical, hashable,
JSON-round-trippable record so the execution layer
(:mod:`repro.harness.executor`) can fan grids out across processes,
memoize completed runs in a content-addressed cache, and keep result
ordering deterministic — the spec *is* the cache key.

Canonical form: ``to_dict()`` always emits the same keys in the same
shape (the config as its full nested dict, or ``None`` for the
default), so ``spec_hash()`` is stable across processes, Python
versions, and repository checkouts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.common.config import SimConfig
from repro.faults import FaultPlan
from repro.harness.runner import RunResult, run_once


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation cell: everything :func:`run_once` depends on.

    Frozen and hashable so specs serve directly as dict keys in result
    maps; ``config=None`` means the default :class:`SimConfig` and is
    kept as ``None`` (not expanded) so the common case hashes cheaply
    and reads cleanly in cache metadata.
    """

    workload: str
    system: str
    threads: int
    seed: int
    profile: str = "quick"
    config: Optional[SimConfig] = None
    #: carry a metrics registry + span recorder through the run; the
    #: result then includes the metrics snapshot and span dicts.  Part
    #: of the cache key (a telemetry result holds strictly more data),
    #: but omitted from the canonical dict when False so every
    #: pre-existing spec hash is unchanged.
    telemetry: bool = False
    #: carry a cycle profiler through the run; the result then includes
    #: the conservation-checked phase snapshot.  Same cache-key rule as
    #: ``telemetry``: omitted from the canonical dict when False.
    profiling: bool = False
    #: fault-injection plan applied on top of the config
    #: (:class:`repro.faults.FaultPlan`); part of the cache key, but
    #: omitted from the canonical dict when ``None`` — matching the
    #: ``telemetry``/``profiling`` convention — so every pre-existing
    #: spec hash and ``BENCH_baseline.json`` comparison survives.
    faults: Optional[FaultPlan] = None

    #: spec-kind discriminator for the executor's worker payloads; the
    #: canonical dict deliberately omits it so existing cache keys and
    #: entries stay valid
    kind = "experiment"

    @staticmethod
    def result_from_dict(data: dict) -> RunResult:
        """Deserialize this spec kind's result (executor/cache hook)."""
        return RunResult.from_dict(data)

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set, nested config)."""
        data = {
            "workload": self.workload,
            "system": self.system,
            "threads": self.threads,
            "seed": self.seed,
            "profile": self.profile,
            "config": self.config.to_dict() if self.config else None,
        }
        if self.telemetry:
            data["telemetry"] = True
        if self.profiling:
            data["profiling"] = True
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        config = data.get("config")
        return cls(
            workload=data["workload"],
            system=data["system"],
            threads=data["threads"],
            seed=data["seed"],
            profile=data.get("profile", "quick"),
            config=SimConfig.from_dict(config) if config else None,
            telemetry=data.get("telemetry", False),
            profiling=data.get("profiling", False),
            faults=(FaultPlan.from_dict(data["faults"])
                    if data.get("faults") else None))

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for hashing."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def spec_hash(self) -> str:
        """Content hash of the spec itself (workload, knobs, config)."""
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:24]

    def run(self) -> RunResult:
        """Execute this spec in the current process.

        Telemetry specs run under a live-publishing context (streamed
        window/alert events carry this spec's identity) and with a
        flight recorder armed at ``flight-<spec_hash>.json`` — the
        artifact a quarantined cell's :class:`~repro.harness.executor.
        RunFailure` points at when the run dies.
        """
        config = self.config
        if self.faults is not None:
            config = (config or SimConfig()).replace(faults=self.faults)
        flight = None
        previous = _UNSET = object()
        if self.telemetry:
            from repro.obs import flight_path
            from repro.obs.live import set_context
            flight = flight_path(self.spec_hash())
            previous = set_context(str(self))
        try:
            return run_once(self.workload, self.system, self.threads,
                            self.seed, self.profile, config,
                            telemetry=self.telemetry,
                            profiling=self.profiling,
                            flight_path=flight)
        finally:
            if previous is not _UNSET:
                from repro.obs.live import set_context
                set_context(previous)

    def __str__(self) -> str:
        base = (f"{self.workload}/{self.system}/t{self.threads}"
                f"/s{self.seed}/{self.profile}")
        if self.telemetry:
            base += "/telemetry"
        if self.profiling:
            base += "/profiling"
        if self.faults is not None:
            base += "/faults"
        return base


def seed_specs(workload: str, system: str, threads: int,
               profile: str = "quick", seeds: int = 3, seed0: int = 1,
               config: Optional[SimConfig] = None,
               telemetry: bool = False) -> List[ExperimentSpec]:
    """Specs for one aggregate cell: ``seeds`` consecutive seeds."""
    return [ExperimentSpec(workload, system, threads, seed0 + i,
                           profile, config, telemetry=telemetry)
            for i in range(seeds)]


def grid(workloads: Sequence[str], systems: Sequence[str],
         thread_counts: Iterable[int], profile: str = "quick",
         seeds: int = 3, seed0: int = 1,
         config: Optional[SimConfig] = None) -> List[ExperimentSpec]:
    """The full cross-product grid, in deterministic row-major order.

    Order is workloads x thread_counts x systems x seeds, matching the
    iteration order of the paper's figure drivers so results assemble
    without re-sorting.
    """
    return [spec
            for workload in workloads
            for threads in thread_counts
            for system in systems
            for spec in seed_specs(workload, system, threads, profile,
                                   seeds, seed0, config)]
