"""Parallel, memoizing execution layer for experiment grids.

The figure drivers declare :class:`~repro.harness.spec.ExperimentSpec`
grids; this module executes them:

* **Fan-out** — specs run across a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or
  inline (``jobs == 1``).  Specs and results cross the process boundary
  as JSON dicts, exercising the same serialization the cache uses, and
  the result map is assembled in submission order, so output is
  byte-identical whichever path ran — same seeds, same numbers, serial
  or parallel.
* **Memoization** — completed :class:`~repro.harness.runner.RunResult`
  records live in a content-addressed on-disk cache
  (``results/.cache/<key>.json``).  The key hashes the spec (including
  the config fingerprint) *and* a fingerprint of every ``repro/*.py``
  source file, so editing the simulator, a workload, or a config knob
  silently invalidates old entries.  ``cache=False`` disables the cache
  and ``refresh=True`` recomputes but re-stores (the CLI's
  ``--no-cache`` / ``--refresh`` escape hatches).

The executor keeps hit/miss/executed counters so callers can verify a
re-run was actually served from cache.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import pathlib
from typing import Dict, List, Optional, Sequence

import repro
from repro.harness.runner import RunResult
from repro.harness.spec import ExperimentSpec

#: default cache location, relative to the repository root / CWD
DEFAULT_CACHE_DIR = pathlib.Path("results") / ".cache"
#: environment override for the cache location
CACHE_DIR_ENV = "SITM_CACHE_DIR"

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``.py`` source file in the ``repro`` package.

    Part of the cache key: any edit to the simulator, TM protocols,
    workloads, or harness invalidates all cached results, because a
    cached number is only trustworthy if the code that produced it is
    the code that would produce it now.  Computed once per process.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        package_root = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()[:16]
    return _code_fingerprint_cache


def _run_spec_payload(payload: dict) -> dict:
    """Worker entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-typed so the pool never pickles
    harness objects — results take the exact JSON path the cache uses.
    Dispatches on the payload's ``kind`` discriminator; experiment
    payloads carry no ``kind`` key (their canonical form predates it).
    """
    if payload.get("kind") == "fuzz":
        from repro.oracle.fuzz import FuzzSpec
        return FuzzSpec.from_dict(payload).run().to_dict()
    return ExperimentSpec.from_dict(payload).run().to_dict()


class ResultCache:
    """Content-addressed on-disk store of completed run results.

    One JSON file per ``(spec, code fingerprint)`` pair under ``root``;
    the filename is the combined hash, the payload carries the spec and
    fingerprint back for inspection and for paranoid load-time
    validation.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        env = os.environ.get(CACHE_DIR_ENV)
        self.root = pathlib.Path(root or env or DEFAULT_CACHE_DIR)

    def key(self, spec: ExperimentSpec) -> str:
        """Cache key: spec hash x current code fingerprint."""
        digest = hashlib.sha256()
        digest.update(spec.canonical_json().encode("utf-8"))
        digest.update(b"\0")
        digest.update(code_fingerprint().encode("utf-8"))
        return digest.hexdigest()[:24]

    def path(self, spec: ExperimentSpec) -> pathlib.Path:
        """Cache file backing ``spec`` under the current code."""
        return self.root / f"{self.key(spec)}.json"

    def load(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Cached result for ``spec``, or ``None`` (missing/corrupt)."""
        path = self.path(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("fingerprint") != code_fingerprint():
            return None
        try:
            return spec.result_from_dict(payload["result"])
        except (KeyError, TypeError):
            return None

    def store(self, spec: ExperimentSpec, result: RunResult) -> None:
        """Persist ``result`` atomically (rename over partial writes)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        payload = {
            "spec": spec.to_dict(),
            "fingerprint": code_fingerprint(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> dict:
        """Entry count, total bytes, and how many match current code."""
        entries = list(self.root.glob("*.json")) if self.root.is_dir() \
            else []
        current = 0
        for path in entries:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if payload.get("fingerprint") == code_fingerprint():
                current += 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "current_code": current,
            "stale": len(entries) - current,
        }


class Executor:
    """Runs spec grids with parallelism and memoization.

    ``jobs=1`` executes inline; ``jobs=N`` fans out over a process
    pool; ``jobs=0`` means one job per CPU.  Counters (``hits``,
    ``misses``, ``executed``) accumulate across :meth:`run` calls so a
    CLI invocation can report its overall cache behaviour.
    """

    def __init__(self, jobs: int = 1, cache: bool = True,
                 refresh: bool = False,
                 cache_dir: Optional[os.PathLike] = None):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.use_cache = cache
        self.refresh = refresh
        self.cache = ResultCache(cache_dir)
        self.hits = 0
        self.misses = 0
        self.executed = 0

    def run(self, specs: Sequence[ExperimentSpec]
            ) -> Dict[ExperimentSpec, RunResult]:
        """Execute ``specs``; returns a result map in input order.

        Duplicate specs are computed once.  Cache hits are served
        without touching the pool; misses are executed (in parallel
        when ``jobs > 1``) and stored back unless caching is off.
        """
        ordered = list(dict.fromkeys(specs))
        results: Dict[ExperimentSpec, RunResult] = {}
        pending: List[ExperimentSpec] = []
        for spec in ordered:
            cached = None
            if self.use_cache and not self.refresh:
                cached = self.cache.load(spec)
            if cached is not None:
                self.hits += 1
                results[spec] = cached
            else:
                self.misses += 1
                pending.append(spec)
        for spec, result in zip(pending, self._execute(pending)):
            self.executed += 1
            if self.use_cache:
                self.cache.store(spec, result)
            results[spec] = result
        return {spec: results[spec] for spec in ordered}

    def _execute(self, pending: Sequence[ExperimentSpec]
                 ) -> List[RunResult]:
        if not pending:
            return []
        if self.jobs == 1 or len(pending) == 1:
            return [spec.run() for spec in pending]
        workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(workers) as pool:
            futures = [pool.submit(_run_spec_payload, spec.to_dict())
                       for spec in pending]
            return [spec.result_from_dict(f.result())
                    for spec, f in zip(pending, futures)]

    def counters(self) -> dict:
        """Snapshot of the executor's bookkeeping for reports."""
        total = self.hits + self.misses
        return {
            "jobs": self.jobs,
            "runs": total,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "executed": self.executed,
            "hit_rate": self.hits / total if total else 0.0,
        }


def serial_executor() -> Executor:
    """The library default: inline execution, no cache side effects."""
    return Executor(jobs=1, cache=False)
