"""Parallel, memoizing execution layer for experiment grids.

The figure drivers declare :class:`~repro.harness.spec.ExperimentSpec`
grids; this module executes them:

* **Fan-out** — specs run across a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or
  inline (``jobs == 1``).  Specs and results cross the process boundary
  as JSON dicts, exercising the same serialization the cache uses, and
  the result map is assembled in submission order, so output is
  byte-identical whichever path ran — same seeds, same numbers, serial
  or parallel.
* **Memoization** — completed :class:`~repro.harness.runner.RunResult`
  records live in a content-addressed on-disk cache
  (``results/.cache/<key>.json``).  The key hashes the spec (including
  the config fingerprint) *and* a fingerprint of every ``repro/*.py``
  source file, so editing the simulator, a workload, or a config knob
  silently invalidates old entries.  ``cache=False`` disables the cache
  and ``refresh=True`` recomputes but re-stores (the CLI's
  ``--no-cache`` / ``--refresh`` escape hatches).

The executor keeps hit/miss/executed counters so callers can verify a
re-run was actually served from cache.

**Crash tolerance** — a grid must never die of one bad cell.  Worker
death (:class:`~concurrent.futures.process.BrokenProcessPool`), hung
specs (``timeout=SECS``, default off), and in-run exceptions are
caught per spec, retried up to :data:`Executor.MAX_ATTEMPTS` times,
and then quarantined as structured :class:`RunFailure` records in the
result map — callers render explicit FAILED cells and exit non-zero
instead of surfacing a mid-grid traceback.  After a pool death the
executor switches to *isolate mode* (one spec per fresh single-worker
pool) so the next crash is attributed to exactly the spec that caused
it.  :class:`~repro.common.errors.ConfigError` still propagates: a
misconfigured spec is the caller's bug, not a fault to survive.
Failures are never cached.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pathlib
import queue as queue_module
import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import repro
from repro.common.errors import ConfigError
from repro.harness.runner import RunResult
from repro.harness.spec import ExperimentSpec

#: default cache location, relative to the repository root / CWD
DEFAULT_CACHE_DIR = pathlib.Path("results") / ".cache"
#: environment override for the cache location
CACHE_DIR_ENV = "SITM_CACHE_DIR"

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``.py`` source file in the ``repro`` package.

    Part of the cache key: any edit to the simulator, TM protocols,
    workloads, or harness invalidates all cached results, because a
    cached number is only trustworthy if the code that produced it is
    the code that would produce it now.  Computed once per process.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        package_root = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()[:16]
    return _code_fingerprint_cache


def _result_summary(result: object) -> dict:
    """The progress fields a spec-done event carries (best effort)."""
    summary = {}
    for key in ("commits", "aborts", "abort_rate", "makespan_cycles"):
        value = getattr(result, key, None)
        if value is not None:
            summary[key] = value
    return summary


def _run_spec_payload(payload: dict) -> dict:
    """Worker entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-typed so the pool never pickles
    harness objects — results take the exact JSON path the cache uses.
    Dispatches on the payload's ``kind`` discriminator; experiment
    payloads carry no ``kind`` key (their canonical form predates it).

    Publishes ``spec-start``/``spec-done`` live events through
    :mod:`repro.obs.live`; with no monitor attached the worker has no
    publisher installed and both are no-ops.
    """
    from repro.obs import live
    if payload.get("kind") == "fuzz":
        from repro.oracle.fuzz import FuzzSpec
        spec = FuzzSpec.from_dict(payload)
    else:
        spec = ExperimentSpec.from_dict(payload)
    live.publish({"event": "spec-start", "spec": str(spec)})
    result = spec.run()
    live.publish(dict(_result_summary(result),
                      event="spec-done", spec=str(spec)))
    return result.to_dict()


def _monitor_init(event_queue) -> None:
    """Pool initializer: route a worker's live events to the parent.

    Installs the relay queue's ``put`` as the worker-process publisher
    so every :func:`repro.obs.live.publish` — window closes, alerts,
    spec lifecycle — streams back to the parent's campaign monitor.
    """
    from repro.obs import live
    live.set_publisher(event_queue.put)


class _MonitorRelay:
    """Parent-side event pipe: manager queue plus a drain thread.

    Workers ``put`` live events; the drain thread forwards them to the
    executor's monitor as they arrive, so the watch view updates while
    cells are still running.  ``close`` drains what is left and shuts
    the manager down; a dead worker mid-``put`` at worst loses its own
    last event, never the queue.
    """

    #: drain poll period (also bounds shutdown latency), seconds
    POLL_S = 0.05

    def __init__(self, emit: Callable[[dict], None]):
        import multiprocessing
        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._drain, args=(emit,),
            name="sitm-monitor-relay", daemon=True)
        self._thread.start()

    def _drain(self, emit: Callable[[dict], None]) -> None:
        while True:
            try:
                event = self.queue.get(timeout=self.POLL_S)
            except queue_module.Empty:
                if self._stop.is_set():
                    return
                continue
            except (EOFError, OSError):
                return  # manager torn down under us
            try:
                emit(event)
            except Exception:  # noqa: BLE001 - monitoring is best-effort
                pass

    def pool_kwargs(self) -> dict:
        """Constructor kwargs wiring a pool's workers to this relay."""
        return {"initializer": _monitor_init,
                "initargs": (self.queue,)}

    def close(self) -> None:
        """Stop the drain thread (after one final sweep) and clean up."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self._manager.shutdown()
        except Exception:  # noqa: BLE001 - already-dead manager
            pass


class ResultCache:
    """Content-addressed on-disk store of completed run results.

    One JSON file per ``(spec, code fingerprint)`` pair under ``root``;
    the filename is the combined hash, the payload carries the spec and
    fingerprint back for inspection and for paranoid load-time
    validation.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        env = os.environ.get(CACHE_DIR_ENV)
        self.root = pathlib.Path(root or env or DEFAULT_CACHE_DIR)

    def key(self, spec: ExperimentSpec) -> str:
        """Cache key: spec hash x current code fingerprint."""
        digest = hashlib.sha256()
        digest.update(spec.canonical_json().encode("utf-8"))
        digest.update(b"\0")
        digest.update(code_fingerprint().encode("utf-8"))
        return digest.hexdigest()[:24]

    def path(self, spec: ExperimentSpec) -> pathlib.Path:
        """Cache file backing ``spec`` under the current code."""
        return self.root / f"{self.key(spec)}.json"

    def load(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Cached result for ``spec``, or ``None`` (missing/corrupt)."""
        path = self.path(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("fingerprint") != code_fingerprint():
            return None
        try:
            return spec.result_from_dict(payload["result"])
        except (KeyError, TypeError):
            return None

    def store(self, spec: ExperimentSpec, result: RunResult) -> None:
        """Persist ``result`` atomically (rename over partial writes)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        payload = {
            "spec": spec.to_dict(),
            "fingerprint": code_fingerprint(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> dict:
        """Entry count, total bytes, and how many match current code."""
        entries = list(self.root.glob("*.json")) if self.root.is_dir() \
            else []
        current = 0
        for path in entries:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if payload.get("fingerprint") == code_fingerprint():
                current += 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "current_code": current,
            "stale": len(entries) - current,
        }


@dataclass
class RunFailure:
    """Structured record of a spec the executor could not complete.

    Takes the place of a :class:`~repro.harness.runner.RunResult` in
    the result map, so grid drivers see every cell accounted for —
    succeeded or failed — and render explicit FAILED markers instead
    of crashing mid-report.  ``kind`` is ``"crash"`` (worker process
    died), ``"timeout"`` (no result within the per-spec budget), or
    ``"error"`` (the run raised).
    """

    spec: str
    spec_hash: str
    kind: str
    message: str
    attempts: int
    #: path of the crash flight-recorder artifact this cell left
    #: behind (``flight-<spec_hash>.json``), or None when the spec ran
    #: without telemetry / died before its first persist
    flight: Optional[str] = None

    #: discriminator mirrored by callers via ``getattr(r, "failed",
    #: False)`` so plain RunResults need no counterpart attribute
    failed = True

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        return cls(**data)


#: result-map value type: a completed run or its quarantine record
SpecOutcome = Union[RunResult, RunFailure]


class Executor:
    """Runs spec grids with parallelism, memoization, and quarantine.

    ``jobs=1`` executes inline; ``jobs=N`` fans out over a process
    pool; ``jobs=0`` means one job per CPU.  Counters (``hits``,
    ``misses``, ``executed``) accumulate across :meth:`run` calls so a
    CLI invocation can report its overall cache behaviour.

    ``timeout`` (seconds, pool mode only) bounds how long the executor
    waits for each spec's result; a spec that exceeds it has its pool
    killed and is retried in isolation.  Specs failing
    :data:`MAX_ATTEMPTS` times are quarantined as :class:`RunFailure`
    records, collected in ``self.failures``.
    """

    #: attempts per spec before quarantine (1 initial + 1 retry)
    MAX_ATTEMPTS = 2

    def __init__(self, jobs: int = 1, cache: bool = True,
                 refresh: bool = False,
                 cache_dir: Optional[os.PathLike] = None,
                 timeout: Optional[float] = None,
                 monitor: Optional[Callable[[dict], None]] = None):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.use_cache = cache
        self.refresh = refresh
        self.cache = ResultCache(cache_dir)
        self.timeout = timeout
        self.hits = 0
        self.misses = 0
        self.executed = 0
        self.failures: List[RunFailure] = []
        #: live-event sink (:class:`repro.obs.monitor.CampaignMonitor`
        #: or any callable); None — the default — publishes nothing
        #: and adds nothing to the execution path
        self.monitor = monitor

    def run(self, specs: Sequence[ExperimentSpec]
            ) -> Dict[ExperimentSpec, SpecOutcome]:
        """Execute ``specs``; returns a result map in input order.

        Duplicate specs are computed once.  Cache hits are served
        without touching the pool; misses are executed (in parallel
        when ``jobs > 1``) and stored back unless caching is off.
        Quarantined specs map to :class:`RunFailure` values (never
        cached — a failure is not a result).
        """
        ordered = list(dict.fromkeys(specs))
        self._emit({"event": "grid-start", "total": len(ordered)})
        results: Dict[ExperimentSpec, SpecOutcome] = {}
        pending: List[ExperimentSpec] = []
        for spec in ordered:
            cached = None
            if self.use_cache and not self.refresh:
                cached = self.cache.load(spec)
            if cached is not None:
                self.hits += 1
                results[spec] = cached
                self._emit({"event": "spec-cached", "spec": str(spec)})
            else:
                self.misses += 1
                pending.append(spec)
        for spec, result in zip(pending, self._execute(pending)):
            self.executed += 1
            if isinstance(result, RunFailure):
                self.failures.append(result)
                self._emit({"event": "spec-failed", "spec": result.spec,
                            "kind": result.kind,
                            "message": result.message,
                            "flight": result.flight})
            elif self.use_cache:
                self.cache.store(spec, result)
            results[spec] = result
        self._emit({"event": "grid-end", "total": len(ordered),
                    "failed": len([r for r in results.values()
                                   if getattr(r, "failed", False)])})
        return {spec: results[spec] for spec in ordered}

    def _emit(self, event: dict) -> None:
        """Hand one event to the monitor (never lets it break the grid)."""
        if self.monitor is None:
            return
        try:
            self.monitor(event)
        except Exception:  # noqa: BLE001 - monitoring is best-effort
            pass

    def _flight_artifact(self, spec: ExperimentSpec) -> Optional[str]:
        """Path of the flight artifact ``spec`` left behind, if any."""
        from repro.obs.flight import flight_path
        path = flight_path(spec.spec_hash())
        return str(path) if path.exists() else None

    def _execute(self, pending: Sequence[ExperimentSpec]
                 ) -> List[SpecOutcome]:
        if not pending:
            return []
        # process-level faults (crash/hang) SIGKILL or wedge whatever
        # process runs them: those specs must go to a sacrificial pool
        # worker even when the batch would otherwise execute inline
        sacrificial = any(getattr(spec, "faults", None) is not None
                          and spec.faults.needs_worker()
                          for spec in pending)
        if not sacrificial and (self.jobs == 1 or len(pending) == 1):
            if self.monitor is None:
                return [self._run_inline(spec) for spec in pending]
            # inline cells publish straight into the monitor: install
            # it as this process's live-event sink for the duration
            from repro.obs import live
            previous = live.set_publisher(self._emit)
            try:
                return [self._run_inline(spec) for spec in pending]
            finally:
                live.set_publisher(previous)
        return self._run_pool(pending)

    def _run_inline(self, spec: ExperimentSpec) -> SpecOutcome:
        """Guarded in-process execution with bounded retry.

        Inline mode cannot preempt a hung or crashing run (there is no
        worker to kill), so ``timeout`` and crash faults only apply in
        pool mode; in-run exceptions are still quarantined here.
        """
        last: Optional[BaseException] = None
        self._emit({"event": "spec-start", "spec": str(spec)})
        for _ in range(self.MAX_ATTEMPTS):
            try:
                result = spec.run()
            except ConfigError:
                raise  # a misconfigured spec is the caller's bug
            except Exception as exc:  # noqa: BLE001 - quarantine layer
                last = exc
            else:
                self._emit(dict(_result_summary(result),
                                event="spec-done", spec=str(spec)))
                return result
        return RunFailure(
            spec=str(spec), spec_hash=spec.spec_hash(), kind="error",
            message=f"{type(last).__name__}: {last}",
            attempts=self.MAX_ATTEMPTS,
            flight=self._flight_artifact(spec))

    def _run_pool(self, pending: Sequence[ExperimentSpec]
                  ) -> List[SpecOutcome]:
        """Pool execution with crash/timeout recovery.

        Healthy path: one pool, all specs submitted, results collected
        in submission order (byte-identical to inline).  When a worker
        dies or a result times out, the spec whose future surfaced the
        fault is charged an attempt, every uncollected spec is
        requeued uncharged, and the executor drops to *isolate mode* —
        one spec per fresh single-worker pool — so subsequent faults
        are attributed to exactly the spec that caused them.  Each
        loop iteration charges at least one attempt, and attempts are
        capped per spec, so the loop always terminates.
        """
        outcomes: Dict[ExperimentSpec, SpecOutcome] = {}
        attempts: Dict[ExperimentSpec, int] = {s: 0 for s in pending}
        queue: List[ExperimentSpec] = list(pending)
        isolate = False
        relay = (_MonitorRelay(self._emit) if self.monitor is not None
                 else None)
        pool_kwargs = relay.pool_kwargs() if relay is not None else {}
        try:
            while queue:
                if isolate:
                    batch, queue = [queue[0]], queue[1:]
                else:
                    batch, queue = queue, []
                workers = 1 if isolate else min(self.jobs, len(batch))
                pool = concurrent.futures.ProcessPoolExecutor(
                    workers, **pool_kwargs)
                requeue: List[ExperimentSpec] = []
                dead = False
                try:
                    futures = [(s, pool.submit(_run_spec_payload,
                                               s.to_dict()))
                               for s in batch]
                    for spec, future in futures:
                        if dead:
                            requeue.append(spec)
                            continue
                        try:
                            payload = future.result(timeout=self.timeout)
                        except concurrent.futures.TimeoutError:
                            self._kill_workers(pool)
                            dead = isolate = True
                            attempts[spec] += 1
                            self._settle(spec, attempts[spec], "timeout",
                                         f"no result within "
                                         f"{self.timeout}s",
                                         outcomes, requeue)
                        except BrokenProcessPool:
                            dead = isolate = True
                            attempts[spec] += 1
                            self._settle(spec, attempts[spec], "crash",
                                         "worker process died mid-run",
                                         outcomes, requeue)
                        except ConfigError:
                            raise  # a misconfigured spec: caller's bug
                        except Exception as exc:  # noqa: BLE001
                            attempts[spec] += 1
                            self._settle(spec, attempts[spec], "error",
                                         f"{type(exc).__name__}: {exc}",
                                         outcomes, requeue)
                        else:
                            outcomes[spec] = spec.result_from_dict(payload)
                finally:
                    pool.shutdown(wait=not dead, cancel_futures=True)
                queue = requeue + queue
        finally:
            if relay is not None:
                relay.close()
        return [outcomes[spec] for spec in pending]

    def _settle(self, spec: ExperimentSpec, attempts: int, kind: str,
                message: str, outcomes: Dict[ExperimentSpec, SpecOutcome],
                requeue: List[ExperimentSpec]) -> None:
        """Requeue a failed spec, or quarantine it at the attempt cap."""
        if attempts >= self.MAX_ATTEMPTS:
            outcomes[spec] = RunFailure(
                spec=str(spec), spec_hash=spec.spec_hash(), kind=kind,
                message=message, attempts=attempts,
                flight=self._flight_artifact(spec))
        else:
            requeue.append(spec)

    @staticmethod
    def _kill_workers(pool: concurrent.futures.ProcessPoolExecutor
                      ) -> None:
        """Forcibly terminate a pool's workers (a hung worker would
        otherwise keep ``shutdown`` — and the grid — waiting forever)."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - already-dead worker
                pass

    def counters(self) -> dict:
        """Snapshot of the executor's bookkeeping for reports."""
        total = self.hits + self.misses
        return {
            "jobs": self.jobs,
            "runs": total,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "executed": self.executed,
            "failures": len(self.failures),
            "hit_rate": self.hits / total if total else 0.0,
        }


def serial_executor() -> Executor:
    """The library default: inline execution, no cache side effects."""
    return Executor(jobs=1, cache=False)
