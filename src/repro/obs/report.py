"""Text reports over telemetry: abort attribution and version occupancy.

The paper's analysis questions, answerable from one telemetered run:

* *why* did attempts abort (Figures 1/6/7's cause breakdown), per
  transaction label, with the cycles each cause burned —
  :func:`abort_attribution`;
* *how deep* did version lists grow under coalescing/GC (section 4.4,
  Table 2's occupancy concern) — :func:`version_occupancy`;
* everything else the registry collected — :func:`metrics_table`.

All three render with :func:`repro.harness.report.format_table` so the
output diffs cleanly alongside the figure tables.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.harness.report import format_table
from repro.obs.spans import Span

__all__ = ["abort_attribution", "version_occupancy", "metrics_table"]


def abort_attribution(spans: Sequence[Span]) -> str:
    """Per-label breakdown of attempts, aborts by cause, and cycles lost.

    ``wasted kcycles`` is the summed duration of aborted attempts — the
    re-execution cost that makes high abort rates expensive (the
    quantity Figure 8's makespans pay for).
    """
    labels = sorted({span.label for span in spans})
    rows: List[List[object]] = []
    for label in labels:
        mine = [s for s in spans if s.label == label]
        aborted = [s for s in mine if s.outcome == "abort"]
        causes = Counter(s.cause for s in aborted)
        wasted = sum(s.duration for s in aborted)
        rows.append([
            label,
            len(mine),
            sum(1 for s in mine if s.outcome == "commit"),
            len(aborted),
            max((s.retries for s in mine), default=0),
            f"{wasted / 1000.0:.1f}",
            " ".join(f"{cause}:{n}"
                     for cause, n in sorted(causes.items())) or "-",
        ])
    return format_table(
        ["label", "attempts", "commits", "aborts", "max retry",
         "wasted kcycles", "causes"],
        rows, title="Abort attribution")


def version_occupancy(snapshot: dict) -> str:
    """Version-list occupancy distribution from a metrics snapshot.

    Reads the ``mvm_version_list_length`` histogram the controller
    feeds at every install: how long lists actually get is the
    empirical check on the paper's claim that 4 versions suffice
    (Table 2 / section 4.4).
    """
    hist = snapshot.get("histograms", {}).get("mvm_version_list_length")
    if not hist or not hist.get("count"):
        return "Version occupancy: no installs observed"
    rows = [[f"<= {bound}", count,
             f"{100.0 * count / hist['count']:.1f}"]
            for bound, count in sorted(hist["buckets"].items(),
                                       key=lambda kv: int(kv[0]))]
    counters = snapshot.get("counters", {})
    table = format_table(
        ["list length", "installs", "% of installs"], rows,
        title="Version-list occupancy at install")
    summary = (f"installs={hist['count']} max={hist['max']} "
               f"coalesced={counters.get('mvm_versions_coalesced', 0)} "
               f"collected={counters.get('mvm_versions_collected', 0)}")
    return table + "\n" + summary


def metrics_table(snapshot: dict,
                  prefix: Optional[str] = None) -> str:
    """Flat table of every counter and gauge in a snapshot.

    Histograms are summarised as ``count/sum/max``; pass ``prefix`` to
    restrict to one metric family (e.g. ``"mvm_"``).
    """
    rows: List[List[object]] = []
    for key, value in snapshot.get("counters", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "counter", value])
    for key, value in snapshot.get("gauges", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "gauge",
                         f"{value:.3f}" if isinstance(value, float)
                         else value])
    for key, hist in snapshot.get("histograms", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "histogram",
                         f"count={hist['count']} sum={hist['sum']} "
                         f"max={hist['max']}"])
    rows.sort(key=lambda row: str(row[0]))
    return format_table(["metric", "kind", "value"], rows,
                        title="Run metrics")
