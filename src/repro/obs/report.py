"""Text reports over telemetry: abort attribution and version occupancy.

The paper's analysis questions, answerable from one telemetered run:

* *why* did attempts abort (Figures 1/6/7's cause breakdown), per
  transaction label, with the cycles each cause burned —
  :func:`abort_attribution`;
* *which lines* those conflicts concentrate on, and whether MVM
  coalescing is absorbing the hot lines — :func:`conflict_heatmap`;
* *where the cycles went*, phase by phase, from the cycle profiler —
  :func:`phase_table`;
* *how deep* did version lists grow under coalescing/GC (section 4.4,
  Table 2's occupancy concern) — :func:`version_occupancy`;
* everything else the registry collected — :func:`metrics_table`.

All render with :func:`repro.harness.report.format_table` so the
output diffs cleanly alongside the figure tables.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.harness.report import format_table
from repro.obs.spans import Span

__all__ = ["abort_attribution", "conflict_heatmap", "phase_table",
           "version_occupancy", "metrics_table"]


def abort_attribution(spans: Sequence[Span]) -> str:
    """Per-label breakdown of attempts, aborts by cause, and cycles lost.

    ``wasted kcycles`` is the summed duration of aborted attempts — the
    re-execution cost that makes high abort rates expensive (the
    quantity Figure 8's makespans pay for).
    """
    labels = sorted({span.label for span in spans})
    rows: List[List[object]] = []
    for label in labels:
        mine = [s for s in spans if s.label == label]
        aborted = [s for s in mine if s.outcome == "abort"]
        causes = Counter(s.cause for s in aborted)
        wasted = sum(s.duration for s in aborted)
        rows.append([
            label,
            len(mine),
            sum(1 for s in mine if s.outcome == "commit"),
            len(aborted),
            max((s.retries for s in mine), default=0),
            f"{wasted / 1000.0:.1f}",
            " ".join(f"{cause}:{n}"
                     for cause, n in sorted(causes.items())) or "-",
        ])
    return format_table(
        ["label", "attempts", "commits", "aborts", "max retry",
         "wasted kcycles", "causes"],
        rows, title="Abort attribution")


def conflict_heatmap(spans: Sequence[Span],
                     profile_snapshot: Optional[dict] = None,
                     top: int = 20) -> str:
    """Per-line conflict heatmap: where aborts concentrate, and why.

    Groups aborted spans by the memory line their fatal conflict was
    detected on (``Span.conflict_line``, stamped by the detecting
    backend), ranking lines by the cycles wasted re-executing work they
    killed.  With a profiler snapshot attached, each line is joined
    with the source sites writing it and the MVM's per-line
    install/coalesce/GC counts — answering whether coalescing is
    absorbing the hottest lines (section 4.4) or the conflicts are
    genuine write-write contention.
    """
    by_line: Dict[int, List[Span]] = {}
    unattributed: List[Span] = []
    for span in spans:
        if span.outcome != "abort":
            continue
        if span.conflict_line is None:
            unattributed.append(span)
        else:
            by_line.setdefault(span.conflict_line, []).append(span)
    if not by_line and not unattributed:
        return "Conflict heatmap: no aborts observed"
    prof = profile_snapshot or {}
    line_sites = prof.get("line_sites", {})
    mvm = prof.get("mvm_events", {})
    ranked = sorted(by_line.items(),
                    key=lambda kv: (-sum(s.duration for s in kv[1]),
                                    kv[0]))
    rows: List[List[object]] = []
    for line, killed in ranked[:top]:
        causes = Counter(s.cause for s in killed)
        key = str(line)
        installs = mvm.get("install", {}).get(key, 0)
        coalesced = mvm.get("coalesce", {}).get(key, 0)
        sites = line_sites.get(key, {})
        top_site = max(sites.items(), key=lambda kv: (kv[1], kv[0]),
                       default=("-", 0))[0]
        rows.append([
            f"{line:#x}",
            len(killed),
            " ".join(f"{cause}:{n}"
                     for cause, n in sorted(causes.items())),
            f"{sum(s.duration for s in killed) / 1000.0:.1f}",
            installs,
            f"{100.0 * coalesced / installs:.0f}%" if installs else "-",
            top_site,
        ])
    table = format_table(
        ["line", "aborts", "causes", "wasted kcycles", "installs",
         "coalesced", "hottest writer site"],
        rows, title="Conflict heatmap")
    notes = []
    if len(ranked) > top:
        notes.append(f"({len(ranked) - top} cooler lines not shown)")
    if unattributed:
        notes.append(f"{len(unattributed)} abort(s) without a single "
                     f"conflicting line (overflow/range causes)")
    return table + ("\n" + "\n".join(notes) if notes else "")


def phase_table(profile_snapshot: dict) -> str:
    """Cycle-attribution table from a profiler snapshot.

    One row per top-level phase (summed over threads) with its share of
    all charged cycles; sub-phases render indented beneath their
    parent, the unattributed remainder implicit.  Shares sum to 100%
    because the profiler conserves cycles.
    """
    phase_totals: Dict[str, int] = {}
    sub_totals: Dict[str, Dict[str, int]] = {}
    for phases in profile_snapshot.get("threads", {}).values():
        for phase, entry in phases.items():
            phase_totals[phase] = phase_totals.get(phase, 0) \
                + entry["cycles"]
            for sub, cycles in entry.get("sub", {}).items():
                subs = sub_totals.setdefault(phase, {})
                subs[sub] = subs.get(sub, 0) + cycles
    grand = sum(phase_totals.values())
    if not grand:
        return "Cycle attribution: no cycles recorded"
    rows: List[List[object]] = []
    for phase, cycles in sorted(phase_totals.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        rows.append([phase, cycles, f"{100.0 * cycles / grand:.1f}"])
        for sub, sub_cycles in sorted(sub_totals.get(phase, {}).items(),
                                      key=lambda kv: (-kv[1], kv[0])):
            rows.append([f"  {phase}.{sub}", sub_cycles,
                         f"{100.0 * sub_cycles / grand:.1f}"])
    table = format_table(["phase", "cycles", "% of total"], rows,
                         title="Cycle attribution")
    return table + f"\ntotal charged cycles: {grand}"


def version_occupancy(snapshot: dict) -> str:
    """Version-list occupancy distribution from a metrics snapshot.

    Reads the ``mvm_version_list_length`` histogram the controller
    feeds at every install: how long lists actually get is the
    empirical check on the paper's claim that 4 versions suffice
    (Table 2 / section 4.4).
    """
    hist = snapshot.get("histograms", {}).get("mvm_version_list_length")
    if not hist or not hist.get("count"):
        return "Version occupancy: no installs observed"
    rows = [[f"<= {bound}", count,
             f"{100.0 * count / hist['count']:.1f}"]
            for bound, count in sorted(hist["buckets"].items(),
                                       key=lambda kv: int(kv[0]))]
    counters = snapshot.get("counters", {})
    table = format_table(
        ["list length", "installs", "% of installs"], rows,
        title="Version-list occupancy at install")
    summary = (f"installs={hist['count']} max={hist['max']} "
               f"coalesced={counters.get('mvm_versions_coalesced', 0)} "
               f"collected={counters.get('mvm_versions_collected', 0)}")
    return table + "\n" + summary


def metrics_table(snapshot: dict,
                  prefix: Optional[str] = None) -> str:
    """Flat table of every counter and gauge in a snapshot.

    Histograms are summarised as ``count/sum/max``; pass ``prefix`` to
    restrict to one metric family (e.g. ``"mvm_"``).
    """
    rows: List[List[object]] = []
    for key, value in snapshot.get("counters", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "counter", value])
    for key, value in snapshot.get("gauges", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "gauge",
                         f"{value:.3f}" if isinstance(value, float)
                         else value])
    for key, hist in snapshot.get("histograms", {}).items():
        if prefix is None or key.startswith(prefix):
            rows.append([key, "histogram",
                         f"count={hist['count']} sum={hist['sum']} "
                         f"max={hist['max']}"])
    rows.sort(key=lambda row: str(row[0]))
    return format_table(["metric", "kind", "value"], rows,
                        title="Run metrics")
