"""Per-transaction lifecycle spans and tracer composition.

A **span** is one transaction *attempt* from begin to commit or abort,
stamped with the owning thread's simulated clock at both ends — the
unit the Chrome-trace exporter (:mod:`repro.obs.export`) draws as a
duration slice and the abort-attribution report aggregates.

:class:`SpanRecorder` is an engine :class:`~repro.sim.engine.Tracer`.
It reads clocks straight from the engine's thread states (the engine
hands itself to any tracer exposing ``attach_engine``), so the tracer
hook signatures stay unchanged and every existing tracer keeps working.

The engine has a single tracer slot; :class:`MultiTracer` fans one
slot out to several tracers in a fixed order, which is how telemetry
composes with the isolation oracle's
:class:`~repro.oracle.history.HistoryRecorder` — attaching a span
recorder must never change the history the checker sees
(``tests/obs/test_spans.py`` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import AbortCause
from repro.common.rng import derive_seed
from repro.sim.engine import Tracer
from repro.tm.api import Txn

__all__ = ["Span", "SpanRecorder", "StreamingSpanRecorder",
           "MultiTracer", "merge_span_aggregates"]

#: span outcomes
COMMIT, ABORT, OPEN = "commit", "abort", "open"


@dataclass(slots=True)
class Span:
    """One transaction attempt's lifecycle record."""

    uid: int
    thread_id: int
    label: str
    begin_cycle: int
    end_cycle: Optional[int] = None
    outcome: str = OPEN
    cause: Optional[str] = None
    #: prior aborted attempts of the same logical transaction
    retries: int = 0
    reads: int = 0
    writes: int = 0
    start_ts: Optional[int] = None
    commit_ts: Optional[int] = None
    #: memory line on which the fatal conflict was detected (aborts
    #: whose cause pinpoints one; feeds the conflict heatmap)
    conflict_line: Optional[int] = None
    #: conflict provenance (aborts doomed by another transaction): the
    #: killer's thread, span uid, label and timestamp.  ``None`` for
    #: commits and self-inflicted aborts, and *omitted* from the dict
    #: form so pre-provenance span logs round-trip unchanged.
    killer_tid: Optional[int] = None
    killer_uid: Optional[int] = None
    killer_label: Optional[str] = None
    killer_ts: Optional[int] = None

    @property
    def duration(self) -> int:
        """Cycles from begin to end (0 while still open)."""
        if self.end_cycle is None:
            return 0
        return self.end_cycle - self.begin_cycle

    @property
    def has_killer(self) -> bool:
        """True when another transaction was identified as the killer."""
        return self.killer_uid is not None or self.killer_tid is not None

    def to_dict(self) -> dict:
        """JSON-safe form (stable key set; killer fields only when set)."""
        row = {"uid": self.uid, "thread": self.thread_id,
               "label": self.label, "begin_cycle": self.begin_cycle,
               "end_cycle": self.end_cycle, "outcome": self.outcome,
               "cause": self.cause, "retries": self.retries,
               "reads": self.reads, "writes": self.writes,
               "start_ts": self.start_ts, "commit_ts": self.commit_ts,
               "conflict_line": self.conflict_line}
        if self.has_killer:
            row["killer_tid"] = self.killer_tid
            row["killer_uid"] = self.killer_uid
            row["killer_label"] = self.killer_label
            row["killer_ts"] = self.killer_ts
        return row

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(uid=data["uid"], thread_id=data["thread"],
                   label=data["label"], begin_cycle=data["begin_cycle"],
                   end_cycle=data.get("end_cycle"),
                   outcome=data.get("outcome", OPEN),
                   cause=data.get("cause"),
                   retries=data.get("retries", 0),
                   reads=data.get("reads", 0),
                   writes=data.get("writes", 0),
                   start_ts=data.get("start_ts"),
                   commit_ts=data.get("commit_ts"),
                   conflict_line=data.get("conflict_line"),
                   killer_tid=data.get("killer_tid"),
                   killer_uid=data.get("killer_uid"),
                   killer_label=data.get("killer_label"),
                   killer_ts=data.get("killer_ts"))


class SpanRecorder(Tracer):
    """Engine tracer recording one :class:`Span` per transaction attempt.

    Clock convention (set by the engine's call sites): ``begin_cycle``
    is the thread clock *after* the begin cost was charged;
    ``end_cycle`` is the clock after the commit cost, or after the
    abort cleanup including backoff/restart jitter — an abort span's
    tail is exactly the wasted work plus the penalty paid for it.

    With a ``metrics`` registry attached, every closed span feeds the
    ``txn_cycles``/``txn_reads``/``txn_writes`` histograms labeled by
    outcome, so distributions survive even when spans themselves are
    discarded.
    """

    def __init__(self, metrics=None):
        self.spans: List[Span] = []
        self.metrics = metrics
        self._engine = None
        self._open: Dict[int, Span] = {}  # thread_id -> open span

    def attach_engine(self, engine) -> None:
        """Called by the engine so spans can read thread clocks."""
        self._engine = engine

    def _clock(self, thread_id: int) -> int:
        if self._engine is None:
            return 0
        return self._engine.threads[thread_id].clock

    # -- tracer hooks ----------------------------------------------------

    def on_begin(self, txn: Txn) -> None:
        # the TM mints txn.uid in global begin order, which is exactly
        # the order this hook fires in, so uid == len(spans) whenever
        # the transaction came from a real backend; the fallback keeps
        # hand-built tracer tests working
        uid = txn.uid if getattr(txn, "uid", None) is not None \
            else len(self.spans)
        span = Span(uid=uid, thread_id=txn.thread_id,
                    label=txn.label, begin_cycle=self._clock(txn.thread_id),
                    retries=txn.attempt, start_ts=txn.start_ts)
        self.spans.append(span)
        self._open[txn.thread_id] = span

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        span = self._open.get(txn.thread_id)
        if span is not None:
            span.reads += 1

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        span = self._open.get(txn.thread_id)
        if span is not None:
            span.writes += 1

    def on_commit(self, txn: Txn) -> None:
        self._close(txn, COMMIT, None)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        self._close(txn, ABORT, cause.value)

    def _close(self, txn: Txn, outcome: str, cause: Optional[str]) -> None:
        span = self._open.pop(txn.thread_id, None)
        if span is None:
            return
        span.end_cycle = self._clock(txn.thread_id)
        span.outcome = outcome
        span.cause = cause
        span.commit_ts = txn.commit_ts
        span.conflict_line = getattr(txn, "conflict_line", None)
        if outcome == ABORT:
            span.killer_tid = getattr(txn, "killer_tid", None)
            span.killer_uid = getattr(txn, "killer_uid", None)
            span.killer_label = getattr(txn, "killer_label", None)
            span.killer_ts = getattr(txn, "killer_ts", None)
        if self.metrics is not None:
            self.metrics.observe("txn_cycles", span.duration,
                                 outcome=outcome)
            self.metrics.observe("txn_reads", span.reads, outcome=outcome)
            self.metrics.observe("txn_writes", span.writes, outcome=outcome)

    def __len__(self) -> int:
        return len(self.spans)


def _merge_histogram_dicts(a: Optional[dict],
                           b: Optional[dict]) -> Optional[dict]:
    """Merge two power-of-two histogram dicts (``_Histogram.to_dict``)."""
    if a is None:
        return None if b is None else dict(b, buckets=dict(b["buckets"]))
    if b is None:
        return dict(a, buckets=dict(a["buckets"]))
    buckets = dict(a["buckets"])
    for bound, count in b["buckets"].items():
        buckets[bound] = buckets.get(bound, 0) + count
    mins = [m for m in (a["min"], b["min"]) if m is not None]
    maxs = [m for m in (a["max"], b["max"]) if m is not None]
    return {"buckets": {k: buckets[k]
                        for k in sorted(buckets, key=int)},
            "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"],
            "min": min(mins) if mins else None,
            "max": max(maxs) if maxs else None}


def merge_span_aggregates(*aggregates: dict) -> dict:
    """Merge :meth:`StreamingSpanRecorder.aggregate` outputs.

    The aggregates are mergeable by construction (power-of-two bucket
    histograms plus counters), so per-shard streaming runs combine into
    one summary without ever holding the spans themselves.
    """
    merged: dict = {"total_spans": 0, "outcomes": {}}
    for agg in aggregates:
        merged["total_spans"] += agg["total_spans"]
        for outcome, stats in agg["outcomes"].items():
            into = merged["outcomes"].get(outcome)
            if into is None:
                merged["outcomes"][outcome] = {
                    key: _merge_histogram_dicts(value, None)
                    for key, value in stats.items()}
            else:
                for key, value in stats.items():
                    into[key] = _merge_histogram_dicts(into.get(key),
                                                       value)
    merged["outcomes"] = {k: merged["outcomes"][k]
                          for k in sorted(merged["outcomes"])}
    return merged


class StreamingSpanRecorder(SpanRecorder):
    """Bounded-memory span recording for arbitrarily long runs.

    Retention policy per closed span:

    * **aborts are always kept** — they are what provenance analysis
      consumes, and they are rare by construction on healthy runs;
      without a sink the newest ``cap`` aborts survive (ring buffer),
      with a sink older aborts reach the JSONL file before rotation;
    * **commits are reservoir-sampled** (Algorithm R, seeded) down to
      ``cap`` — a uniform sample of the flush window;
    * every closed span feeds the online per-outcome aggregates
      (power-of-two histograms of cycles/reads/footprints), which are
      exact and mergeable (:func:`merge_span_aggregates`) no matter
      how many spans were discarded.

    With ``sink`` set, retained spans append to the JSONL file every
    ``flush_every`` closed spans (and whenever the abort buffer hits
    the cap), so disk gets a complete abort log plus sampled commits
    while memory stays at O(``cap``).
    """

    def __init__(self, cap: int = 1024, seed: int = 0, metrics=None,
                 sink=None, flush_every: int = 0):
        if cap <= 0:
            raise ValueError(f"span cap must be positive, got {cap}")
        super().__init__(metrics=metrics)
        self.cap = cap
        self.sink = sink
        self.flush_every = flush_every
        self._rng = random.Random(derive_seed(seed, "span-reservoir"))
        self._commits: List[Span] = []
        self._aborts: List[Span] = []
        #: commits seen in the current flush window (reservoir size base)
        self._commit_seen = 0
        self._closed_since_flush = 0
        self.total_begun = 0
        self.total_commits = 0
        self.total_aborts = 0
        #: spans discarded without reaching memory or the sink
        self.commits_sampled_out = 0
        self.aborts_dropped = 0
        self.flushed_spans = 0
        #: high-water mark of retained closed spans (memory-cap proof)
        self.max_retained = 0
        self._aggregates: Dict[str, Dict[str, object]] = {}

    # -- tracer hooks ----------------------------------------------------

    def on_begin(self, txn: Txn) -> None:
        uid = txn.uid if getattr(txn, "uid", None) is not None \
            else self.total_begun
        span = Span(uid=uid, thread_id=txn.thread_id,
                    label=txn.label, begin_cycle=self._clock(txn.thread_id),
                    retries=txn.attempt, start_ts=txn.start_ts)
        self.total_begun += 1
        self._open[txn.thread_id] = span

    def _close(self, txn: Txn, outcome: str, cause: Optional[str]) -> None:
        span = self._open.get(txn.thread_id)
        super()._close(txn, outcome, cause)
        if span is None:
            return
        self._aggregate(span)
        self._retain(span)

    # -- retention -------------------------------------------------------

    def _retain(self, span: Span) -> None:
        if span.outcome == ABORT:
            self.total_aborts += 1
            self._aborts.append(span)
            if self.sink is None and len(self._aborts) > self.cap:
                self._aborts.pop(0)
                self.aborts_dropped += 1
        else:
            self.total_commits += 1
            self._commit_seen += 1
            if len(self._commits) < self.cap:
                self._commits.append(span)
            else:
                slot = self._rng.randrange(self._commit_seen)
                if slot < self.cap:
                    self.commits_sampled_out += 1
                    self._commits[slot] = span
                else:
                    self.commits_sampled_out += 1
        self.max_retained = max(self.max_retained,
                                len(self._commits) + len(self._aborts))
        self._closed_since_flush += 1
        if self.sink is not None and (
                (self.flush_every
                 and self._closed_since_flush >= self.flush_every)
                or len(self._aborts) >= self.cap):
            self.flush()

    def retained(self) -> List[Span]:
        """Closed spans currently held in memory, in begin (uid) order."""
        return sorted(self._commits + self._aborts,
                      key=lambda span: span.uid)

    def flush(self) -> int:
        """Append retained spans to the JSONL sink and release them.

        Returns the number of spans written.  A no-op without a sink.
        """
        if self.sink is None:
            return 0
        rows = self.retained()
        if rows:
            from repro.obs.export import spans_to_jsonl
            with open(self.sink, "a", encoding="utf-8") as handle:
                handle.write(spans_to_jsonl(rows))
        self._commits.clear()
        self._aborts.clear()
        self._commit_seen = 0
        self._closed_since_flush = 0
        self.flushed_spans += len(rows)
        return len(rows)

    # -- aggregation -----------------------------------------------------

    def _aggregate(self, span: Span) -> None:
        from repro.obs.metrics import _Histogram
        stats = self._aggregates.get(span.outcome)
        if stats is None:
            stats = self._aggregates[span.outcome] = {
                "cycles": _Histogram(), "reads": _Histogram(),
                "writes": _Histogram()}
        stats["cycles"].observe(span.duration)
        stats["reads"].observe(span.reads)
        stats["writes"].observe(span.writes)

    def aggregate(self) -> dict:
        """Canonical mergeable summary of *every* closed span.

        Exact regardless of sampling: aggregation happens before
        retention, so the histograms cover spans the reservoir dropped.
        """
        return {
            "total_spans": self.total_commits + self.total_aborts,
            "outcomes": {
                outcome: {key: hist.to_dict()
                          for key, hist in sorted(stats.items())}
                for outcome, stats in sorted(self._aggregates.items())
            },
        }

    def __len__(self) -> int:
        return len(self._commits) + len(self._aborts)


class MultiTracer(Tracer):
    """Fans the engine's single tracer slot out to several tracers.

    Hooks are forwarded to every child in construction order, so a
    deterministic engine drives every child identically whether it is
    alone in the slot or composed — the property that lets telemetry
    ride alongside the oracle's history recording.
    """

    def __init__(self, *tracers: Tracer):
        self.tracers = [t for t in tracers if t is not None]

    def attach_engine(self, engine) -> None:
        """Forward the engine reference to children that want it."""
        for tracer in self.tracers:
            attach = getattr(tracer, "attach_engine", None)
            if attach is not None:
                attach(engine)

    def on_begin(self, txn: Txn) -> None:
        for tracer in self.tracers:
            tracer.on_begin(txn)

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        for tracer in self.tracers:
            tracer.on_read(txn, addr, site, value)

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        for tracer in self.tracers:
            tracer.on_write(txn, addr, site, value)

    def on_commit(self, txn: Txn) -> None:
        for tracer in self.tracers:
            tracer.on_commit(txn)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        for tracer in self.tracers:
            tracer.on_abort(txn, cause)

    def on_stall(self, thread_id: int, cycles: int) -> None:
        for tracer in self.tracers:
            tracer.on_stall(thread_id, cycles)

    def __len__(self) -> int:
        return len(self.tracers)
