"""Per-transaction lifecycle spans and tracer composition.

A **span** is one transaction *attempt* from begin to commit or abort,
stamped with the owning thread's simulated clock at both ends — the
unit the Chrome-trace exporter (:mod:`repro.obs.export`) draws as a
duration slice and the abort-attribution report aggregates.

:class:`SpanRecorder` is an engine :class:`~repro.sim.engine.Tracer`.
It reads clocks straight from the engine's thread states (the engine
hands itself to any tracer exposing ``attach_engine``), so the tracer
hook signatures stay unchanged and every existing tracer keeps working.

The engine has a single tracer slot; :class:`MultiTracer` fans one
slot out to several tracers in a fixed order, which is how telemetry
composes with the isolation oracle's
:class:`~repro.oracle.history.HistoryRecorder` — attaching a span
recorder must never change the history the checker sees
(``tests/obs/test_spans.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import AbortCause
from repro.sim.engine import Tracer
from repro.tm.api import Txn

__all__ = ["Span", "SpanRecorder", "MultiTracer"]

#: span outcomes
COMMIT, ABORT, OPEN = "commit", "abort", "open"


@dataclass(slots=True)
class Span:
    """One transaction attempt's lifecycle record."""

    uid: int
    thread_id: int
    label: str
    begin_cycle: int
    end_cycle: Optional[int] = None
    outcome: str = OPEN
    cause: Optional[str] = None
    #: prior aborted attempts of the same logical transaction
    retries: int = 0
    reads: int = 0
    writes: int = 0
    start_ts: Optional[int] = None
    commit_ts: Optional[int] = None
    #: memory line on which the fatal conflict was detected (aborts
    #: whose cause pinpoints one; feeds the conflict heatmap)
    conflict_line: Optional[int] = None

    @property
    def duration(self) -> int:
        """Cycles from begin to end (0 while still open)."""
        if self.end_cycle is None:
            return 0
        return self.end_cycle - self.begin_cycle

    def to_dict(self) -> dict:
        """JSON-safe form (stable key set)."""
        return {"uid": self.uid, "thread": self.thread_id,
                "label": self.label, "begin_cycle": self.begin_cycle,
                "end_cycle": self.end_cycle, "outcome": self.outcome,
                "cause": self.cause, "retries": self.retries,
                "reads": self.reads, "writes": self.writes,
                "start_ts": self.start_ts, "commit_ts": self.commit_ts,
                "conflict_line": self.conflict_line}

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(uid=data["uid"], thread_id=data["thread"],
                   label=data["label"], begin_cycle=data["begin_cycle"],
                   end_cycle=data.get("end_cycle"),
                   outcome=data.get("outcome", OPEN),
                   cause=data.get("cause"),
                   retries=data.get("retries", 0),
                   reads=data.get("reads", 0),
                   writes=data.get("writes", 0),
                   start_ts=data.get("start_ts"),
                   commit_ts=data.get("commit_ts"),
                   conflict_line=data.get("conflict_line"))


class SpanRecorder(Tracer):
    """Engine tracer recording one :class:`Span` per transaction attempt.

    Clock convention (set by the engine's call sites): ``begin_cycle``
    is the thread clock *after* the begin cost was charged;
    ``end_cycle`` is the clock after the commit cost, or after the
    abort cleanup including backoff/restart jitter — an abort span's
    tail is exactly the wasted work plus the penalty paid for it.

    With a ``metrics`` registry attached, every closed span feeds the
    ``txn_cycles``/``txn_reads``/``txn_writes`` histograms labeled by
    outcome, so distributions survive even when spans themselves are
    discarded.
    """

    def __init__(self, metrics=None):
        self.spans: List[Span] = []
        self.metrics = metrics
        self._engine = None
        self._open: Dict[int, Span] = {}  # thread_id -> open span

    def attach_engine(self, engine) -> None:
        """Called by the engine so spans can read thread clocks."""
        self._engine = engine

    def _clock(self, thread_id: int) -> int:
        if self._engine is None:
            return 0
        return self._engine.threads[thread_id].clock

    # -- tracer hooks ----------------------------------------------------

    def on_begin(self, txn: Txn) -> None:
        span = Span(uid=len(self.spans), thread_id=txn.thread_id,
                    label=txn.label, begin_cycle=self._clock(txn.thread_id),
                    retries=txn.attempt, start_ts=txn.start_ts)
        self.spans.append(span)
        self._open[txn.thread_id] = span

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        span = self._open.get(txn.thread_id)
        if span is not None:
            span.reads += 1

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        span = self._open.get(txn.thread_id)
        if span is not None:
            span.writes += 1

    def on_commit(self, txn: Txn) -> None:
        self._close(txn, COMMIT, None)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        self._close(txn, ABORT, cause.value)

    def _close(self, txn: Txn, outcome: str, cause: Optional[str]) -> None:
        span = self._open.pop(txn.thread_id, None)
        if span is None:
            return
        span.end_cycle = self._clock(txn.thread_id)
        span.outcome = outcome
        span.cause = cause
        span.commit_ts = txn.commit_ts
        span.conflict_line = getattr(txn, "conflict_line", None)
        if self.metrics is not None:
            self.metrics.observe("txn_cycles", span.duration,
                                 outcome=outcome)
            self.metrics.observe("txn_reads", span.reads, outcome=outcome)
            self.metrics.observe("txn_writes", span.writes, outcome=outcome)

    def __len__(self) -> int:
        return len(self.spans)


class MultiTracer(Tracer):
    """Fans the engine's single tracer slot out to several tracers.

    Hooks are forwarded to every child in construction order, so a
    deterministic engine drives every child identically whether it is
    alone in the slot or composed — the property that lets telemetry
    ride alongside the oracle's history recording.
    """

    def __init__(self, *tracers: Tracer):
        self.tracers = [t for t in tracers if t is not None]

    def attach_engine(self, engine) -> None:
        """Forward the engine reference to children that want it."""
        for tracer in self.tracers:
            attach = getattr(tracer, "attach_engine", None)
            if attach is not None:
                attach(engine)

    def on_begin(self, txn: Txn) -> None:
        for tracer in self.tracers:
            tracer.on_begin(txn)

    def on_read(self, txn: Txn, addr: int, site: str,
                value: object = None) -> None:
        for tracer in self.tracers:
            tracer.on_read(txn, addr, site, value)

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        for tracer in self.tracers:
            tracer.on_write(txn, addr, site, value)

    def on_commit(self, txn: Txn) -> None:
        for tracer in self.tracers:
            tracer.on_commit(txn)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        for tracer in self.tracers:
            tracer.on_abort(txn, cause)

    def __len__(self) -> int:
        return len(self.tracers)
