"""Live campaign monitoring: the watch view and progress lines.

The executor publishes structured events while a grid, fuzz campaign,
or bench suite runs — ``grid-start``, ``spec-cached``, ``spec-start``,
``spec-done``, ``spec-failed``, plus the per-window ``window``/``alert``
stream from :mod:`repro.obs.live` (relayed over a multiprocessing
queue when cells run in pool workers).  :class:`CampaignMonitor`
consumes that stream and renders it two ways:

* ``style="line"`` — a periodic one-line status (done/running/cached/
  failed counts, throughput, ETA) suited to non-TTY CI logs; this is
  what ``--progress`` wires to stderr and ``watch --headless`` to
  stdout.
* ``style="screen"`` — a redrawn per-cell table (state, commits,
  abort-rate sparkline, alerts) for an interactive ``sitm-harness
  watch``.

The monitor is a passive consumer: it never blocks the executor (all
event handling is wrapped by the publisher's fire-and-forget contract)
and it is thread-safe, because pool events arrive on a drain thread
while cache-hit events arrive on the caller's thread.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = ["CampaignMonitor", "sparkline", "SPARK_BLOCKS"]

#: eighth-block ramp used for abort-rate sparklines
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], lo: float = 0.0,
              hi: float = 1.0) -> str:
    """Render ``values`` (clamped to [lo, hi]) as block characters."""
    if hi <= lo:
        raise ValueError("sparkline needs hi > lo")
    chars = []
    span = hi - lo
    top = len(SPARK_BLOCKS) - 1
    for value in values:
        fraction = (min(max(value, lo), hi) - lo) / span
        chars.append(SPARK_BLOCKS[round(fraction * top)])
    return "".join(chars)


class _Cell:
    """Mutable monitoring state of one spec (internal)."""

    __slots__ = ("state", "commits", "aborts", "rates", "windows",
                 "alerts", "started", "elapsed", "kind", "flight",
                 "makespan")

    #: sparkline length: the most recent windows shown per cell
    RATE_POINTS = 24

    def __init__(self) -> None:
        self.state = "pending"
        self.commits = 0
        self.aborts = 0
        self.rates: List[float] = []
        self.windows = 0
        self.alerts = 0
        self.started: Optional[float] = None
        self.elapsed: Optional[float] = None
        self.kind: Optional[str] = None
        self.flight: Optional[str] = None
        self.makespan: Optional[int] = None


class CampaignMonitor:
    """Aggregates live campaign events into a renderable view.

    Install as an :class:`~repro.harness.executor.Executor`'s
    ``monitor`` (it is callable); events referencing specs the monitor
    has not seen create cells on the fly, so it works for grids whose
    size it only learns from the ``grid-start`` event — or never.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, total: int = 0, stream=None, style: str = "line",
                 interval: float = 1.0, prefix: str = "[watch]",
                 clock=time.monotonic):
        if style not in ("line", "screen"):
            raise ValueError(f"unknown monitor style {style!r}")
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.total = total
        self.stream = stream
        self.style = style
        self.interval = interval
        self.prefix = prefix
        self.clock = clock
        self.cells: Dict[str, _Cell] = {}
        self.alerts: List[dict] = []
        self.events_seen = 0
        self._lock = threading.Lock()
        self._started = clock()
        self._last_print = -float("inf")

    # -- event intake ----------------------------------------------------

    def __call__(self, event: dict) -> None:
        self.handle(event)

    def _cell(self, event: dict) -> _Cell:
        spec = event.get("spec") or "<unknown>"
        cell = self.cells.get(spec)
        if cell is None:
            cell = self.cells[spec] = _Cell()
        return cell

    def handle(self, event: dict) -> None:
        """Consume one campaign event (thread-safe)."""
        if not isinstance(event, dict):
            return
        with self._lock:
            self.events_seen += 1
            kind = event.get("event")
            now = self.clock()
            if kind == "grid-start":
                self.total = max(self.total, event.get("total", 0))
            elif kind == "grid-end":
                pass  # forced terminal status line, nothing to record
            elif kind == "spec-cached":
                self._cell(event).state = "cached"
            elif kind == "spec-start":
                cell = self._cell(event)
                cell.state = "running"
                cell.started = now
            elif kind == "spec-done":
                cell = self._cell(event)
                cell.state = "done"
                cell.commits = event.get("commits") or cell.commits
                cell.aborts = event.get("aborts") or cell.aborts
                cell.makespan = event.get("makespan_cycles")
                if cell.started is not None:
                    cell.elapsed = now - cell.started
            elif kind == "spec-failed":
                cell = self._cell(event)
                cell.state = "failed"
                cell.kind = event.get("kind")
                cell.flight = event.get("flight")
                if cell.started is not None:
                    cell.elapsed = now - cell.started
            elif kind == "window":
                cell = self._cell(event)
                cell.state = "running"
                cell.windows += 1
                cell.commits += event.get("commits", 0)
                cell.aborts += event.get("aborts", 0)
                cell.rates.append(event.get("abort_rate", 0.0))
                del cell.rates[:-_Cell.RATE_POINTS]
            elif kind == "alert":
                self.alerts.append(event)
                self._cell(event).alerts += 1
            else:
                return
            self._maybe_print(kind, now)

    # -- derived state ---------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Cell counts by state (pending inferred from ``total``)."""
        counts = {"done": 0, "running": 0, "cached": 0, "failed": 0}
        for cell in self.cells.values():
            if cell.state in counts:
                counts[cell.state] += 1
        seen = sum(counts.values())
        counts["pending"] = max(self.total - seen, 0)
        return counts

    def eta_seconds(self) -> Optional[float]:
        """Rough time remaining, from the mean executed-cell duration."""
        durations = [cell.elapsed for cell in self.cells.values()
                     if cell.elapsed is not None]
        if not durations:
            return None
        counts = self.counts()
        remaining = counts["pending"] + counts["running"]
        if remaining == 0:
            return 0.0
        return remaining * (sum(durations) / len(durations))

    def status_line(self) -> str:
        """One-line campaign status (the --progress / headless form)."""
        counts = self.counts()
        commits = sum(cell.commits for cell in self.cells.values())
        parts = [f"{self.prefix} done {counts['done']}"
                 + (f"/{self.total}" if self.total else ""),
                 f"running {counts['running']}",
                 f"cached {counts['cached']}",
                 f"failed {counts['failed']}"]
        line = " ".join(parts) + f" | {commits} commits"
        if self.alerts:
            line += f" | {len(self.alerts)} alert(s)"
        eta = self.eta_seconds()
        if eta is not None and counts["pending"] + counts["running"]:
            line += f" | eta ~{eta:.0f}s"
        return line

    def render(self) -> str:
        """The full per-cell watch view (table + alerts + status)."""
        lines = [f"{self.prefix} campaign: "
                 f"{len(self.cells)} cell(s) seen"
                 + (f" of {self.total}" if self.total else "")]
        width = max((len(spec) for spec in self.cells), default=4)
        header = (f"  {'spec':<{width}}  {'state':<7}  {'commits':>8}  "
                  f"{'aborts':>7}  {'abort rate':<{_Cell.RATE_POINTS}}"
                  f"  alerts")
        lines.append(header)
        for spec in sorted(self.cells):
            cell = self.cells[spec]
            spark = sparkline(cell.rates) if cell.rates else "-"
            marker = cell.state
            if cell.state == "failed" and cell.kind:
                marker = f"failed:{cell.kind}"
            lines.append(
                f"  {spec:<{width}}  {marker:<7}  {cell.commits:>8}  "
                f"{cell.aborts:>7}  {spark:<{_Cell.RATE_POINTS}}  "
                f"{cell.alerts or '-':>6}")
            if cell.flight:
                lines.append(f"  {'':<{width}}  flight: {cell.flight}")
        for alert in self.alerts[-8:]:
            lines.append(f"  ALERT {alert.get('rule')} @ window "
                         f"{alert.get('window')} [{alert.get('spec')}]: "
                         f"{alert.get('detail')}")
        lines.append(self.status_line())
        return "\n".join(lines)

    # -- output ----------------------------------------------------------

    #: events that always force a line out, bypassing the rate limit —
    #: state transitions and alerts are too rare and too load-bearing
    #: to drop on the floor of an interval window
    _FORCED = ("spec-failed", "alert", "grid-start", "grid-end")

    def _maybe_print(self, kind: Optional[str], now: float) -> None:
        if self.stream is None:
            return
        forced = kind in self._FORCED
        if not forced and now - self._last_print < self.interval:
            return
        if not forced and kind == "window":
            # windows are the high-rate event; only the interval decides
            pass
        self._last_print = now
        try:
            if self.style == "screen":
                # home + clear-to-end redraw (no flicker-prone full clear)
                self.stream.write("\x1b[H\x1b[2J" + self.render() + "\n")
            else:
                self.stream.write(self.status_line() + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.stream = None  # broken pipe / closed file: go silent
