"""Crash flight recorder: a run's final moments, persisted on death.

A quarantined grid cell (crash, watchdog, timeout) used to die with no
record of what it was doing — the executor reports *that* it failed,
never *why*.  :class:`FlightRecorder` fixes that with the aviation
trick: a bounded ring of the most recent window aggregates and span
summaries (fed by :class:`repro.obs.live.TimeSeriesSampler`), persisted
to ``flight-<spec-digest>.json`` on a fixed cadence so the artifact
survives even a ``SIGKILL`` that never unwinds Python.  On a clean
finish the artifact is discarded; on any death — ``SimulationError``
(including the engine watchdog), per-spec timeout, or a
``BrokenProcessPool`` worker crash — the last persisted state remains
on disk and the executor attaches its path to the
:class:`~repro.harness.executor.RunFailure` cell.

The artifact location honours ``$SITM_FLIGHT_DIR`` (defaulting to
``results/flight``), mirroring the cache/fuzz/bench directory
conventions.  Writes are atomic (tmp + rename) so a crash mid-persist
leaves the previous snapshot, never a torn file.

Zero-overhead contract: a recorder exists only when a telemetry run
supplies a flight path (the harness spec layer does; bare ``run_once``
does not), and the poisoned-constructor audit in
``benchmarks/test_telemetry_overhead.py`` proves disabled runs never
construct one.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import List, Optional

__all__ = ["FLIGHT_SCHEMA_VERSION", "FLIGHT_DIR_ENV",
           "DEFAULT_FLIGHT_DIR", "flight_dir", "flight_path",
           "FlightRecorder", "load_flight", "validate_flight"]

#: flight-artifact schema version, stamped on every document
FLIGHT_SCHEMA_VERSION = 1
#: default artifact location, relative to the repository root / CWD
DEFAULT_FLIGHT_DIR = pathlib.Path("results") / "flight"
#: environment override for the artifact location
FLIGHT_DIR_ENV = "SITM_FLIGHT_DIR"


def flight_dir() -> pathlib.Path:
    """The flight-artifact directory ($SITM_FLIGHT_DIR or the default)."""
    env = os.environ.get(FLIGHT_DIR_ENV)
    return pathlib.Path(env) if env else DEFAULT_FLIGHT_DIR


def flight_path(digest: str) -> pathlib.Path:
    """Artifact path for a spec digest: ``flight-<digest>.json``."""
    return flight_dir() / f"flight-{digest}.json"


class FlightRecorder:
    """Bounded ring of recent telemetry, persisted across a crash.

    ``note_window``/``note_alert``/``note_span`` are fed by the
    sampler; the recorder keeps the last ``window_ring`` windows and
    ``span_ring`` span summaries (older entries fall off), plus running
    totals over *everything* it ever saw, so a post-mortem can tell
    "died at window 400 of a long run" from "died instantly".

    Persistence cadence: the initial :meth:`start` write plus one
    atomic rewrite every ``persist_every`` closed windows — frequent
    enough that the artifact trails the crash by a bounded number of
    windows, rare enough to stay off the per-event hot path entirely.
    """

    def __init__(self, path: os.PathLike, context: Optional[str] = None,
                 window_ring: int = 32, span_ring: int = 64,
                 persist_every: int = 4):
        if window_ring <= 0 or span_ring <= 0 or persist_every <= 0:
            raise ValueError("flight recorder rings and cadence must "
                             "be positive")
        self.path = pathlib.Path(path)
        #: spec identity this run executes (None for bare runs)
        self.context = context
        self.windows: deque = deque(maxlen=window_ring)
        self.spans: deque = deque(maxlen=span_ring)
        self.alerts: deque = deque(maxlen=window_ring)
        self.totals = {"windows": 0, "spans": 0, "alerts": 0,
                       "commits": 0, "aborts": 0}
        self.persist_every = persist_every
        self._since_persist = 0
        self._dumped = False

    # -- feeding (called by the sampler) ---------------------------------

    def note_window(self, row: dict) -> None:
        """Ring one closed window aggregate; persist on cadence."""
        self.windows.append(row)
        self.totals["windows"] += 1
        self.totals["commits"] += row["commits"]
        self.totals["aborts"] += row["aborts"]
        self._since_persist += 1
        if self._since_persist >= self.persist_every:
            self.persist()

    def note_alert(self, alert: dict) -> None:
        """Ring one anomaly alert (kept alongside the windows)."""
        self.alerts.append(alert)
        self.totals["alerts"] += 1

    def note_span(self, summary: dict) -> None:
        """Ring one closed-span summary (no persist: spans are hot)."""
        self.spans.append(summary)
        self.totals["spans"] += 1

    # -- persistence -----------------------------------------------------

    def snapshot(self, status: str = "running",
                 reason: Optional[str] = None) -> dict:
        """The JSON document a persist writes (also the test surface)."""
        return {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "status": status,
            "reason": reason,
            "context": self.context,
            "totals": dict(self.totals),
            "windows": list(self.windows),
            "alerts": list(self.alerts),
            "recent_spans": list(self.spans),
        }

    def _write(self, document: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(self.path)

    def start(self) -> None:
        """Write the initial snapshot immediately.

        A worker can be SIGKILLed before its first window closes; the
        start snapshot guarantees even that death leaves an artifact
        naming the spec that was running.
        """
        self.persist()

    def persist(self, status: str = "running",
                reason: Optional[str] = None) -> None:
        """Atomically (re)write the artifact with the current rings."""
        self._write(self.snapshot(status=status, reason=reason))
        self._since_persist = 0

    def dump(self, reason: str) -> pathlib.Path:
        """Final write on death: mark the artifact crashed (idempotent)."""
        if not self._dumped:
            self._dumped = True
            self.persist(status="crashed", reason=reason)
        return self.path

    def discard(self) -> None:
        """Remove the artifact after a clean finish (no crash = no wreck)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def load_flight(path: os.PathLike) -> dict:
    """Read one flight artifact back as its JSON document."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def validate_flight(document: dict) -> List[str]:
    """Check a flight document's shape; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["flight document is not an object"]
    version = document.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or not 1 <= version <= FLIGHT_SCHEMA_VERSION:
        problems.append(f"bad schema_version {version!r}")
    if document.get("status") not in ("running", "crashed"):
        problems.append(f"bad status {document.get('status')!r}")
    if document.get("status") == "crashed" \
            and not isinstance(document.get("reason"), str):
        problems.append("crashed artifact missing its reason")
    context = document.get("context")
    if context is not None and not isinstance(context, str):
        problems.append("context must be a string or null")
    totals = document.get("totals")
    if not isinstance(totals, dict) or any(
            not isinstance(v, int) or isinstance(v, bool) or v < 0
            for v in totals.values()):
        problems.append("totals must map name -> non-negative int")
    for key in ("windows", "alerts", "recent_spans"):
        value = document.get(key)
        if not isinstance(value, list) or any(
                not isinstance(item, dict) for item in value):
            problems.append(f"{key!r} must be a list of objects")
    if isinstance(totals, dict) and isinstance(document.get("windows"),
                                               list):
        if totals.get("windows", 0) < len(document["windows"]):
            problems.append("totals.windows below the ringed count")
    return problems
