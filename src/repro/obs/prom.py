"""Prometheus/OpenMetrics text exposition for metrics snapshots.

:meth:`repro.obs.metrics.MetricsRegistry.snapshot` is the repo's
canonical metrics form — sorted ``name{label=value,...}`` keys over
counters, gauges and power-of-two histograms.  This module renders
that snapshot in the Prometheus text exposition format (version
0.0.4), so the same registry a simulation run fills today can be
scraped by standard tooling when the upcoming live service serves it
over HTTP:

* counters and gauges become one sample each, with a ``# TYPE`` line
  per family;
* histograms become the conventional cumulative ``_bucket`` series
  (``le`` upper bounds from the power-of-two buckets, plus
  ``le="+Inf"``) with ``_sum`` and ``_count``;
* metric names are sanitised to the Prometheus grammar and prefixed
  (default ``sitm_``), label values are escaped, and **all ordering is
  deterministic** — same snapshot, byte-identical exposition — which
  the golden-file test (``tests/obs/golden/metrics.prom``) pins.

Exposed on the CLI as ``sitm-harness metrics --format prom``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

__all__ = ["prometheus_exposition", "exposition_http_response"]

#: characters legal in a Prometheus metric name body
_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str) -> str:
    """Coerce a snapshot metric name into the Prometheus grammar."""
    clean = _NAME_ILLEGAL.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape_label(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _split_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Parse a canonical ``name{k=v,...}`` key into (name, labels)."""
    if "{" not in key:
        return key, []
    name, _, inner = key.partition("{")
    labels = []
    for pair in inner.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels.append((label, value))
    return name, labels


def _format_labels(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize_name(k)}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels))
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_exposition(snapshot: dict, prefix: str = "sitm_") -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``snapshot`` is the canonical three-section dict
    (``counters``/``gauges``/``histograms``).  Families are emitted in
    sorted-name order with one ``# TYPE`` line each; within a family,
    samples follow sorted snapshot-key order (imposed here, not
    assumed), so the output is a pure deterministic function of the
    snapshot's *contents*, independent of dict ordering.
    """
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(name: str, kind: str) -> List[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = _split_key(key)
        name = prefix + _sanitize_name(name)
        family(name, "counter").append(
            f"{name}{_format_labels(labels)} {_format_value(value)}")
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = _split_key(key)
        name = prefix + _sanitize_name(name)
        family(name, "gauge").append(
            f"{name}{_format_labels(labels)} {_format_value(value)}")
    for key, hist in sorted(snapshot.get("histograms", {}).items()):
        name, labels = _split_key(key)
        name = prefix + _sanitize_name(name)
        samples = family(name, "histogram")
        cumulative = 0
        for bound in sorted(hist.get("buckets", {}),
                            key=lambda b: int(b)):
            cumulative += hist["buckets"][bound]
            bucket_labels = _format_labels(labels + [("le", bound)])
            samples.append(f"{name}_bucket{bucket_labels} {cumulative}")
        inf_labels = _format_labels(labels + [("le", "+Inf")])
        samples.append(f"{name}_bucket{inf_labels} {hist['count']}")
        samples.append(f"{name}_sum{_format_labels(labels)} "
                       f"{_format_value(hist['sum'])}")
        samples.append(f"{name}_count{_format_labels(labels)} "
                       f"{hist['count']}")

    lines: List[str] = []
    for name in sorted(families):
        kind, samples = families[name]
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


#: content type of the Prometheus text exposition format
_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def exposition_http_response(snapshot: dict,
                             prefix: str = "sitm_") -> bytes:
    """A complete HTTP/1.0 response carrying the exposition.

    Keeps this module pure (bytes in, bytes out — no sockets): the
    store's ``/metrics`` listener writes exactly these bytes and closes
    the connection, which is all a Prometheus scraper needs.
    """
    body = prometheus_exposition(snapshot, prefix=prefix).encode("utf-8")
    headers = (f"HTTP/1.0 200 OK\r\n"
               f"Content-Type: {_CONTENT_TYPE}\r\n"
               f"Content-Length: {len(body)}\r\n"
               f"Connection: close\r\n\r\n")
    return headers.encode("ascii") + body
