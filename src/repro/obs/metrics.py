"""Labeled counter/gauge/histogram registry for run telemetry.

The paper's evaluation is an observability exercise — abort breakdowns
by cause (Figures 1/6/7), version-list occupancy under coalescing
(section 4.4), commit-timestamp behaviour — and :class:`MetricsRegistry`
is where every layer reports those quantities for one run:

* the **MVM controller** observes the version-list length distribution
  at every install and its coalescing/GC reclaim counters;
* the **TM systems** observe backoff delays, commit-token waits and
  LogTM NACK stalls as they are charged;
* the **engine** counts begin stalls (Δ-protocol, overflow drains) and
  the span recorder (:mod:`repro.obs.spans`) feeds per-transaction
  duration/footprint histograms;
* :func:`collect_run_metrics` harvests the end-of-run aggregates that
  already exist as plain attributes (``RunStats`` counters, MVM
  counters, the global clock) so scalar totals cost *nothing* during
  the run.

Overhead contract: telemetry is **disabled by default**.  A disabled
run carries ``metrics = None`` everywhere, so the only cost on hot
paths is one ``is not None`` test (benchmarked ≤5% in
``benchmarks/test_telemetry_overhead.py``).  When enabled, instruments
live in plain dicts keyed by ``name{label=value,...}`` strings, and
:meth:`MetricsRegistry.snapshot` emits a canonical, JSON-safe, sorted
dict — byte-identical across processes and cache round-trips, which the
executor contract (:mod:`repro.harness.executor`) relies on.

Histograms use power-of-two buckets (upper bounds 1, 2, 4, ...), the
right shape for cycle counts and version depths: exact enough to read,
small enough to serialise per run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["MetricsRegistry", "collect_run_metrics", "metric_key"]


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _bucket_bound(value: int) -> int:
    """Upper bound of the power-of-two bucket containing ``value``."""
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


class _Histogram:
    """Power-of-two-bucketed distribution with count/sum/min/max."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        bound = _bucket_bound(value)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict:
        return {
            "buckets": {str(b): self.buckets[b]
                        for b in sorted(self.buckets)},
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """One run's labeled counters, gauges and histograms.

    All mutators take the metric name plus keyword labels; instruments
    are created on first touch.  The registry is deliberately dumb —
    no types to declare up front, no background threads — because one
    registry lives exactly as long as one simulation run.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # -- mutators --------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Add ``amount`` to the counter ``name{labels}``."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: int, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram()
        hist.observe(value)

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str, **labels: object) -> int:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        """Current value of a gauge (None when never set)."""
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[dict]:
        """Snapshot of one histogram (None when never observed)."""
        hist = self._histograms.get(metric_key(name, labels))
        return hist.to_dict() if hist else None

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical JSON-safe snapshot: sorted keys at every level.

        This is what :class:`~repro.harness.runner.RunResult` carries
        across the executor's process/cache boundary; two identical
        runs must produce byte-identical snapshots.
        """
        return {
            "counters": {k: self._counters[k]
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))


def collect_run_metrics(registry: MetricsRegistry, machine, tm,
                        stats) -> None:
    """Harvest end-of-run aggregates into ``registry``.

    Scalar totals (commit/abort counts, backoff and commit-wait cycles,
    MVM reclaim counters, global-clock position) already exist as plain
    attributes maintained on the hot path for free; harvesting them
    once at run end keeps the telemetry-off overhead at zero for these
    quantities.  Live histograms (version-list occupancy, span
    durations) are emitted at their sources instead, because a
    distribution cannot be reconstructed afterwards.
    """
    system = tm.name
    for thread in stats.threads:
        registry.inc("tm_backoff_cycles_total", thread.backoff_cycles,
                     system=system)
        registry.inc("tm_commit_wait_cycles_total",
                     thread.commit_wait_cycles, system=system)
    registry.inc("txn_commits_total", stats.total_commits, system=system)
    for cause, count in sorted(stats.abort_causes.items(),
                               key=lambda item: item[0].value):
        registry.inc("txn_aborts_total", count, system=system,
                     cause=cause.value)
    for retries, count in sorted(stats.retry_histogram.items()):
        registry.inc("txn_retries_to_commit", count, retries=retries)
    # MVM controller counters (coalescing/GC reclaim, conflict filter)
    for key, value in machine.mvm.stats().items():
        registry.inc(f"mvm_{key}", value)
    # global-clock behaviour: final position and advance rate, i.e. how
    # fast commit timestamps burn through the counter's range
    # (section 4.1 sizes the counter against exactly this rate)
    makespan = stats.makespan_cycles
    registry.set_gauge("clock_now", machine.clock.now)
    registry.set_gauge("clock_advance_per_kilocycle",
                       1000.0 * machine.clock.now / makespan
                       if makespan else 0.0)
    overflows = getattr(tm, "timestamp_overflows", 0)
    if overflows:
        registry.inc("clock_timestamp_overflows", overflows)
    # retry-policy and fault-injection outcomes (zero-cost when neither
    # a policy nor a fault plan was configured)
    if stats.escalations:
        registry.inc("txn_escalations_total", stats.escalations,
                     system=system)
    if stats.max_attempts_seen:
        registry.set_gauge("txn_max_attempts_seen",
                           stats.max_attempts_seen)
    faults = getattr(machine, "faults", None)
    if faults is not None:
        for site, count in faults.stats()["injected"].items():
            registry.inc("fault_injections_total", count, site=site)
