"""Telemetry exporters: JSONL span logs and Chrome trace events.

Two formats, two audiences:

* **JSONL** — one span per line, trivially greppable/streamable, the
  format persisted next to fuzzer repros so a shrunk failure's
  execution can be re-read without re-running anything;
* **Chrome trace events** — the ``traceEvents`` JSON consumed by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: each
  run is a *process*, each simulated thread a *track*, each
  transaction attempt a duration slice (``ph: "X"``) colored by
  outcome, with cause/retry/footprint details in ``args``.

Time unit: one simulated cycle is exported as one microsecond
(Perfetto's native slice unit), so a 20k-cycle transaction renders as
a 20ms slice — absolute numbers read directly off the ruler.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

__all__ = ["spans_to_jsonl", "load_spans_jsonl", "chrome_trace",
           "chrome_trace_events", "write_chrome_trace",
           "validate_span_log", "SPAN_SCHEMA_VERSION"]

#: span-log JSONL schema version, stamped on every exported line.
#: Version history:
#:
#: * (absent) / 1 — the pre-provenance schema: the thirteen core keys,
#:   always present, ``None`` where unknown;
#: * 2 — adds the optional ``killer_tid``/``killer_uid``/
#:   ``killer_label``/``killer_ts`` provenance fields, present only on
#:   aborts whose backend identified the killer.  Core keys unchanged,
#:   so version-1 logs (including the fuzzer's persisted
#:   ``repro-*.spans.jsonl`` artifacts) still load.
SPAN_SCHEMA_VERSION = 2

#: Chrome trace color names by span outcome (rendered by the trace UIs)
_OUTCOME_COLORS = {
    "commit": "good",
    "abort": "terrible",
    "open": "grey",
}


def spans_to_jsonl(spans: Sequence[Span],
                   extra: Optional[Dict[str, object]] = None) -> str:
    """Serialise spans as JSON Lines (one span dict per line).

    ``extra`` keys are merged into every line — the fuzzer uses this to
    stamp each span with the backend it ran under.
    """
    lines = []
    for span in spans:
        row = span.to_dict()
        row["schema_version"] = SPAN_SCHEMA_VERSION
        if extra:
            row.update(extra)
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def load_spans_jsonl(text: str) -> List[Span]:
    """Inverse of :func:`spans_to_jsonl` (extra keys are ignored)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


#: required span-log keys and the types their non-None values must have
_REQUIRED_SPAN_KEYS = {"uid": int, "thread": int, "label": str,
                       "begin_cycle": int}
_OPTIONAL_SPAN_KEYS = {"end_cycle": int, "outcome": str, "cause": str,
                       "retries": int, "reads": int, "writes": int,
                       "start_ts": int, "commit_ts": int,
                       "conflict_line": int, "schema_version": int,
                       "killer_tid": int, "killer_uid": int,
                       "killer_label": str, "killer_ts": int}
_VALID_OUTCOMES = {"commit", "abort", "open"}


def validate_span_log(text: str) -> List[str]:
    """Check a span-log JSONL document against the pinned schema.

    Returns a list of human-readable problems (empty = valid).  Both
    schema versions are accepted: version-1 logs simply have no
    ``schema_version`` or killer keys.  This is the contract the
    ROADMAP's trace-replay workload will consume, so it is deliberately
    strict about types and outcome values but tolerant of extra keys
    (the fuzzer stamps ``system``/``schedule`` onto every line).
    """
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(row, dict):
            problems.append(f"line {number}: not an object")
            continue
        for key, kind in _REQUIRED_SPAN_KEYS.items():
            if key not in row:
                problems.append(f"line {number}: missing {key!r}")
            elif not isinstance(row[key], kind) \
                    or isinstance(row[key], bool):
                problems.append(
                    f"line {number}: {key!r} must be {kind.__name__}, "
                    f"got {row[key]!r}")
        for key, kind in _OPTIONAL_SPAN_KEYS.items():
            value = row.get(key)
            if value is not None and (not isinstance(value, kind)
                                      or isinstance(value, bool)):
                problems.append(
                    f"line {number}: {key!r} must be {kind.__name__} "
                    f"or null, got {value!r}")
        outcome = row.get("outcome")
        if outcome is not None and outcome not in _VALID_OUTCOMES:
            problems.append(
                f"line {number}: unknown outcome {outcome!r}")
        version = row.get("schema_version")
        if isinstance(version, int) and not isinstance(version, bool) \
                and not 1 <= version <= SPAN_SCHEMA_VERSION:
            problems.append(
                f"line {number}: unsupported schema_version {version}")
        killer_keys = [k for k in ("killer_tid", "killer_uid")
                       if row.get(k) is not None]
        if killer_keys and row.get("outcome") != "abort":
            problems.append(
                f"line {number}: killer fields on a non-abort span")
    return problems


def chrome_trace_events(spans: Sequence[Span], pid: int = 0,
                        process_name: Optional[str] = None) -> List[dict]:
    """Trace events for one run: thread tracks + one slice per span."""
    events: List[dict] = []
    if process_name is not None:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process_name}})
    for tid in sorted({span.thread_id for span in spans}):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": f"thread {tid}"}})
    for span in spans:
        name = span.label
        if span.outcome == "abort":
            name = f"{span.label} ✗{span.cause or ''}"
        events.append({
            "name": name,
            "cat": span.outcome,
            "ph": "X",
            "ts": span.begin_cycle,
            "dur": max(0, span.duration),
            "pid": pid,
            "tid": span.thread_id,
            "cname": _OUTCOME_COLORS.get(span.outcome, "grey"),
            "args": {
                "outcome": span.outcome,
                "cause": span.cause,
                "retries": span.retries,
                "reads": span.reads,
                "writes": span.writes,
                "start_ts": span.start_ts,
                "commit_ts": span.commit_ts,
            },
        })
    return events


def chrome_trace(runs: Sequence[Tuple[str, Sequence[Span]]]) -> dict:
    """A complete Chrome trace document: one process per run.

    ``runs`` is a sequence of ``(name, spans)`` pairs; the name becomes
    the Perfetto process label (e.g. the experiment spec string).
    """
    events: List[dict] = []
    for pid, (name, spans) in enumerate(runs):
        events.extend(chrome_trace_events(spans, pid=pid,
                                          process_name=name))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 simulated cycle = 1us",
                      "producer": "repro.obs"},
    }


def write_chrome_trace(path, trace: dict) -> pathlib.Path:
    """Write a trace document as deterministic (sorted-key) JSON."""
    target = pathlib.Path(path)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(trace, sort_keys=True) + "\n",
                      encoding="utf-8")
    return target
