"""Online telemetry: windowed time-series sampling and anomaly alerts.

Everything the observability stack records elsewhere (metrics, spans,
profiles, provenance) is post-hoc — collected during a run and only
inspectable after it ends.  This module is the *online* layer:

* :class:`TimeSeriesSampler` is an engine tracer that buckets the
  run's signals (throughput, abort rate by cause, begin stalls,
  backoff/commit-wait cycles, MVM version-list occupancy, escalations)
  into fixed-width windows of **virtual cycle time**.  Window
  aggregates are exact and mergeable (counters plus the power-of-two
  histograms of :mod:`repro.obs.metrics`), so per-shard series combine
  into one without re-running anything.
* Each closed window is evaluated by an :class:`AnomalyDetector`
  (EWMA/threshold rules: :class:`AbortSpike`, :class:`StarvationStall`,
  :class:`LivelockSuspected`, :class:`VersionGrowth`) whose alerts
  flow into the exported series and the live event stream.
* A process-wide **publisher** hook (:func:`set_publisher` /
  :func:`publish`) streams window and alert events to whoever is
  listening — the executor's campaign monitor
  (:mod:`repro.obs.monitor`) in the parent process, or a
  multiprocessing queue when the run executes in a pool worker.
  Publishing is fire-and-forget: a broken listener never perturbs or
  kills a run.

Windows close *online* against a *watermark*: the minimum last-seen
clock over still-running threads.  The engine always advances the
thread with the smallest clock, so no event can ever arrive for a
window below the watermark — the rows streamed mid-run are final, and
identical to the end-of-run export.

Zero-overhead contract: nothing in this module is constructed unless a
run enables telemetry (``run_once(telemetry=True)``); the
poisoned-constructor audit in ``benchmarks/test_telemetry_overhead.py``
covers :class:`TimeSeriesSampler`.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.common.errors import AbortCause
from repro.obs.metrics import _Histogram
from repro.obs.spans import _merge_histogram_dicts
from repro.sim.engine import Tracer
from repro.tm.api import Txn

__all__ = [
    "TIMESERIES_SCHEMA_VERSION", "DEFAULT_WINDOW_CYCLES",
    "TimeSeriesSampler", "AnomalyDetector", "AlertRule", "AbortSpike",
    "StarvationStall", "LivelockSuspected", "VersionGrowth",
    "merge_window_rows", "merge_windows", "merge_timeseries",
    "timeseries_to_jsonl", "load_timeseries_jsonl",
    "validate_timeseries", "TimeSeriesWriter",
    "set_publisher", "publisher", "publish",
    "set_context", "context",
]

#: time-series schema version, stamped on every exported header row
TIMESERIES_SCHEMA_VERSION = 1

#: default window width in simulated cycles — wide enough that a
#: typical quick-profile run yields tens-to-hundreds of windows, narrow
#: enough that the anomaly rules see dynamics, not endpoints
DEFAULT_WINDOW_CYCLES = 10_000


# ----------------------------------------------------------------------
# live event publishing (process-wide, fire-and-forget)

_publisher: Optional[Callable[[dict], None]] = None
_context: Optional[str] = None


def set_publisher(fn: Optional[Callable[[dict], None]]):
    """Install the process-wide live-event sink; returns the old one.

    In the harness parent this is the campaign monitor; in a pool
    worker the executor's initializer installs ``queue.put`` so events
    stream back over the process boundary.  ``None`` disables
    publishing (the default).
    """
    global _publisher
    old = _publisher
    _publisher = fn
    return old


def publisher() -> Optional[Callable[[dict], None]]:
    """The currently installed live-event sink (None = disabled)."""
    return _publisher


def set_context(ctx: Optional[str]):
    """Set the spec identity stamped onto published events; returns old."""
    global _context
    old = _context
    _context = ctx
    return old


def context() -> Optional[str]:
    """The current spec identity (None outside a harness spec run)."""
    return _context


def publish(event: dict) -> None:
    """Send one event to the live sink, if any.

    Stamps the current spec context under ``"spec"`` (unless already
    present) and swallows every listener error: monitoring must never
    perturb, slow down differently, or kill the run being monitored.
    """
    sink = _publisher
    if sink is None:
        return
    if _context is not None and "spec" not in event:
        event = dict(event, spec=_context)
    try:
        sink(event)
    except Exception:  # noqa: BLE001 - monitoring is best-effort
        pass


# ----------------------------------------------------------------------
# window aggregates


class _Window:
    """Mutable aggregate of one virtual-time window (internal)."""

    __slots__ = ("begins", "commits", "aborts", "causes", "begin_stalls",
                 "stall_cycles", "backoff_cycles", "commit_wait_cycles",
                 "escalations", "wasted_cycles", "span_cycles", "versions")

    def __init__(self) -> None:
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self.causes: Dict[str, int] = {}
        self.begin_stalls = 0
        self.stall_cycles = 0
        self.backoff_cycles = 0
        self.commit_wait_cycles = 0
        self.escalations = 0
        self.wasted_cycles = 0
        self.span_cycles = _Histogram()
        self.versions = _Histogram()


#: integer counter fields of a window row, summed on merge
_WINDOW_COUNTERS = ("begins", "commits", "aborts", "begin_stalls",
                    "stall_cycles", "backoff_cycles",
                    "commit_wait_cycles", "escalations", "wasted_cycles")
#: histogram-valued fields of a window row, merged bucket-wise
_WINDOW_HISTOGRAMS = ("span_cycles", "versions")


def _abort_rate(commits: int, aborts: int) -> float:
    attempts = commits + aborts
    return aborts / attempts if attempts else 0.0


class TimeSeriesSampler(Tracer):
    """Engine tracer bucketing run signals into virtual-time windows.

    A passive observer: it reads thread clocks and run statistics off
    the engine (handed over via ``attach_engine``, the same duck-typed
    hook :class:`~repro.obs.spans.SpanRecorder` uses) and never mutates
    simulation state, so the schedule — and every statistic and RNG
    draw — is identical with or without the sampler in the tracer slot.

    Exactness: every begin/commit/abort/stall event lands in exactly
    one window (the window containing the owning thread's clock at the
    event), so window counters sum to the run totals; backoff and
    commit-wait cycles are charged as per-thread deltas of the
    ``RunStats`` counters the TM systems already maintain.  Closed
    windows are immutable — the watermark (minimum clock over running
    threads) guarantees no late events — which is what makes streaming
    them mid-run sound.
    """

    def __init__(self, window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 detector: Optional["AnomalyDetector"] = None,
                 flight=None):
        if window_cycles <= 0:
            raise ValueError(
                f"window_cycles must be positive, got {window_cycles}")
        self.window_cycles = window_cycles
        self.detector = detector if detector is not None \
            else AnomalyDetector()
        #: flight recorder fed each closed window (None = no recorder)
        self.flight = flight
        self.alerts: List[dict] = []
        self._engine = None
        self._windows: Dict[int, _Window] = {}
        #: next window index to close (everything below is closed)
        self._closed_upto = 0
        #: per-thread last-seen clock (the watermark inputs)
        self._thread_clock: Dict[int, int] = {}
        #: per-thread open-transaction (begin_clock, label)
        self._open: Dict[int, tuple] = {}
        #: per-thread last-harvested backoff/commit-wait totals
        self._last_backoff: Dict[int, int] = {}
        self._last_wait: Dict[int, int] = {}
        self._last_escalations = 0
        self._seeded = False
        self._finished = False

    def attach_engine(self, engine) -> None:
        """Called by the engine so the sampler can read clocks/stats."""
        self._engine = engine

    # -- event plumbing --------------------------------------------------

    def _clock(self, thread_id: int) -> int:
        if self._engine is None:
            return 0
        return self._engine.threads[thread_id].clock

    def _window(self, clock: int) -> _Window:
        index = clock // self.window_cycles
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        return window

    def _note(self, thread_id: int, clock: int) -> None:
        """Record the event clock and close fully-past windows."""
        if not self._seeded and self._engine is not None:
            # seed every thread at its current clock so an early event
            # from a fast thread cannot advance the watermark past a
            # thread that has not produced its first event yet
            for thread in self._engine.threads:
                self._thread_clock.setdefault(thread.thread_id,
                                              thread.clock)
            self._seeded = True
        self._thread_clock[thread_id] = clock
        engine = self._engine
        if engine is None:
            return
        threads = engine.threads
        live = [c for tid, c in self._thread_clock.items()
                if not threads[tid].done]
        if not live:
            return
        watermark = min(live)
        # window W is fully past once every running thread's clock is
        # at or beyond its end — no future event can land inside it
        target = watermark // self.window_cycles
        while self._closed_upto < target:
            self._close(self._closed_upto)
            self._closed_upto += 1

    def _harvest(self, window: _Window, thread_id: int) -> None:
        """Charge RunStats counter deltas for ``thread_id`` to ``window``."""
        engine = self._engine
        if engine is None:
            return
        tstats = engine.stats.threads[thread_id]
        backoff = tstats.backoff_cycles
        delta = backoff - self._last_backoff.get(thread_id, 0)
        if delta:
            window.backoff_cycles += delta
            self._last_backoff[thread_id] = backoff
        wait = tstats.commit_wait_cycles
        delta = wait - self._last_wait.get(thread_id, 0)
        if delta:
            window.commit_wait_cycles += delta
            self._last_wait[thread_id] = wait
        escalations = engine.stats.escalations
        if escalations != self._last_escalations:
            window.escalations += escalations - self._last_escalations
            self._last_escalations = escalations

    # -- tracer hooks ----------------------------------------------------

    def on_begin(self, txn: Txn) -> None:
        tid = txn.thread_id
        clock = self._clock(tid)
        self._open[tid] = (clock, txn.label)
        self._window(clock).begins += 1
        self._note(tid, clock)

    def on_stall(self, thread_id: int, cycles: int) -> None:
        clock = self._clock(thread_id)
        window = self._window(clock)
        window.begin_stalls += 1
        window.stall_cycles += cycles
        self._note(thread_id, clock)

    def on_commit(self, txn: Txn) -> None:
        tid = txn.thread_id
        clock = self._clock(tid)
        window = self._window(clock)
        window.commits += 1
        opened = self._open.pop(tid, None)
        if opened is not None:
            window.span_cycles.observe(clock - opened[0])
        self._harvest(window, tid)
        if self.flight is not None and opened is not None:
            self.flight.note_span({
                "thread": tid, "label": txn.label, "outcome": "commit",
                "cause": None, "end_cycle": clock,
                "cycles": clock - opened[0]})
        self._note(tid, clock)

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        tid = txn.thread_id
        clock = self._clock(tid)
        window = self._window(clock)
        window.aborts += 1
        name = cause.value
        window.causes[name] = window.causes.get(name, 0) + 1
        opened = self._open.pop(tid, None)
        if opened is not None:
            duration = clock - opened[0]
            window.span_cycles.observe(duration)
            window.wasted_cycles += duration
        self._harvest(window, tid)
        if self.flight is not None and opened is not None:
            self.flight.note_span({
                "thread": tid, "label": txn.label, "outcome": "abort",
                "cause": name, "end_cycle": clock,
                "cycles": clock - opened[0]})
        self._note(tid, clock)

    # -- window closing --------------------------------------------------

    def _row(self, index: int) -> dict:
        """Canonical JSON-safe row for window ``index``."""
        window = self._windows.get(index)
        if window is None:
            window = _Window()
        width = self.window_cycles
        return {
            "kind": "window",
            "window": index,
            "start_cycle": index * width,
            "end_cycle": (index + 1) * width,
            "begins": window.begins,
            "commits": window.commits,
            "aborts": window.aborts,
            "abort_rate": _abort_rate(window.commits, window.aborts),
            "causes": {k: window.causes[k]
                       for k in sorted(window.causes)},
            "begin_stalls": window.begin_stalls,
            "stall_cycles": window.stall_cycles,
            "backoff_cycles": window.backoff_cycles,
            "commit_wait_cycles": window.commit_wait_cycles,
            "escalations": window.escalations,
            "wasted_cycles": window.wasted_cycles,
            "span_cycles": (window.span_cycles.to_dict()
                            if window.span_cycles.count else None),
            "versions": (window.versions.to_dict()
                         if window.versions.count else None),
        }

    def _close(self, index: int) -> None:
        """Finalize window ``index``: sample gauges, alert, stream."""
        engine = self._engine
        if engine is not None:
            # version-list occupancy, sampled once per window close (a
            # full occupancy scan per event would be prohibitive)
            occupancy = engine.machine.mvm.max_live_versions()
            self._window(index * self.window_cycles).versions.observe(
                occupancy)
        row = self._row(index)
        for alert in self.detector.observe(row):
            self.alerts.append(alert)
            if self.flight is not None:
                self.flight.note_alert(alert)
            publish(dict(alert, event="alert"))
        if self.flight is not None:
            self.flight.note_window(row)
        publish(dict(row, event="window"))

    def finish(self) -> None:
        """Close every remaining window (idempotent; run end or death)."""
        if self._finished:
            return
        self._finished = True
        last = max(self._windows, default=self._closed_upto - 1)
        while self._closed_upto <= last:
            self._close(self._closed_upto)
            self._closed_upto += 1

    def export(self) -> dict:
        """The canonical, mergeable time-series document for this run."""
        self.finish()
        rows = [self._row(index) for index in sorted(self._windows)]
        return {
            "schema_version": TIMESERIES_SCHEMA_VERSION,
            "window_cycles": self.window_cycles,
            "windows": rows,
            "alerts": list(self.alerts),
            "totals": {
                "begins": sum(r["begins"] for r in rows),
                "commits": sum(r["commits"] for r in rows),
                "aborts": sum(r["aborts"] for r in rows),
                "begin_stalls": sum(r["begin_stalls"] for r in rows),
                "escalations": sum(r["escalations"] for r in rows),
                "wasted_cycles": sum(r["wasted_cycles"] for r in rows),
            },
        }


# ----------------------------------------------------------------------
# merging (exact, associative, order-independent)


def merge_window_rows(a: dict, b: dict) -> dict:
    """Merge two window rows of the same index into one exact aggregate."""
    if a["window"] != b["window"]:
        raise ValueError(f"cannot merge window {a['window']} "
                         f"with window {b['window']}")
    merged = {"kind": "window", "window": a["window"],
              "start_cycle": a["start_cycle"],
              "end_cycle": a["end_cycle"]}
    for key in _WINDOW_COUNTERS:
        merged[key] = a[key] + b[key]
    merged["abort_rate"] = _abort_rate(merged["commits"],
                                       merged["aborts"])
    causes = dict(a["causes"])
    for cause, count in b["causes"].items():
        causes[cause] = causes.get(cause, 0) + count
    merged["causes"] = {k: causes[k] for k in sorted(causes)}
    for key in _WINDOW_HISTOGRAMS:
        merged[key] = _merge_histogram_dicts(a.get(key), b.get(key))
    # canonical key order, independent of merge direction
    return {key: merged[key] for key in _row_key_order(merged)}


def _row_key_order(row: dict) -> List[str]:
    order = ["kind", "window", "start_cycle", "end_cycle", "begins",
             "commits", "aborts", "abort_rate", "causes", "begin_stalls",
             "stall_cycles", "backoff_cycles", "commit_wait_cycles",
             "escalations", "wasted_cycles", "span_cycles", "versions"]
    return [key for key in order if key in row]


def merge_windows(a: List[dict], b: List[dict]) -> List[dict]:
    """Merge two window-row lists by index (union of windows)."""
    by_index: Dict[int, dict] = {row["window"]: row for row in a}
    for row in b:
        present = by_index.get(row["window"])
        by_index[row["window"]] = (row if present is None
                                   else merge_window_rows(present, row))
    return [by_index[index] for index in sorted(by_index)]


def merge_timeseries(a: dict, b: dict) -> dict:
    """Merge two :meth:`TimeSeriesSampler.export` documents.

    Exact and mergeable by construction — counters sum, histograms
    merge bucket-wise — so the operation is associative and
    order-independent (``tests/obs/test_live.py`` pins both with a
    hypothesis property).  Alerts concatenate in (window, rule) order;
    they are observations, not aggregates.
    """
    if a["window_cycles"] != b["window_cycles"]:
        raise ValueError("cannot merge series with different window "
                         f"widths ({a['window_cycles']} vs "
                         f"{b['window_cycles']})")
    windows = merge_windows(a["windows"], b["windows"])
    alerts = sorted(a["alerts"] + b["alerts"],
                    key=lambda alert: (alert["window"], alert["rule"],
                                       alert["detail"]))
    totals: Dict[str, int] = {}
    for key in sorted(set(a["totals"]) | set(b["totals"])):
        totals[key] = a["totals"].get(key, 0) + b["totals"].get(key, 0)
    return {
        "schema_version": max(a["schema_version"], b["schema_version"]),
        "window_cycles": a["window_cycles"],
        "windows": windows,
        "alerts": alerts,
        "totals": totals,
    }


# ----------------------------------------------------------------------
# anomaly detection


class AlertRule:
    """Base class of one online anomaly rule.

    ``observe`` sees every closed window row in order and returns an
    alert dict when the rule fires, else None.  Rules fire on rising
    edges only — a persisting condition raises one alert per episode,
    not one per window.
    """

    name = "AlertRule"

    def observe(self, row: dict) -> Optional[dict]:  # noqa: D102
        raise NotImplementedError

    def _alert(self, row: dict, detail: str, value: float) -> dict:
        return {"kind": "alert", "rule": self.name,
                "window": row["window"], "detail": detail,
                "value": value}


class AbortSpike(AlertRule):
    """Abort rate jumped well above its smoothed history.

    Fires when a window's abort rate exceeds both an absolute floor
    and ``factor`` times the EWMA of preceding windows, with enough
    aborts to matter.  The first window only seeds the EWMA.
    """

    name = "AbortSpike"

    def __init__(self, alpha: float = 0.3, factor: float = 3.0,
                 min_rate: float = 0.5, min_aborts: int = 8):
        self.alpha = alpha
        self.factor = factor
        self.min_rate = min_rate
        self.min_aborts = min_aborts
        self._ewma: Optional[float] = None
        self._hot = False

    def observe(self, row: dict) -> Optional[dict]:
        rate = row["abort_rate"]
        alert = None
        spiking = (self._ewma is not None
                   and row["aborts"] >= self.min_aborts
                   and rate >= max(self.min_rate,
                                   self.factor * self._ewma))
        if spiking and not self._hot:
            alert = self._alert(
                row, f"abort rate {rate:.2f} vs EWMA "
                     f"{self._ewma:.2f} ({row['aborts']} aborts)",
                rate)
        self._hot = spiking
        if self._ewma is None:
            self._ewma = rate
        else:
            self._ewma += self.alpha * (rate - self._ewma)
        return alert


class StarvationStall(AlertRule):
    """Begins keep stalling while nothing commits.

    Fires after ``windows`` consecutive windows with zero commits and
    at least one begin stall each — the signature of a stalled
    Δ-protocol, an overflow drain that never ends, or an escalation
    queue that cannot acquire the token.
    """

    name = "StarvationStall"

    def __init__(self, windows: int = 3):
        self.windows = windows
        self._streak = 0

    def observe(self, row: dict) -> Optional[dict]:
        if row["commits"] == 0 and row["begin_stalls"] > 0:
            self._streak += 1
            if self._streak == self.windows:
                return self._alert(
                    row, f"no commits for {self._streak} windows with "
                         f"begin stalls in every one", float(self._streak))
        else:
            self._streak = 0
        return None


class LivelockSuspected(AlertRule):
    """Transactions keep aborting but nothing ever commits.

    Fires after ``windows`` consecutive commit-free windows that still
    saw aborts (``min_aborts`` total) — work is being attempted and
    thrown away, the livelock signature the retry policy's escalation
    exists to break.
    """

    name = "LivelockSuspected"

    def __init__(self, windows: int = 4, min_aborts: int = 8):
        self.windows = windows
        self.min_aborts = min_aborts
        self._streak = 0
        self._streak_aborts = 0
        self._fired = False

    def observe(self, row: dict) -> Optional[dict]:
        if row["commits"] == 0 and row["aborts"] > 0:
            self._streak += 1
            self._streak_aborts += row["aborts"]
            if (not self._fired and self._streak >= self.windows
                    and self._streak_aborts >= self.min_aborts):
                self._fired = True
                return self._alert(
                    row, f"{self._streak_aborts} aborts and 0 commits "
                         f"over {self._streak} windows",
                    float(self._streak_aborts))
        elif row["commits"] > 0:
            self._streak = 0
            self._streak_aborts = 0
            self._fired = False
        return None


class VersionGrowth(AlertRule):
    """MVM version-list occupancy is growing past its history.

    Fires when the sampled per-window occupancy maximum exceeds both
    ``min_versions`` and ``factor`` times its EWMA — version lists
    outgrowing what coalescing reclaims, the memory-pressure signature
    of section 4.4's overflow machinery falling behind.
    """

    name = "VersionGrowth"

    def __init__(self, alpha: float = 0.3, factor: float = 2.0,
                 min_versions: int = 8):
        self.alpha = alpha
        self.factor = factor
        self.min_versions = min_versions
        self._ewma: Optional[float] = None
        self._hot = False

    def observe(self, row: dict) -> Optional[dict]:
        histogram = row.get("versions")
        if not histogram or histogram["max"] is None:
            return None
        occupancy = histogram["max"]
        alert = None
        growing = (self._ewma is not None
                   and occupancy >= self.min_versions
                   and occupancy >= self.factor * self._ewma)
        if growing and not self._hot:
            alert = self._alert(
                row, f"version-list occupancy {occupancy} vs EWMA "
                     f"{self._ewma:.1f}", float(occupancy))
        self._hot = growing
        if self._ewma is None:
            self._ewma = float(occupancy)
        else:
            self._ewma += self.alpha * (occupancy - self._ewma)
        return alert


class AnomalyDetector:
    """Evaluates a pipeline of alert rules on every closed window."""

    def __init__(self, rules: Optional[List[AlertRule]] = None):
        self.rules = rules if rules is not None else [
            AbortSpike(), StarvationStall(), LivelockSuspected(),
            VersionGrowth()]

    def observe(self, row: dict) -> List[dict]:
        """Alerts fired by this window (usually empty)."""
        alerts = []
        for rule in self.rules:
            alert = rule.observe(row)
            if alert is not None:
                alerts.append(alert)
        return alerts


# ----------------------------------------------------------------------
# JSONL export, streaming sink, and the schema checker


def timeseries_to_jsonl(export: dict,
                        extra: Optional[dict] = None) -> str:
    """Serialise an exported series as JSON Lines.

    One header row, then one row per window, then one per alert —
    the on-disk form ``docs/timeseries-schema.md`` documents and
    :func:`validate_timeseries` checks.  ``extra`` keys are merged
    into every line (the harness stamps the spec string).
    """
    header = {"kind": "header",
              "schema_version": export["schema_version"],
              "window_cycles": export["window_cycles"],
              "totals": export["totals"]}
    rows = [header] + list(export["windows"]) + list(export["alerts"])
    lines = []
    for row in rows:
        if extra:
            row = dict(row, **extra)
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def load_timeseries_jsonl(text: str) -> dict:
    """Inverse of :func:`timeseries_to_jsonl` (tolerates streamed logs).

    Returns ``{"headers": [...], "windows": [...], "alerts": [...]}``;
    a single-run document has exactly one header, a streamed watch
    artifact one per monitored spec.
    """
    headers: List[dict] = []
    windows: List[dict] = []
    alerts: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.get("kind")
        if kind == "header":
            headers.append(row)
        elif kind == "window":
            windows.append(row)
        elif kind == "alert":
            alerts.append(row)
    return {"headers": headers, "windows": windows, "alerts": alerts}


#: required integer fields of a window row (all non-negative)
_WINDOW_INT_KEYS = ("window", "start_cycle", "end_cycle") \
    + _WINDOW_COUNTERS


def _check_histogram(value, line_number: int, key: str,
                     problems: List[str]) -> None:
    if value is None:
        return
    if not isinstance(value, dict):
        problems.append(f"line {line_number}: {key!r} must be a "
                        f"histogram object or null")
        return
    for field in ("buckets", "count", "sum", "min", "max"):
        if field not in value:
            problems.append(
                f"line {line_number}: {key!r} missing {field!r}")


def validate_timeseries(text: str) -> List[str]:
    """Check a time-series JSONL document against the pinned schema.

    Returns human-readable problems (empty = valid).  Accepts both
    single-run exports and streamed watch artifacts: extra keys (the
    spec stamp) are tolerated, multiple headers are legal, and rows
    may interleave across specs.
    """
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(row, dict):
            problems.append(f"line {number}: not an object")
            continue
        kind = row.get("kind")
        if kind == "header":
            version = row.get("schema_version")
            if not isinstance(version, int) or isinstance(version, bool) \
                    or not 1 <= version <= TIMESERIES_SCHEMA_VERSION:
                problems.append(
                    f"line {number}: bad schema_version "
                    f"{version!r}")
            width = row.get("window_cycles")
            if width is not None and (not isinstance(width, int)
                                      or isinstance(width, bool)
                                      or width <= 0):
                problems.append(
                    f"line {number}: window_cycles must be a positive "
                    f"int or null, got {width!r}")
        elif kind == "window":
            for key in _WINDOW_INT_KEYS:
                value = row.get(key)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    problems.append(
                        f"line {number}: {key!r} must be a "
                        f"non-negative int, got {value!r}")
            rate = row.get("abort_rate")
            if not isinstance(rate, (int, float)) \
                    or isinstance(rate, bool) or not 0.0 <= rate <= 1.0:
                problems.append(
                    f"line {number}: abort_rate must be in [0, 1], "
                    f"got {rate!r}")
            causes = row.get("causes")
            if not isinstance(causes, dict) or any(
                    not isinstance(k, str) or not isinstance(v, int)
                    or isinstance(v, bool) for k, v in causes.items()):
                problems.append(
                    f"line {number}: causes must map cause -> count")
            if isinstance(row.get("start_cycle"), int) \
                    and isinstance(row.get("end_cycle"), int) \
                    and row["end_cycle"] <= row["start_cycle"]:
                problems.append(
                    f"line {number}: end_cycle must exceed start_cycle")
            for key in _WINDOW_HISTOGRAMS:
                _check_histogram(row.get(key), number, key, problems)
        elif kind == "alert":
            if not isinstance(row.get("rule"), str):
                problems.append(f"line {number}: alert missing 'rule'")
            if not isinstance(row.get("window"), int) \
                    or isinstance(row.get("window"), bool):
                problems.append(f"line {number}: alert missing 'window'")
            if not isinstance(row.get("detail"), str):
                problems.append(f"line {number}: alert missing 'detail'")
        else:
            problems.append(f"line {number}: unknown kind {kind!r}")
    return problems


class TimeSeriesWriter:
    """Streaming JSONL sink for live window/alert events.

    Install alongside the campaign monitor (the CLI's ``watch
    --series-out``) to persist the live stream as a valid time-series
    artifact: one header per monitored spec (written on that spec's
    first window), then window and alert rows as they arrive.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        self._specs_seen: set = set()
        self.rows_written = 0

    def __call__(self, event: dict) -> None:
        kind = event.get("event")
        if kind not in ("window", "alert"):
            return
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        spec = event.get("spec")
        if kind == "window" and spec not in self._specs_seen:
            self._specs_seen.add(spec)
            header = {"kind": "header",
                      "schema_version": TIMESERIES_SCHEMA_VERSION,
                      "window_cycles": (event["end_cycle"]
                                        - event["start_cycle"])}
            if spec is not None:
                header["spec"] = spec
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self.rows_written += 1
        row = {key: value for key, value in event.items()
               if key != "event"}
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self.rows_written += 1
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the artifact (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
