"""Deterministic cycle-attribution profiler (phase accounting + heatmaps).

Answers the question the span/metric layers cannot: **where do the
cycles go** inside one run.  The engine charges every simulated cycle
to exactly one top-level *phase* as it advances a thread clock —
``begin``, ``begin_stall``, ``read``, ``write``, ``compute``,
``stall`` (NACK retries), ``commit``, ``abort`` — so the profiler's
per-thread phase totals sum **exactly** to the thread's final clock.
That is the *cycle-conservation invariant*, checked by
:meth:`CycleProfiler.check_conservation` and enforced for every
backend by ``tests/obs/test_profile.py``.

Within a phase, the layers that know the breakdown attribute
*sub-phases*: the TM base class attributes ``backoff`` (under
``abort``) and ``token_wait`` (under ``commit``); SI-TM attributes
``install`` (version-install burst), SSI-TM ``validate``
(dangerous-structure scan), LogTM ``undo`` (software rollback walk);
the engine itself attributes ``restart_jitter``.  Sub-phases never
exceed their parent; the unattributed remainder is the phase's fixed
overhead (``txn_overhead_cycles`` and friends).

The profiler is also an engine :class:`~repro.sim.engine.Tracer`: its
``on_write``/``on_abort`` hooks build the **conflict heatmap** — which
lines (and which source sites touching them) cause aborts, joined with
the MVM's per-line install/coalesce/GC events so the report
(:func:`repro.obs.report.conflict_heatmap`) can say whether coalescing
is absorbing the hot lines.  Putting it in the tracer slot (alone or
inside a :class:`~repro.obs.spans.MultiTracer`) wires everything:
``attach_engine`` plants the profiler on the engine, the machine and
the MVM controller.

Overhead contract: identical to the metrics registry's.  A run without
profiling carries ``profiler = None`` on the engine, machine and MVM
controller, so each instrumented site costs one ``is not None`` test
(covered by ``benchmarks/test_telemetry_overhead.py``); profiling a
run never perturbs it — schedules and statistics are byte-identical
either way.

Exports: :meth:`CycleProfiler.snapshot` is canonical JSON (sorted
keys, string-keyed maps) that survives the executor's process/cache
boundary, and :func:`collapsed_stacks` renders any snapshot in the
collapsed-stack format flamegraph tooling consumes
(``flamegraph.pl``, speedscope, inferno: one ``frame;frame value``
line per stack).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import AbortCause, SimulationError
from repro.sim.engine import Tracer
from repro.tm.api import Txn

__all__ = ["CycleProfiler", "collapsed_stacks", "phase_shares",
           "PHASES", "SUB_PHASES"]

#: top-level phases, in pipeline order — every cycle the engine charges
#: to a thread clock lands in exactly one of these
PHASES = ("begin", "begin_stall", "read", "write", "compute", "stall",
          "commit", "abort")

#: known sub-phase attributions, by parent phase (informational — the
#: profiler accepts any name; these are what the instrumented layers emit)
SUB_PHASES = {
    "commit": ("token_wait", "install", "validate"),
    "abort": ("backoff", "undo", "restart_jitter"),
}

#: MVM event kinds tracked per line for the conflict heatmap
MVM_EVENTS = ("install", "coalesce", "gc")


class CycleProfiler(Tracer):
    """Hierarchical per-thread cycle accounting plus conflict attribution.

    The engine calls :meth:`account` at every thread-clock increment
    (one call per charged phase), instrumented layers call
    :meth:`sub_account` for the portions they can attribute, and the
    MVM controller calls :meth:`mvm_event` per install/coalesce/GC.
    As a tracer, ``on_write`` maps lines to the source sites touching
    them and ``on_abort`` reads ``txn.conflict_line`` (stamped by the
    backend that detected the conflict) into the per-line abort table.
    """

    def __init__(self) -> None:
        #: thread -> phase -> cycles (top level; conserved)
        self._phases: Dict[int, Dict[str, int]] = {}
        #: thread -> parent phase -> sub-phase -> cycles
        self._sub: Dict[int, Dict[str, Dict[str, int]]] = {}
        #: line -> abort-cause value -> count (conflict heatmap core)
        self._conflict_lines: Dict[int, Dict[str, int]] = {}
        #: line -> source site -> write count (heatmap line->code mapping)
        self._line_sites: Dict[int, Dict[str, int]] = {}
        #: event kind -> line -> count (is coalescing absorbing the line?)
        self._mvm_events: Dict[str, Dict[int, int]] = {}
        #: aborts whose detecting backend knew no single conflicting line
        self.unattributed_aborts = 0
        #: thread -> cycles burned inside attempts that ended in abort
        #: (each abort charges end-clock minus begin-clock, the exact
        #: wasted-work quantum the span recorder sees as abort-span
        #: duration — the ledger reconciliation in the runner depends on
        #: the two agreeing to the cycle)
        self._wasted: Dict[int, int] = {}
        #: thread -> clock at the most recent on_begin (open attempt)
        self._attempt_begin: Dict[int, int] = {}
        self._amap = None
        self._engine = None

    # -- wiring ----------------------------------------------------------

    def attach_engine(self, engine) -> None:
        """Plant this profiler on the engine, machine and MVM controller.

        Called by the engine (directly or via
        :class:`~repro.obs.spans.MultiTracer`) when the profiler sits in
        the tracer slot; from then on every ``profiler is not None``
        guard along the hot paths fires.
        """
        engine.profiler = self
        self._engine = engine
        machine = getattr(engine, "machine", None)
        if machine is not None:
            machine.profiler = self
            machine.mvm.profiler = self
            self._amap = machine.address_map

    # -- accounting ------------------------------------------------------

    def account(self, thread_id: int, phase: str, cycles: int) -> None:
        """Charge ``cycles`` of ``thread_id``'s clock to ``phase``."""
        phases = self._phases.get(thread_id)
        if phases is None:
            phases = self._phases[thread_id] = {}
        phases[phase] = phases.get(phase, 0) + cycles

    def sub_account(self, thread_id: int, parent: str, sub: str,
                    cycles: int) -> None:
        """Attribute ``cycles`` of ``parent``'s charge to sub-phase ``sub``.

        Sub-phases refine a top-level phase; they never add to the
        thread total (the parent already carries the cycles).
        """
        if not cycles:
            return
        parents = self._sub.get(thread_id)
        if parents is None:
            parents = self._sub[thread_id] = {}
        subs = parents.get(parent)
        if subs is None:
            subs = parents[parent] = {}
        subs[sub] = subs.get(sub, 0) + cycles

    def mvm_event(self, kind: str, line: int, count: int = 1) -> None:
        """Record an MVM controller event (install/coalesce/gc) on ``line``."""
        lines = self._mvm_events.get(kind)
        if lines is None:
            lines = self._mvm_events[kind] = {}
        lines[line] = lines.get(line, 0) + count

    # -- tracer hooks (conflict heatmap + wasted-work tally) -------------

    def _thread_clock(self, thread_id: int) -> Optional[int]:
        if self._engine is None:
            return None
        return self._engine.threads[thread_id].clock

    def on_begin(self, txn: Txn) -> None:
        clock = self._thread_clock(txn.thread_id)
        if clock is not None:
            self._attempt_begin[txn.thread_id] = clock

    def on_commit(self, txn: Txn) -> None:
        self._attempt_begin.pop(txn.thread_id, None)

    def on_write(self, txn: Txn, addr: int, site: str,
                 value: object = None) -> None:
        if self._amap is None:
            return
        line = self._amap.line_of(addr)
        sites = self._line_sites.get(line)
        if sites is None:
            sites = self._line_sites[line] = {}
        sites[site] = sites.get(site, 0) + 1

    def on_abort(self, txn: Txn, cause: AbortCause) -> None:
        tid = txn.thread_id
        begin = self._attempt_begin.pop(tid, None)
        if begin is not None:
            clock = self._thread_clock(tid)
            if clock is not None:
                self._wasted[tid] = self._wasted.get(tid, 0) + clock - begin
        line = txn.conflict_line
        if line is None:
            self.unattributed_aborts += 1
            return
        causes = self._conflict_lines.get(line)
        if causes is None:
            causes = self._conflict_lines[line] = {}
        causes[cause.value] = causes.get(cause.value, 0) + 1

    # -- invariants ------------------------------------------------------

    def check_conservation(self, thread_clocks: Sequence[int],
                           wasted_by_thread: Optional[Dict[int, int]]
                           = None) -> None:
        """Verify phase cycles sum exactly to each thread's final clock.

        Also verifies sub-phase containment (no sub-phase group exceeds
        its parent) and that no thread's wasted-cycle tally exceeds its
        clock.  When ``wasted_by_thread`` is given (the span ledger's
        per-victim-thread totals), it must match this profiler's tally
        *exactly* — wasted work is counted by two independent observers
        (abort-span durations vs. begin/abort clock deltas) and any
        disagreement means cycles were lost or invented.  Raises
        :class:`~repro.common.errors.SimulationError` on any violation —
        a profiler that loses or invents cycles would silently corrupt
        every phase-share number downstream.
        """
        for thread_id, clock in enumerate(thread_clocks):
            total = sum(self._phases.get(thread_id, {}).values())
            if total != clock:
                raise SimulationError(
                    f"cycle-conservation violation on thread {thread_id}: "
                    f"phases sum to {total}, engine clock is {clock}")
            wasted = self._wasted.get(thread_id, 0)
            if wasted > clock:
                raise SimulationError(
                    f"wasted-cycle overflow on thread {thread_id}: "
                    f"{wasted} wasted > clock {clock}")
        if wasted_by_thread is not None:
            threads = set(self._wasted) | set(wasted_by_thread)
            for thread_id in sorted(threads):
                mine = self._wasted.get(thread_id, 0)
                theirs = wasted_by_thread.get(thread_id, 0)
                if mine != theirs:
                    raise SimulationError(
                        f"wasted-cycle reconciliation failure on thread "
                        f"{thread_id}: profiler tallied {mine}, span "
                        f"ledger charged {theirs}")
        for thread_id, parents in self._sub.items():
            phases = self._phases.get(thread_id, {})
            for parent, subs in parents.items():
                attributed = sum(subs.values())
                if attributed > phases.get(parent, 0):
                    raise SimulationError(
                        f"sub-phase overflow on thread {thread_id}: "
                        f"{parent} sub-phases sum to {attributed} > "
                        f"{phases.get(parent, 0)}")

    # -- accessors -------------------------------------------------------

    def phase_cycles(self, phase: str) -> int:
        """Total cycles charged to ``phase`` across all threads."""
        return sum(phases.get(phase, 0)
                   for phases in self._phases.values())

    def total_cycles(self) -> int:
        """All charged cycles (equals the sum of final thread clocks)."""
        return sum(sum(phases.values()) for phases in self._phases.values())

    def wasted_cycles_by_thread(self) -> Dict[int, int]:
        """Per-thread cycles burned inside attempts that later aborted."""
        return dict(self._wasted)

    def wasted_cycles(self) -> int:
        """Total cycles across all threads spent on aborted attempts."""
        return sum(self._wasted.values())

    # -- serialization ---------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical JSON-safe snapshot (sorted, string-keyed, versioned).

        This is what :class:`~repro.harness.runner.RunResult.phases`
        carries across the executor's process/cache boundary; identical
        runs produce byte-identical snapshots.
        """
        return {
            # version 2 added "wasted_cycles"; downstream consumers
            # (phase_shares, bench artifacts) read only "threads", so
            # version-1 snapshots remain loadable
            "version": 2,
            "threads": {
                str(tid): {
                    phase: {
                        "cycles": cycles,
                        "sub": {
                            sub: self._sub.get(tid, {})
                                         .get(phase, {})[sub]
                            for sub in sorted(
                                self._sub.get(tid, {}).get(phase, {}))
                        },
                    }
                    for phase, cycles in sorted(phases.items())
                }
                for tid, phases in sorted(self._phases.items())
            },
            "conflict_lines": {
                str(line): {cause: count
                            for cause, count in sorted(causes.items())}
                for line, causes in sorted(self._conflict_lines.items())
            },
            "line_sites": {
                str(line): {site: count
                            for site, count in sorted(sites.items())}
                for line, sites in sorted(self._line_sites.items())
            },
            "mvm_events": {
                kind: {str(line): count
                       for line, count in sorted(lines.items())}
                for kind, lines in sorted(self._mvm_events.items())
            },
            "unattributed_aborts": self.unattributed_aborts,
            "wasted_cycles": {str(tid): cycles
                              for tid, cycles in sorted(self._wasted.items())},
        }


def phase_shares(snapshot: dict) -> Dict[str, float]:
    """Fraction of all charged cycles per top-level phase.

    The deterministic per-phase breakdown ``sitm-harness bench``
    records: shares of a conserved total are comparable across code
    versions even when absolute cycle counts legitimately move.
    """
    totals: Dict[str, int] = {}
    for phases in snapshot.get("threads", {}).values():
        for phase, entry in phases.items():
            totals[phase] = totals.get(phase, 0) + entry["cycles"]
    grand = sum(totals.values())
    if not grand:
        return {}
    return {phase: totals[phase] / grand for phase in sorted(totals)}


def collapsed_stacks(snapshot: dict, per_thread: bool = False,
                     root: str = "run") -> str:
    """Render a profiler snapshot in collapsed-stack (flamegraph) format.

    One ``frame;frame;frame cycles`` line per stack, deepest frame
    last, suitable for ``flamegraph.pl``, inferno or speedscope.  A
    phase's unattributed remainder (cycles not claimed by any
    sub-phase) appears at the phase frame itself, so the flamegraph's
    totals conserve cycles exactly like the profiler does.  With
    ``per_thread=True`` each simulated thread gets its own second-level
    frame.
    """
    weights: Dict[str, int] = {}

    def add(stack: List[str], cycles: int) -> None:
        if cycles:
            key = ";".join(stack)
            weights[key] = weights.get(key, 0) + cycles

    for tid, phases in sorted(snapshot.get("threads", {}).items(),
                              key=lambda item: int(item[0])):
        base = [root, f"thread-{tid}"] if per_thread else [root]
        for phase, entry in sorted(phases.items()):
            attributed = 0
            for sub, cycles in sorted(entry.get("sub", {}).items()):
                add(base + [phase, sub], cycles)
                attributed += cycles
            add(base + [phase], entry["cycles"] - attributed)
    lines = [f"{stack} {cycles}"
             for stack, cycles in sorted(weights.items())]
    return "\n".join(lines) + ("\n" if lines else "")
