"""``repro.obs`` — the run-telemetry subsystem.

Low-overhead observability wired through every layer of the
reproduction:

* :mod:`repro.obs.metrics` — labeled counter/gauge/histogram registry
  the engine, TM systems and MVM controller emit into;
* :mod:`repro.obs.spans` — per-transaction lifecycle spans
  (:class:`SpanRecorder`) and tracer fan-out (:class:`MultiTracer`);
* :mod:`repro.obs.export` — JSONL span logs and Perfetto-loadable
  Chrome traces;
* :mod:`repro.obs.profile` — deterministic cycle-attribution profiler
  (:class:`CycleProfiler`), conservation-checked phase accounting with
  collapsed-stack (flamegraph) export;
* :mod:`repro.obs.provenance` — killer→victim conflict graph, the
  wasted-work ledger and the decisive/cascading/self-inflicted abort
  classification behind ``sitm-harness blame``;
* :mod:`repro.obs.report` — abort-attribution, conflict-heatmap,
  cycle-attribution and version-occupancy text reports;
* :mod:`repro.obs.live` — online telemetry: windowed time-series
  sampling (:class:`TimeSeriesSampler`), mergeable window aggregates,
  the versioned JSONL time-series export, and online anomaly rules
  (:class:`AnomalyDetector`);
* :mod:`repro.obs.flight` — crash flight recorder
  (:class:`FlightRecorder`): a bounded ring of recent windows and span
  summaries persisted to ``flight-<digest>.json`` when a run dies;
* :mod:`repro.obs.monitor` — live campaign monitoring
  (:class:`CampaignMonitor`) behind ``sitm-harness watch`` and the
  executor's ``--progress`` stream;
* :mod:`repro.obs.prom` — Prometheus text exposition for any metrics
  snapshot (``sitm-harness metrics --format prom``).

Telemetry is disabled by default; enable it per run with
``ExperimentSpec(telemetry=True)``, ``run_once(..., telemetry=True)``
or the CLI's ``sitm-harness trace`` / ``sitm-harness metrics``
commands; profiling likewise via ``profiling=True`` or ``sitm-harness
profile``.  See ``docs/observability.md`` for the metrics catalogue,
span schema and profiler phases.
"""

from repro.obs.metrics import MetricsRegistry, collect_run_metrics
from repro.obs.spans import (MultiTracer, Span, SpanRecorder,
                             StreamingSpanRecorder, merge_span_aggregates)
from repro.obs.export import (SPAN_SCHEMA_VERSION, chrome_trace,
                              chrome_trace_events, load_spans_jsonl,
                              spans_to_jsonl, validate_span_log,
                              write_chrome_trace)
from repro.obs.profile import (CycleProfiler, collapsed_stacks,
                               phase_shares)
from repro.obs.provenance import (ProvenanceReport, blame_table,
                                  build_provenance, merge_provenance,
                                  record_provenance_metrics)
from repro.obs.report import (abort_attribution, conflict_heatmap,
                              metrics_table, phase_table,
                              version_occupancy)
from repro.obs.live import (TIMESERIES_SCHEMA_VERSION, AnomalyDetector,
                            TimeSeriesSampler, TimeSeriesWriter,
                            load_timeseries_jsonl, merge_timeseries,
                            merge_windows, timeseries_to_jsonl,
                            validate_timeseries)
from repro.obs.flight import (FLIGHT_SCHEMA_VERSION, FlightRecorder,
                              flight_path, load_flight, validate_flight)
from repro.obs.monitor import CampaignMonitor, sparkline
from repro.obs.prom import prometheus_exposition

__all__ = [
    "MetricsRegistry", "collect_run_metrics",
    "MultiTracer", "Span", "SpanRecorder", "StreamingSpanRecorder",
    "merge_span_aggregates",
    "SPAN_SCHEMA_VERSION", "chrome_trace", "chrome_trace_events",
    "load_spans_jsonl", "spans_to_jsonl", "validate_span_log",
    "write_chrome_trace",
    "CycleProfiler", "collapsed_stacks", "phase_shares",
    "ProvenanceReport", "blame_table", "build_provenance",
    "merge_provenance", "record_provenance_metrics",
    "abort_attribution", "conflict_heatmap", "metrics_table",
    "phase_table", "version_occupancy",
    "TIMESERIES_SCHEMA_VERSION", "AnomalyDetector", "TimeSeriesSampler",
    "TimeSeriesWriter", "load_timeseries_jsonl", "merge_timeseries",
    "merge_windows", "timeseries_to_jsonl", "validate_timeseries",
    "FLIGHT_SCHEMA_VERSION", "FlightRecorder", "flight_path",
    "load_flight", "validate_flight",
    "CampaignMonitor", "sparkline",
    "prometheus_exposition",
]
