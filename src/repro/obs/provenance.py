"""Conflict provenance: who killed whom, and what the aborts cost.

The span layer records *that* an attempt aborted; the backends now also
record *who doomed it* (``Span.killer_*``, stamped by every
conflict-detection site).  This module turns those per-attempt facts
into the run-level blame artifacts:

* the **killer→victim conflict graph** — directed edges between source
  sites (transaction labels), weighted by abort count and wasted
  cycles, exportable as canonical JSON or Graphviz DOT;
* the **wasted-work ledger** — every aborted attempt's cycles charged
  to its ``(killer site, victim site)`` pair, so "which conflict pair
  burns the machine" is a sorted Pareto table rather than a guess;
* the **abort classification** — each abort is *decisive* (the killer
  went on to commit: a true conflict, someone had to die),
  *cascading* (the killer itself later aborted: wasted work killing
  other work), or *self-inflicted* (capacity, overflow, injected
  faults, explicit aborts: no other transaction involved).  Killers
  whose own span is missing or still open classify as *unresolved*
  (streamed-out reservoirs can drop commit spans).

Everything here is pure post-processing over spans — no engine or
backend hooks, zero run-time overhead — and deterministic: identical
spans produce byte-identical reports.

The ledger's conservation contract: the sum of every edge's wasted
cycles equals the sum of abort-span durations, and the per-victim-
thread breakdown reconciles *exactly* with the profiler's independent
begin/abort clock-delta tally
(:meth:`repro.obs.profile.CycleProfiler.check_conservation`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

__all__ = ["DECISIVE", "CASCADING", "SELF_INFLICTED", "UNRESOLVED",
           "ABORT_CLASSES", "SELF_SITE", "classify_abort",
           "ProvenanceReport", "build_provenance", "merge_provenance",
           "blame_table", "record_provenance_metrics"]

#: the killer committed — a true conflict resolved in the killer's favor
DECISIVE = "decisive"
#: the killer itself later aborted — wasted work killed other work
CASCADING = "cascading"
#: no other transaction involved (capacity, overflow, faults, explicit)
SELF_INFLICTED = "self_inflicted"
#: a killer was named but its own fate is unknown (span open or
#: sampled out of a streamed log)
UNRESOLVED = "unresolved"
ABORT_CLASSES = (DECISIVE, CASCADING, SELF_INFLICTED, UNRESOLVED)

#: killer-site label used for aborts with no killer transaction
SELF_SITE = "(self)"

#: provenance-report JSON schema version
PROVENANCE_SCHEMA_VERSION = 1


def classify_abort(span: Span,
                   outcome_by_uid: Dict[int, str]) -> str:
    """Classify one abort span given every span's final outcome."""
    if not span.has_killer:
        return SELF_INFLICTED
    outcome = (outcome_by_uid.get(span.killer_uid)
               if span.killer_uid is not None else None)
    if outcome == "commit":
        return DECISIVE
    if outcome == "abort":
        return CASCADING
    return UNRESOLVED


class ProvenanceReport:
    """Aggregated killer→victim graph + wasted-work ledger for one run.

    Build with :func:`build_provenance`.  ``edges`` maps
    ``(killer_site, victim_site)`` to a mutable aggregate dict with
    ``aborts``, ``wasted_cycles``, per-class and per-cause counts;
    self-inflicted aborts charge the :data:`SELF_SITE` pseudo-site.
    """

    def __init__(self) -> None:
        self.total_spans = 0
        self.commits = 0
        self.aborts = 0
        self.wasted_cycles = 0
        #: victim thread -> wasted cycles (reconciles with the profiler)
        self.wasted_by_thread: Dict[int, int] = {}
        #: abort classification -> count
        self.by_class: Dict[str, int] = {}
        #: (killer_site, victim_site) -> aggregate
        self.edges: Dict[Tuple[str, str], Dict[str, object]] = {}

    # -- construction ----------------------------------------------------

    def _charge(self, span: Span, classification: str) -> None:
        wasted = span.duration
        self.aborts += 1
        self.wasted_cycles += wasted
        self.wasted_by_thread[span.thread_id] = \
            self.wasted_by_thread.get(span.thread_id, 0) + wasted
        self.by_class[classification] = \
            self.by_class.get(classification, 0) + 1
        killer_site = (span.killer_label or SELF_SITE
                       if span.has_killer else SELF_SITE)
        edge = self.edges.get((killer_site, span.label))
        if edge is None:
            edge = self.edges[(killer_site, span.label)] = {
                "aborts": 0, "wasted_cycles": 0,
                "classes": {}, "causes": {}}
        edge["aborts"] += 1
        edge["wasted_cycles"] += wasted
        classes = edge["classes"]
        classes[classification] = classes.get(classification, 0) + 1
        cause = span.cause or "unknown"
        causes = edge["causes"]
        causes[cause] = causes.get(cause, 0) + 1

    # -- views -----------------------------------------------------------

    def pareto(self) -> List[dict]:
        """Ledger rows sorted by wasted cycles (descending), with the
        cumulative share column that makes the Pareto structure legible:
        the first rows are where fixing contention pays."""
        rows = []
        for (killer, victim), edge in self.edges.items():
            rows.append({
                "killer": killer, "victim": victim,
                "aborts": edge["aborts"],
                "wasted_cycles": edge["wasted_cycles"],
                "classes": dict(sorted(edge["classes"].items())),
                "causes": dict(sorted(edge["causes"].items())),
            })
        rows.sort(key=lambda r: (-r["wasted_cycles"], -r["aborts"],
                                 r["killer"], r["victim"]))
        running = 0
        for row in rows:
            running += row["wasted_cycles"]
            row["share"] = (row["wasted_cycles"] / self.wasted_cycles
                            if self.wasted_cycles else 0.0)
            row["cumulative_share"] = (running / self.wasted_cycles
                                       if self.wasted_cycles else 0.0)
        return rows

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (sorted, versioned, deterministic)."""
        return {
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "total_spans": self.total_spans,
            "commits": self.commits,
            "aborts": self.aborts,
            "wasted_cycles": self.wasted_cycles,
            "wasted_by_thread": {
                str(tid): cycles for tid, cycles
                in sorted(self.wasted_by_thread.items())},
            "by_class": {cls: self.by_class.get(cls, 0)
                         for cls in ABORT_CLASSES},
            "edges": self.pareto(),
        }

    def to_json(self) -> str:
        """Canonical JSON document (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the killer→victim conflict graph.

        Sites become nodes; each edge carries its abort count and
        wasted cycles, with pen width scaled by wasted-cycle share so
        the dominant conflict pair is visually obvious.  Deterministic
        output: nodes and edges are emitted in sorted order.
        """
        lines = ["digraph conflicts {",
                 "  rankdir=LR;",
                 "  node [shape=box, fontname=\"monospace\"];"]
        sites = sorted({site for pair in self.edges for site in pair})
        for site in sites:
            shape = ", style=dashed" if site == SELF_SITE else ""
            lines.append(f"  \"{site}\" [label=\"{site}\"{shape}];")
        for (killer, victim) in sorted(self.edges):
            edge = self.edges[(killer, victim)]
            share = (edge["wasted_cycles"] / self.wasted_cycles
                     if self.wasted_cycles else 0.0)
            width = 1.0 + 5.0 * share
            label = (f"{edge['aborts']} aborts\\n"
                     f"{edge['wasted_cycles']} cycles")
            lines.append(
                f"  \"{killer}\" -> \"{victim}\" "
                f"[label=\"{label}\", penwidth={width:.2f}];")
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_provenance(spans: Sequence[Span]) -> ProvenanceReport:
    """Aggregate spans (one run's, or merged) into a blame report."""
    outcome_by_uid: Dict[int, str] = {}
    for span in spans:
        outcome_by_uid[span.uid] = span.outcome
    report = ProvenanceReport()
    for span in spans:
        report.total_spans += 1
        if span.outcome == "commit":
            report.commits += 1
        elif span.outcome == "abort":
            report._charge(span, classify_abort(span, outcome_by_uid))
    for cls in ABORT_CLASSES:
        report.by_class.setdefault(cls, 0)
    return report


def merge_provenance(reports: Sequence[ProvenanceReport],
                     ) -> ProvenanceReport:
    """Merge per-run reports into one (edges and totals sum).

    Classification must happen per run first — span uids restart at 0
    every run, so the killer→outcome lookup is only meaningful within
    one run's spans — after which the site-level aggregates are freely
    mergeable, like the histogram aggregates in
    :func:`repro.obs.spans.merge_span_aggregates`.
    """
    merged = ProvenanceReport()
    for report in reports:
        merged.total_spans += report.total_spans
        merged.commits += report.commits
        merged.aborts += report.aborts
        merged.wasted_cycles += report.wasted_cycles
        for tid, cycles in report.wasted_by_thread.items():
            merged.wasted_by_thread[tid] = \
                merged.wasted_by_thread.get(tid, 0) + cycles
        for cls, count in report.by_class.items():
            merged.by_class[cls] = merged.by_class.get(cls, 0) + count
        for pair, edge in report.edges.items():
            target = merged.edges.get(pair)
            if target is None:
                target = merged.edges[pair] = {
                    "aborts": 0, "wasted_cycles": 0,
                    "classes": {}, "causes": {}}
            target["aborts"] += edge["aborts"]
            target["wasted_cycles"] += edge["wasted_cycles"]
            for key in ("classes", "causes"):
                for name, count in edge[key].items():
                    target[key][name] = target[key].get(name, 0) + count
    for cls in ABORT_CLASSES:
        merged.by_class.setdefault(cls, 0)
    return merged


def blame_table(report: ProvenanceReport, top: Optional[int] = None) -> str:
    """Render the wasted-work Pareto ledger as a fixed-width table."""
    rows = report.pareto()
    if top is not None:
        rows = rows[:top]
    header = (f"{'killer':<20} {'victim':<20} {'aborts':>7} "
              f"{'wasted':>12} {'share':>7} {'cum':>7}  classes")
    lines = [header, "-" * len(header)]
    for row in rows:
        classes = ",".join(f"{cls}={count}" for cls, count
                           in sorted(row["classes"].items()))
        lines.append(
            f"{row['killer']:<20} {row['victim']:<20} "
            f"{row['aborts']:>7} {row['wasted_cycles']:>12} "
            f"{row['share']:>6.1%} {row['cumulative_share']:>6.1%}  "
            f"{classes}")
    lines.append("-" * len(header))
    lines.append(
        f"{report.aborts} aborts / {report.total_spans} spans, "
        f"{report.wasted_cycles} wasted cycles "
        f"(decisive={report.by_class.get(DECISIVE, 0)}, "
        f"cascading={report.by_class.get(CASCADING, 0)}, "
        f"self_inflicted={report.by_class.get(SELF_INFLICTED, 0)}, "
        f"unresolved={report.by_class.get(UNRESOLVED, 0)})")
    return "\n".join(lines) + "\n"


def record_provenance_metrics(registry, system: str,
                              spans: Sequence[Span]) -> ProvenanceReport:
    """Fold span provenance into the metrics registry's counters.

    Emits ``tm_wasted_cycles_total{system,cause}`` (aborted attempts'
    cycles by abort cause) and ``tm_aborts_by_outcome_total``
    ``{system,outcome}`` (the decisive/cascading/self_inflicted/
    unresolved classification).  Runs end-of-run — a killer's fate is
    unknowable while its span is still open — so the hot path pays
    nothing.  Returns the built report for further use.
    """
    outcome_by_uid = {span.uid: span.outcome for span in spans}
    report = build_provenance(spans)
    for span in spans:
        if span.outcome != "abort":
            continue
        registry.inc("tm_wasted_cycles_total", span.duration,
                     system=system, cause=span.cause or "unknown")
        registry.inc("tm_aborts_by_outcome_total", 1, system=system,
                     outcome=classify_abort(span, outcome_by_uid))
    return report
