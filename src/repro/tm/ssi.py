"""SSI-TM: serializable snapshot isolation (section 5.2).

The paper sketches a hardware scheme: track read sets in addition to write
sets, flag the first read-write antidependency's direction per transaction
(one *incoming*, one *outgoing* flag bit), and abort on a **dangerous
structure** — a transaction with both flags set, the minimum requirement
for a dependency cycle and hence a write skew.  This is safe but admits
false positives.

This implementation completes the sketch with the committed-transaction
bookkeeping the full algorithm needs (after Cahill et al. [11], which the
paper builds on): every rw-antidependency ``R ->rw W`` (R read a line, W
installed a newer version, R and W concurrent) is discovered at the
*later* of the two commits —

* **reader commits second**: its read lines carry version timestamps newer
  than its snapshot → reader gains an outgoing edge, and the already-
  committed writer's *record* gains an incoming one;
* **writer commits second**: a window of recently committed transactions'
  read sets (pruned once no active transaction can still be concurrent)
  yields the incoming edge, and the committed reader's record the
  outgoing one.

A committing transaction aborts when it becomes a pivot (both flags), or
when the edge it is about to create would complete a pivot on a
*committed* record — breaking the cycle that record would anchor.  Since
every SI anomaly contains a pivot and every edge incident to a pivot is
examined at one of these commits, no anomalous cycle survives.

Dependencies remain *type-based*, not temporal (Figure 6): a long reader
overwritten twice by the same committed writer accrues two outgoing edges
and commits, while conflict serializability aborts it.

Read-only transactions can never be pivots (no writes → no incoming
edges) and are therefore never aborted, preserving SI-TM's guarantee;
they do pay record-keeping at commit, which is the price of SSI.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import IsolationLevel, Txn
from repro.tm.sitm import SnapshotIsolationTM


class _CommittedRecord:
    """Flags and footprint of a committed transaction, kept while any
    active transaction could still be concurrent with it."""

    __slots__ = ("start_ts", "commit_stamp", "read_lines", "write_lines",
                 "inbound", "outbound", "identity")

    def __init__(self, start_ts: int, commit_stamp: int,
                 read_lines: Set[int], write_lines: Set[int],
                 inbound: bool, outbound: bool, identity: Tuple):
        self.start_ts = start_ts
        self.commit_stamp = commit_stamp
        self.read_lines = read_lines
        self.write_lines = write_lines
        self.inbound = inbound
        self.outbound = outbound
        #: ``Txn.identity()`` tuple of the committed transaction, named
        #: as the killer when this record anchors a dangerous structure
        self.identity = identity

    @property
    def dangerous(self) -> bool:
        return self.inbound and self.outbound


class SerializableSITM(SnapshotIsolationTM):
    """SI-TM plus dangerous-structure detection for full serializability."""

    name = "SSI-TM"
    isolation = IsolationLevel.SERIALIZABLE_SNAPSHOT
    ABORT_CAUSES = (SnapshotIsolationTM.ABORT_CAUSES
                    | {AbortCause.DANGEROUS_STRUCTURE,
                       AbortCause.READ_CAPACITY})
    #: an injected false positive looks like a dangerous-structure
    #: abort — SSI's detector is the one that genuinely admits them
    SPURIOUS_ABORT_CAUSE = AbortCause.DANGEROUS_STRUCTURE
    #: cycles charged per committed-window record scanned at commit
    RECORD_SCAN_CYCLES = 1

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        self._window: List[_CommittedRecord] = []

    def uses_backoff(self) -> bool:
        """SSI aborts are mutual (read-write-class): two transactions can
        repeatedly abort on each other's dangerous structures in
        deterministic lockstep, so — unlike plain SI-TM, whose write-write
        aborts always let one side commit — SSI needs randomised backoff
        for guaranteed progress."""
        return True

    # ------------------------------------------------------------------

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        value, cycles = super().read(txn, addr, promote)
        line = self.amap.line_of(addr)
        if line not in txn.read_lines:
            txn.read_lines.add(line)
            self._charge_read_capacity(txn, line)
        return value, cycles

    def _prune_window(self) -> None:
        oldest_active = self.mvm.active.oldest()
        if oldest_active is None:
            self._window.clear()
            return
        self._window = [rec for rec in self._window
                        if rec.commit_stamp > oldest_active]

    def _detect_dangerous(self, txn: Txn) -> int:
        """Flag rw-antidependencies; raise on a dangerous structure.

        Returns the cycle cost of the detection pass.
        """
        cycles = 0
        pure_reads = txn.read_lines - txn.write_lines
        # Edges where *we* are the reader and the writer already committed:
        # a newer version on a read line means a concurrent writer.
        for line in pure_reads:
            if self.mvm.validate_line(line, txn.start_ts):
                txn.outbound_rw = True
                if txn.outbound_peer is None:
                    # the concurrent writer on our outgoing edge: whoever
                    # installed the newer version of the line we read
                    txn.outbound_peer = self.mvm.newest_installer(line)
                for rec in self._window:
                    cycles += self.RECORD_SCAN_CYCLES
                    if (line in rec.write_lines
                            and rec.commit_stamp > txn.start_ts):
                        rec.inbound = True
                        if rec.dangerous:
                            # our edge would complete a committed pivot
                            txn.conflict_line = line
                            txn.record_killer(rec.identity)
                            raise TransactionAborted(
                                AbortCause.DANGEROUS_STRUCTURE,
                                f"committed pivot via read line {line:#x}")
        # Edges where *we* are the writer and the reader already committed.
        if txn.write_lines:
            for rec in self._window:
                cycles += self.RECORD_SCAN_CYCLES
                if rec.commit_stamp <= txn.start_ts:
                    continue  # not concurrent with us
                overlap = txn.write_lines & rec.read_lines
                if overlap and not (overlap <= rec.write_lines):
                    txn.inbound_rw = True
                    if txn.inbound_peer is None:
                        txn.inbound_peer = rec.identity
                    rec.outbound = True
                    if rec.dangerous:
                        txn.conflict_line = min(overlap)
                        txn.record_killer(rec.identity)
                        raise TransactionAborted(
                            AbortCause.DANGEROUS_STRUCTURE,
                            "committed pivot via reader record")
        if txn.inbound_rw and txn.outbound_rw:
            # both rw-edge peers are concurrent committed transactions;
            # name the inbound one (a record, always available) first
            txn.record_killer(txn.inbound_peer or txn.outbound_peer)
            raise TransactionAborted(
                AbortCause.DANGEROUS_STRUCTURE, "pivot at commit")
        return cycles

    def commit(self, txn: Txn, now: int) -> int:
        if txn.doomed is not None:
            raise TransactionAborted(txn.doomed)
        self._prune_window()
        try:
            detect_cycles = self._detect_dangerous(txn)
        except TransactionAborted:
            self._release(txn)
            raise
        start_ts = txn.start_ts
        read_lines = set(txn.read_lines)
        write_lines = set(txn.write_lines)
        inbound, outbound = txn.inbound_rw, txn.outbound_rw
        cycles = super().commit(txn, now)
        self._window.append(_CommittedRecord(
            start_ts, self.machine.clock.now, read_lines, write_lines,
            inbound, outbound, txn.identity()))
        metrics = self.machine.metrics
        if metrics is not None:
            # size of the committed-transaction window each dangerous-
            # structure scan walks: SSI's bookkeeping cost driver
            metrics.observe("tm_ssi_window_records", len(self._window),
                            system=self.name)
        profiler = self.machine.profiler
        if profiler is not None:
            profiler.sub_account(txn.thread_id, "commit", "validate",
                                 detect_cycles)
        return cycles + detect_cycles
