"""Operation descriptors yielded by transaction bodies.

Transaction bodies are Python generators: they ``yield`` one of these
descriptors per transactional action and receive the action's result (for
reads, the loaded value) back from the engine.  This gives the
discrete-event engine an instruction-level interleaving point at every
transactional memory access — the granularity at which conflicts arise —
without threads or monkey-patching::

    def withdraw(account_addr, amount):
        balance = yield Read(account_addr)
        if balance >= amount:
            yield Write(account_addr, balance - amount)

``site`` is an optional source-location tag (e.g. ``"list.remove:unlink"``)
used by the write-skew tool (section 5.1) to report *where* an anomalous
read or write lives — the analogue of the paper's PIN callstack backtrace.

``Read(promote=True)`` is a **promoted read** (section 5.1): it is inserted
into the write set for conflict detection but creates no new data version.
"""

from __future__ import annotations

import sys


class Op:
    """Base class of all operation descriptors."""

    __slots__ = ()


class Read(Op):
    """Transactional load of one word."""

    __slots__ = ("addr", "promote", "site")

    def __init__(self, addr: int, promote: bool = False, site: str = ""):
        self.addr = addr
        self.promote = promote
        # sites repeat per call site; interning makes every later
        # dict/set probe on them a pointer comparison
        self.site = sys.intern(site) if site else site

    def __repr__(self) -> str:
        flags = ", promote=True" if self.promote else ""
        return f"Read({self.addr:#x}{flags})"


class Write(Op):
    """Transactional store of one word."""

    __slots__ = ("addr", "value", "site")

    def __init__(self, addr: int, value: int, site: str = ""):
        self.addr = addr
        self.value = value
        self.site = sys.intern(site) if site else site

    def __repr__(self) -> str:
        return f"Write({self.addr:#x}, {self.value})"


class Compute(Op):
    """Non-memory work inside a transaction, charged at ``cycles``."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int = 1):
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class Abort(Op):
    """Explicit user-requested abort/retry of the running transaction."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Abort()"
