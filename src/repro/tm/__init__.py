"""TM systems: common API, 2PL, SONTM, SI-TM, SSI-TM, LogTM, HybridHTM."""

from typing import Dict, Type

from repro.tm.api import CommitToken, IsolationLevel, TMSystem, Txn
from repro.tm.backoff import ExponentialBackoff, NoBackoff
from repro.tm.hybrid import HybridHTM
from repro.tm.logtm import EagerLogTM
from repro.tm.ops import Abort, Compute, Op, Read, Write
from repro.tm.sitm import SnapshotIsolationTM
from repro.tm.sontm import SONTM
from repro.tm.ssi import SerializableSITM
from repro.tm.twopl import TwoPhaseLockingTM

#: registry used by the harness CLI and the experiment drivers
SYSTEMS: Dict[str, Type[TMSystem]] = {
    TwoPhaseLockingTM.name: TwoPhaseLockingTM,
    SONTM.name: SONTM,
    SnapshotIsolationTM.name: SnapshotIsolationTM,
    SerializableSITM.name: SerializableSITM,
    EagerLogTM.name: EagerLogTM,
    HybridHTM.name: HybridHTM,
}

__all__ = [
    "Abort",
    "EagerLogTM",
    "CommitToken",
    "Compute",
    "ExponentialBackoff",
    "HybridHTM",
    "IsolationLevel",
    "NoBackoff",
    "Op",
    "Read",
    "SONTM",
    "SYSTEMS",
    "SerializableSITM",
    "SnapshotIsolationTM",
    "TMSystem",
    "TwoPhaseLockingTM",
    "Txn",
    "Write",
]
