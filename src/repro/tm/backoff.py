"""Randomised exponential backoff (section 6.4).

The paper's eager baselines (2PL, SONTM) use exponential backoff to escape
livelock from repeated mutual aborts — most visible in Genome — and the
authors tuned it to optimise *performance*, not abort rate.  SI-TM's lazy
commit guarantees progress without it, but the policy object is shared so
ablation benches can switch it on or off per system.
"""

from __future__ import annotations

from repro.common.config import TMConfig
from repro.common.rng import SplitRandom


class ExponentialBackoff:
    """Computes the delay (in cycles) to wait after the n-th abort."""

    __slots__ = ("_enabled", "_base", "_max_exponent", "_rng")

    def __init__(self, config: TMConfig, rng: SplitRandom):
        self._enabled = config.backoff_enabled
        self._base = config.backoff_base_cycles
        self._max_exponent = config.backoff_max_exponent
        self._rng = rng

    def delay(self, attempt: int) -> int:
        """Backoff cycles after ``attempt`` consecutive aborts (1-based).

        Uniformly random in ``[0, base * 2^min(attempt, max_exponent))`` —
        the classic bounded-exponential scheme.  Returns 0 when disabled.
        """
        if not self._enabled or attempt <= 0:
            return 0
        exponent = min(attempt, self._max_exponent)
        ceiling = self._base * (1 << exponent)
        return self._rng.randrange(ceiling)


class NoBackoff:
    """Null policy: never wait (SI-TM's default — lazy commits guarantee
    progress, section 2)."""

    __slots__ = ()

    def delay(self, attempt: int) -> int:  # noqa: D102 — trivially documented above
        return 0
