"""A LogTM-style eager/eager baseline (discussed in section 4.3).

LogTM performs **eager version management** — transactional stores update
memory in place, logging the old value in a thread-local undo log — and
**eager conflict detection** where the *requester stalls* (NACK) instead
of anyone aborting, falling back to aborting the requester when stalling
risks deadlock.  The paper contrasts it with SI-TM: "while this approach
enables fast commits, transaction abort is complex and needs to be
handled by software. Also, while abort is handled in software the
requesting transaction has to wait."

Faithfully modelled consequences:

* **commits are cheap** — discard the undo log, no write-back walk (the
  data is already in place) and no commit token;
* **aborts are expensive** — walk the undo log backwards restoring every
  word (per-entry memory cost), while conflicting requesters keep
  stalling against the dying transaction until rollback completes;
* **conflicts stall rather than kill** — a requester retries the same
  operation after a NACK; after ``MAX_STALLS`` consecutive NACKs it
  aborts *itself* (conservative deadlock avoidance, standing in for
  LogTM's timestamp-based possible-cycle detection).

Not part of the paper's evaluated systems (its 2PL baseline uses lazy
versioning, section 6.1); provided because section 4.3 argues against
exactly this design point, and the asymmetry is measurable here:
``benchmarks/test_ext_eager_versioning.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import IsolationLevel, StallRequested, TMSystem, Txn


class EagerLogTM(TMSystem):
    """Eager version management + NACK-based eager conflict detection."""

    name = "LogTM"
    isolation = IsolationLevel.CONFLICT_SERIALIZABLE
    ABORT_CAUSES = frozenset({
        AbortCause.READ_WRITE, AbortCause.WRITE_WRITE,
        AbortCause.VERSION_BUFFER_OVERFLOW, AbortCause.READ_CAPACITY,
        AbortCause.WRITE_CAPACITY, AbortCause.VERSION_CAPACITY,
        AbortCause.EXPLICIT})
    #: an injected false positive looks like a deadlock-avoidance
    #: self-abort after repeated NACKs
    SPURIOUS_ABORT_CAUSE = AbortCause.READ_WRITE
    #: cycles charged per NACK round trip
    NACK_CYCLES = 24
    #: consecutive NACKs before the requester aborts itself
    MAX_STALLS = 8
    #: cycles per undo-log entry restored during abort (software rollback)
    UNDO_CYCLES = 12

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        self.stalls_issued = 0
        self.undo_entries_restored = 0

    # ------------------------------------------------------------------

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, self.config.txn_overhead_cycles

    def _conflicting_owner(self, txn: Txn, line: int,
                           for_write: bool) -> Optional[Txn]:
        for other in self.others(txn):
            if line in other.write_lines:
                return other
            if for_write and line in other.read_lines:
                return other
        return None

    def _nack(self, txn: Txn, line: int,
              owner: Optional[Txn] = None) -> None:
        """Stall the requester; abort it after too many consecutive NACKs.

        ``owner`` is the transaction holding the line — on a
        deadlock-avoidance self-abort it is the killer the requester
        backed off from.
        """
        txn.consecutive_stalls += 1
        self.stalls_issued += 1
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.observe("tm_nack_stall_cycles", self.NACK_CYCLES,
                            system=self.name)
        if txn.consecutive_stalls > self.MAX_STALLS:
            txn.conflict_line = line
            if owner is not None:
                txn.record_killer(owner.identity())
            raise TransactionAborted(
                AbortCause.READ_WRITE, "possible deadlock: requester aborts")
        raise StallRequested(self.NACK_CYCLES)

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        line = self.amap.line_of(addr)
        if line not in txn.read_lines and line not in txn.write_lines:
            owner = self._conflicting_owner(txn, line, for_write=False)
            if owner is not None:
                self._nack(txn, line, owner)
        txn.consecutive_stalls = 0
        cycles = self.machine.caches.access(txn.thread_id, line)
        if line not in txn.read_lines:
            cycles += self.machine.interconnect.broadcast_cost()
            txn.read_lines.add(line)
            self._charge_read_capacity(txn, line)
        # eager versioning: memory always holds this txn's own writes
        return self.machine.plain_load(addr), cycles

    def write(self, txn: Txn, addr: int, value: int) -> int:
        line = self.amap.line_of(addr)
        if line not in txn.write_lines:
            owner = self._conflicting_owner(txn, line, for_write=True)
            if owner is not None:
                self._nack(txn, line, owner)
        txn.consecutive_stalls = 0
        cycles = self.machine.caches.access(txn.thread_id, line)
        if line not in txn.write_lines:
            cycles += self.machine.interconnect.broadcast_cost()
            self.machine.caches.invalidate_everywhere(
                line, except_core=txn.thread_id)
            txn.write_lines.add(line)
            self._check_version_buffer(txn)
            self._charge_write_capacity(txn, line)
        # in-place update with undo logging
        txn.undo_log.append((addr, self.machine.plain_load(addr)))
        self._charge_version_capacity(txn, line, len(txn.undo_log))
        self.machine.plain_store(addr, value)
        return cycles

    def commit(self, txn: Txn, now: int) -> int:
        if txn.doomed is not None:
            raise TransactionAborted(txn.doomed)
        # fast commit: data is already in place; just drop the log
        txn.undo_log.clear()
        self._deregister(txn)
        return self.config.txn_overhead_cycles

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        # software rollback: restore the undo log in reverse order
        cycles = self.config.txn_overhead_cycles
        undo_cycles = 0
        for addr, old_value in reversed(txn.undo_log):
            self.machine.plain_store(addr, old_value)
            undo_cycles += self.UNDO_CYCLES
            self.undo_entries_restored += 1
        cycles += undo_cycles
        profiler = self.machine.profiler
        if profiler is not None:
            profiler.sub_account(txn.thread_id, "abort", "undo",
                                 undo_cycles)
        txn.undo_log.clear()
        self._deregister(txn)
        return cycles + self._backoff_cycles(txn)
