"""The 2-phase-locking baseline (section 6.1).

A state-of-the-art eager HTM in the style of Bobba et al. [10]:

* **eager conflict detection** with a *requester wins* policy — every
  transactional access broadcasts its address over the coherence fabric
  (get-shared for reads, get-exclusive for writes); cores holding a
  conflicting entry in their read/write sets abort their transaction;
* **lazy version management** — speculative writes are buffered and only
  reach memory at commit;
* read/write sets are *perfect* (exact sets, modelling the paper's
  "perfect bloom filters with no false positives");
* commit acquires a global **commit token**, then walks the write log and
  publishes the speculative writes;
* abort discards the logs and restarts in software after **exponential
  backoff** (section 6.4).

Conflict-to-cause mapping for Figure 1: a conflict involving at least one
read (requester reads a line in a victim's write set, or requester writes a
line in a victim's read set) counts as read-write; writer-vs-writer counts
as write-write.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import CommitToken, IsolationLevel, TMSystem, Txn


class TwoPhaseLockingTM(TMSystem):
    """Eager requester-wins HTM with lazy version management."""

    name = "2PL"
    isolation = IsolationLevel.CONFLICT_SERIALIZABLE
    ABORT_CAUSES = frozenset({
        AbortCause.READ_WRITE, AbortCause.WRITE_WRITE,
        AbortCause.VERSION_BUFFER_OVERFLOW, AbortCause.READ_CAPACITY,
        AbortCause.WRITE_CAPACITY, AbortCause.VERSION_CAPACITY,
        AbortCause.EXPLICIT})
    #: an injected false positive looks like a requester-wins conflict
    SPURIOUS_ABORT_CAUSE = AbortCause.READ_WRITE

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        self.token = CommitToken()

    # ------------------------------------------------------------------

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, self.config.txn_overhead_cycles

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        buffered = self._buffered_read(txn, addr)
        line = self.amap.line_of(addr)
        if buffered is not None:
            return buffered, self.config.machine.l1d.latency_cycles
        cycles = self.machine.caches.access(txn.thread_id, line)
        if line not in txn.read_lines:
            # get-shared broadcast: writers among concurrent txns abort
            cycles += self.machine.interconnect.broadcast_cost()
            for other in self.others(txn):
                if line in other.write_lines:
                    other.doom(AbortCause.READ_WRITE, line, txn)
            txn.read_lines.add(line)
            self._charge_read_capacity(txn, line)
        return self.machine.plain_load(addr), cycles

    def write(self, txn: Txn, addr: int, value: int) -> int:
        line = self.amap.line_of(addr)
        cycles = self.config.machine.l1d.latency_cycles
        if line not in txn.write_lines:
            # get-exclusive broadcast: readers and writers abort
            cycles += self.machine.interconnect.broadcast_cost()
            for other in self.others(txn):
                if line in other.write_lines:
                    other.doom(AbortCause.WRITE_WRITE, line, txn)
                elif line in other.read_lines:
                    other.doom(AbortCause.READ_WRITE, line, txn)
            self.machine.caches.invalidate_everywhere(
                line, except_core=txn.thread_id)
            txn.write_lines.add(line)
            self._check_version_buffer(txn)
            self._charge_write_capacity(txn, line)
        txn.write_buffer[addr] = value
        self._charge_version_capacity(txn, line, len(txn.write_buffer))
        return cycles

    def commit(self, txn: Txn, now: int) -> int:
        # Requester-wins may doom us between our last op and commit.
        if txn.doomed is not None:
            raise TransactionAborted(txn.doomed)
        cycles = self.config.txn_overhead_cycles
        if txn.write_buffer:
            hold = (self.TOKEN_CYCLES
                    + self.machine.interconnect.point_to_point_cost())
            for line in txn.write_lines:
                hold += (self.machine.caches.shared_access(line)
                         + self.WRITEBACK_CYCLES)
            wait = self.token.acquire(now, hold)
            self._commit_wait(txn, wait)
            cycles += wait + hold
            for addr, value in txn.write_buffer.items():
                self.machine.plain_store(addr, value)
        self._deregister(txn)
        return cycles

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        self._deregister(txn)
        return self.config.txn_overhead_cycles + self._backoff_cycles(txn)
