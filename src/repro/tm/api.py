"""The transactional-memory runtime API shared by all systems.

This is the reproduction's analogue of the RSTM integration of section 6:
workloads are written once against :class:`TMSystem`'s interface
(``begin`` / ``read`` / ``write`` / ``commit`` / ``abort``) and run unchanged
under 2PL, SONTM, SI-TM and SSI-TM.  Transaction *bodies* are generators
yielding the descriptors of :mod:`repro.tm.ops`; the discrete-event engine
(:mod:`repro.sim.engine`) drives bodies and calls into the TM system for
every operation.

Timing convention: every method returns the cycle cost of the action (or a
``(value, cycles)`` pair for reads) so the engine can advance the calling
thread's clock.  Conflicts surface as
:class:`~repro.common.errors.TransactionAborted` for self-aborts, or by
*dooming* a victim transaction (``txn.doom(cause)``) for eager
requester-wins policies; the engine notices doomed transactions before
their next operation.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.common.config import SimConfig
from repro.common.errors import AbortCause, TMError
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.sim.stats import RunStats
from repro.tm.backoff import ExponentialBackoff, NoBackoff


class IsolationLevel(enum.Enum):
    """The isolation guarantee a TM system declares for committed histories.

    The isolation oracle (:mod:`repro.oracle.checker`) verifies every
    recorded history against the level its system declares:

    * ``CONFLICT_SERIALIZABLE`` — committed transactions admit an acyclic
      direct serialization graph under *latest-committed* read semantics
      (2PL, SONTM, LogTM);
    * ``SNAPSHOT`` — every read observes the latest version committed
      before the transaction's start timestamp, the first committer of two
      overlapping writers wins, and no G0/G1 anomalies occur (SI-TM);
    * ``SERIALIZABLE_SNAPSHOT`` — the snapshot guarantees *plus* full
      serializability: no committed pivot (a transaction with both an
      inbound and an outbound rw-antidependency to concurrent committed
      transactions) and an acyclic serialization graph (SSI-TM).
    """

    CONFLICT_SERIALIZABLE = "conflict-serializable"
    SNAPSHOT = "snapshot"
    SERIALIZABLE_SNAPSHOT = "serializable-snapshot"


class StallRequested(Exception):
    """An operation must wait and be retried (NACK-style eager HTMs).

    LogTM-class systems stall a requester on conflict instead of aborting;
    the engine charges ``cycles`` and re-issues the same operation.
    """

    def __init__(self, cycles: int):
        self.cycles = cycles
        super().__init__(f"stall {cycles} cycles")


class Txn:
    """Per-attempt transaction descriptor.

    One :class:`Txn` exists per *attempt*: a retry after abort begins a new
    transaction (fresh snapshot, fresh sets).  ``attempt`` counts prior
    aborted attempts of the same logical transaction for backoff.
    """

    __slots__ = ("thread_id", "label", "attempt", "start_ts", "commit_ts",
                 "epoch", "read_lines", "write_lines", "promoted_lines",
                 "write_buffer", "doomed", "active", "start_removed",
                 "son_lo", "son_hi", "son_hi_setter", "after", "before",
                 "inbound_rw", "outbound_rw", "inbound_peer",
                 "outbound_peer", "consecutive_stalls",
                 "undo_log", "conflict_line", "uid",
                 "killer_tid", "killer_uid", "killer_label", "killer_ts")

    def __init__(self, thread_id: int, label: str, attempt: int):
        self.thread_id = thread_id
        self.label = label
        self.attempt = attempt
        #: global begin-order id, minted by :meth:`TMSystem._register`;
        #: the i-th transaction to successfully begin gets uid i, which
        #: is exactly the index the span recorder assigns its span
        self.uid: Optional[int] = None
        self.start_ts: Optional[int] = None
        #: end timestamp assigned at a successful commit (timestamped
        #: systems only; ``None`` for untimestamped systems and read-only
        #: SI commits).  Recorded by the history oracle.
        self.commit_ts: Optional[int] = None
        #: timestamp epoch the snapshot belongs to (bumped by overflow
        #: resets, section 4.1); timestamps only compare within an epoch
        self.epoch = 0
        self.read_lines: Set[int] = set()
        self.write_lines: Set[int] = set()
        #: promoted reads (section 5.1) — validated like writes, no version
        self.promoted_lines: Set[int] = set()
        self.write_buffer: Dict[int, int] = {}
        self.doomed: Optional[AbortCause] = None
        self.active = True
        #: whether the start timestamp was already removed from the
        #: active-transaction table (set by SI-TM's commit path)
        self.start_removed = False
        # SONTM state (serializability-order-number range + edges)
        self.son_lo = 0
        self.son_hi: Optional[int] = None  # None = +infinity
        #: identity of the committer whose propagation last lowered
        #: ``son_hi`` — the killer when the range later turns up empty
        self.son_hi_setter: Optional[Tuple] = None
        self.after: Set[int] = set()   # thread ids that must precede us
        self.before: Set[int] = set()  # thread ids that must follow us
        # SSI-TM dangerous-structure flags (section 5.2), plus the
        # identity of the concurrent transaction on each rw edge — the
        # killer when the pivot completes at commit
        self.inbound_rw = False
        self.outbound_rw = False
        self.inbound_peer: Optional[Tuple] = None
        self.outbound_peer: Optional[Tuple] = None
        # LogTM-style state: NACK/stall bookkeeping + in-place undo log
        self.consecutive_stalls = 0
        self.undo_log: list = []
        #: the memory line on which the conflict that killed this attempt
        #: was detected (None while alive, or when the cause has no single
        #: line — e.g. an empty SON range).  Feeds the conflict heatmap.
        self.conflict_line: Optional[int] = None
        #: conflict provenance: identity of the transaction whose
        #: conflicting access doomed this attempt (None for self-inflicted
        #: aborts — capacity, overflow, fault injection).  Flows into the
        #: span's ``killer_*`` fields and the wasted-work ledger.
        self.killer_tid: Optional[int] = None
        self.killer_uid: Optional[int] = None
        self.killer_label: Optional[str] = None
        self.killer_ts: Optional[int] = None

    def identity(self) -> Tuple:
        """``(thread_id, uid, label, ts)`` naming this attempt.

        ``ts`` is the commit timestamp when one was assigned, else the
        begin timestamp — the instant of the conflicting access a victim
        should report.  The same tuple shape is stored as the MVM
        version installer and in SSI's committed-record window.
        """
        return (self.thread_id, self.uid, self.label,
                self.commit_ts if self.commit_ts is not None
                else self.start_ts)

    def record_killer(self, killer: Optional[Tuple]) -> None:
        """Stamp killer identity (first writer wins, like ``doom``).

        ``killer`` is an ``(tid, uid, label, ts)`` identity tuple as
        produced by :meth:`identity`; ``None`` is a no-op so call sites
        need no guard when provenance is unavailable.
        """
        if killer is None or self.killer_uid is not None:
            return
        self.killer_tid, self.killer_uid, self.killer_label, \
            self.killer_ts = killer

    def doom(self, cause: AbortCause, line: Optional[int] = None,
             killer: Optional["Txn"] = None) -> None:
        """Mark this transaction for abort (requester-wins victim).

        ``line`` is the conflicting memory line when the detecting system
        knows it; recorded for conflict-heatmap attribution.  ``killer``
        is the transaction whose access doomed this one (the requester,
        for eager requester-wins policies); its identity feeds the
        killer→victim conflict graph.
        """
        if self.doomed is None:
            self.doomed = cause
            self.conflict_line = line
            if killer is not None:
                self.record_killer(killer.identity())

    @property
    def is_read_only(self) -> bool:
        """True when the transaction wrote nothing (and promoted nothing)."""
        return not self.write_lines and not self.promoted_lines

    def validation_lines(self) -> Set[int]:
        """Lines checked for write-write conflicts at commit.

        Promoted reads participate in validation without creating versions
        (section 5.1).
        """
        return self.write_lines | self.promoted_lines


class CommitToken:
    """A serialising resource: at most one commit in flight at a time.

    Lazy systems with bulk commits serialise them (section 4.2 discusses
    this bottleneck); the 2PL baseline's commit token (section 6.1) is the
    concrete instance.  ``acquire`` returns when the token becomes free, so
    the caller can charge the wait.
    """

    __slots__ = ("_busy_until",)

    def __init__(self) -> None:
        self._busy_until = 0

    def acquire(self, now: int, hold_cycles: int) -> int:
        """Acquire at local time ``now``, holding for ``hold_cycles``.

        Returns the wait (cycles spent queued before the token was granted).
        """
        wait = max(0, self._busy_until - now)
        self._busy_until = max(self._busy_until, now) + hold_cycles
        return wait


class TMSystem:
    """Abstract transactional-memory system.

    Subclasses implement one concurrency-control policy each.  All share:
    the machine (caches, backing store, MVM), the per-run statistics sink,
    an abort-backoff policy, and the line-granularity bookkeeping helpers.
    """

    #: human-readable system name, used in reports
    name = "abstract"
    #: isolation level this system guarantees for committed histories,
    #: checked by the oracle (:mod:`repro.oracle.checker`)
    isolation = IsolationLevel.CONFLICT_SERIALIZABLE
    #: abort causes this system may legitimately raise; the oracle flags
    #: any abort outside this set (plus the always-legal EXPLICIT and
    #: TIMESTAMP_OVERFLOW causes)
    ABORT_CAUSES: FrozenSet[AbortCause] = frozenset(AbortCause)
    #: cycles to acquire/release the commit token
    TOKEN_CYCLES = 10
    #: cycles per line written back at commit, on top of the L3 access
    WRITEBACK_CYCLES = 4
    #: cause the fault injector's spurious-abort site reports for this
    #: system (:mod:`repro.faults`) — a conflict-detection false
    #: positive, so each backend declares the conflict cause its own
    #: detector would raise; must be a member of ``ABORT_CAUSES`` so
    #: the oracle's cause check treats injected aborts as legal
    SPURIOUS_ABORT_CAUSE = AbortCause.EXPLICIT

    def __init__(self, machine: Machine, rng: SplitRandom):
        self.machine = machine
        self.config: SimConfig = machine.config
        self.amap = machine.address_map
        self.rng = rng
        if self.config.tm.backoff_enabled and self.uses_backoff():
            self.backoff = ExponentialBackoff(self.config.tm,
                                              rng.split("backoff"))
        else:
            self.backoff = NoBackoff()
        self.stats: Optional[RunStats] = None
        #: transactions currently in flight, by thread id
        self.active_txns: Dict[int, Txn] = {}
        #: declared capacity bounds, resolved once: tracked read lines,
        #: tracked write lines, speculative version-buffer entries.
        #: ``0`` = unbounded (the default, matching the paper's perfect
        #: sets); backends with built-in hardware bounds (HybridHTM)
        #: override these in their constructors.
        tm_cfg = self.config.tm
        self.read_set_limit = tm_cfg.read_set_limit
        self.write_set_limit = tm_cfg.write_set_limit
        self.version_buffer_limit = tm_cfg.version_buffer_limit
        #: set by the engine while a golden-token transaction runs: an
        #: escalated transaction executes like a software fallback, so
        #: hardware capacity bounds do not apply — this is what keeps
        #: "any limit x any seed terminates" true under retry policies
        self.capacity_suppressed = False
        #: fault injector, only when its plan squeezes capacity — every
        #: capacity check is two int tests when no bound is configured
        faults = machine.faults
        self._capacity_faults = (
            faults if faults is not None
            and faults.plan.squeezes_capacity() else None)
        #: next transaction uid; every successful begin registers exactly
        #: one transaction, so uids equal global begin order — the same
        #: order the span recorder indexes spans by
        self._next_uid = 0

    # -- policy hooks ---------------------------------------------------

    def uses_backoff(self) -> bool:
        """Whether this system applies exponential backoff after aborts."""
        return True

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        """Start a transaction; return ``(txn, cycles)``.

        A ``None`` transaction means the thread must stall and retry begin
        (SI-TM's Δ-protocol stall, section 4.2).
        """
        raise NotImplementedError

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        """Transactional load; return ``(value, cycles)``."""
        raise NotImplementedError

    def read_many(self, txn: Txn, addrs, promote: bool = False):
        """Bulk transactional load: ``(value, cycles)`` per address.

        Semantically a loop over :meth:`read` — and that is the default
        implementation every backend inherits — but a single entry point
        lets workloads that read a whole structure amortise the per-call
        dispatch, and lets backends override with a genuinely batched
        path (SI-TM's snapshot reads probe the MVM once per line).
        Ordering matters: reads are issued in ``addrs`` order, so cache
        and timing side effects are identical to the equivalent loop.
        """
        read = self.read
        return [read(txn, addr, promote) for addr in addrs]

    def write(self, txn: Txn, addr: int, value: int) -> int:
        """Transactional store; return cycles."""
        raise NotImplementedError

    def commit(self, txn: Txn, now: int) -> int:
        """Attempt to commit at local time ``now``; return cycles.

        ``now`` is the committing thread's local clock, used to queue on
        serialising resources (the commit token).  Raises
        :class:`TransactionAborted` when validation fails; the engine then
        calls :meth:`abort`.
        """
        raise NotImplementedError

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        """Clean up an aborting transaction; return cycles (incl. backoff)."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def _register(self, txn: Txn) -> None:
        if txn.thread_id in self.active_txns:
            raise TMError(
                f"thread {txn.thread_id} already has an active transaction")
        txn.uid = self._next_uid
        self._next_uid += 1
        self.active_txns[txn.thread_id] = txn

    def _deregister(self, txn: Txn) -> None:
        txn.active = False
        self.active_txns.pop(txn.thread_id, None)

    def others(self, txn: Txn):
        """Active transactions other than ``txn``."""
        for tid, other in self.active_txns.items():
            if tid != txn.thread_id and other.active:
                yield other

    def _backoff_cycles(self, txn: Txn) -> int:
        delay = self.backoff.delay(txn.attempt + 1)
        if self.stats is not None:
            self.stats.threads[txn.thread_id].backoff_cycles += delay
        metrics = self.machine.metrics
        if metrics is not None and delay:
            metrics.observe("tm_backoff_cycles", delay, system=self.name)
        profiler = self.machine.profiler
        if profiler is not None:
            profiler.sub_account(txn.thread_id, "abort", "backoff", delay)
        return delay

    def _commit_wait(self, txn: Txn, wait: int) -> None:
        """Record cycles spent queued on the commit token.

        Shared by every system that serialises commits (2PL, SONTM):
        the wait goes to the per-thread stats and, when telemetry is
        on, to the ``tm_commit_wait_cycles`` distribution — the
        commit-serialisation bottleneck section 4.2 discusses.
        """
        if self.stats is not None:
            self.stats.threads[txn.thread_id].commit_wait_cycles += wait
        metrics = self.machine.metrics
        if metrics is not None and wait:
            metrics.observe("tm_commit_wait_cycles", wait,
                            system=self.name)
        profiler = self.machine.profiler
        if profiler is not None:
            profiler.sub_account(txn.thread_id, "commit", "token_wait",
                                 wait)

    def _buffered_read(self, txn: Txn, addr: int) -> Optional[int]:
        """Value from the transaction's own write buffer, if written."""
        return txn.write_buffer.get(addr)

    def _check_version_buffer(self, txn: Txn) -> None:
        """Bounded-HTM version-buffer overflow (section 4.3).

        Conventional systems that buffer speculative writes in the L1 abort
        when the write set outgrows it.  Disabled (0) by default to match
        the paper's evaluation, which models perfect write sets.
        """
        limit = self.config.tm.version_buffer_lines
        if limit and len(txn.write_lines) > limit:
            from repro.common.errors import TransactionAborted
            raise TransactionAborted(AbortCause.VERSION_BUFFER_OVERFLOW)

    # -- capacity bounds (POWER-style limited-capacity HTM) ---------------

    def _capacity_abort(self, txn: Txn, cause: AbortCause, line: int,
                        size: int, limit: int) -> None:
        """Abort ``txn`` on a capacity overflow with full attribution.

        The overflowing line feeds the conflict heatmap (the profiler's
        ``on_abort`` hook attributes per-line, per-cause), and telemetry
        gets a dedicated per-cause capacity counter on top of the
        ordinary ``txn_aborts_total`` attribution.
        """
        txn.conflict_line = line
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.inc("tm_capacity_aborts_total", system=self.name,
                        cause=cause.value)
        from repro.common.errors import TransactionAborted
        raise TransactionAborted(
            cause, f"{size} entries exceed limit {limit}")

    def _charge_read_capacity(self, txn: Txn, line: int) -> None:
        """Charge the tracked read set against the read-set bound.

        Called at every read-line *tracking* site — systems with
        invisible readers (SI-TM) track no read lines and therefore
        never charge read capacity.  Both the declared limit and any
        fault-plan squeeze are two int tests when unconfigured, so the
        unlimited path stays byte-identical to pre-capacity behaviour.
        """
        if self.capacity_suppressed:
            return
        size = len(txn.read_lines)
        limit = self.read_set_limit
        if limit and size > limit:
            self._capacity_abort(txn, AbortCause.READ_CAPACITY, line,
                                 size, limit)
        faults = self._capacity_faults
        if faults is not None:
            squeezed = faults.capacity_limits()[0]
            if squeezed and size > squeezed:
                faults.note_capacity_abort("read")
                self._capacity_abort(txn, AbortCause.READ_CAPACITY, line,
                                     size, squeezed)

    def _charge_write_capacity(self, txn: Txn, line: int) -> None:
        """Charge the tracked write set against the write-set bound."""
        if self.capacity_suppressed:
            return
        size = len(txn.write_lines)
        limit = self.write_set_limit
        if limit and size > limit:
            self._capacity_abort(txn, AbortCause.WRITE_CAPACITY, line,
                                 size, limit)
        faults = self._capacity_faults
        if faults is not None:
            squeezed = faults.capacity_limits()[1]
            if squeezed and size > squeezed:
                faults.note_capacity_abort("write")
                self._capacity_abort(txn, AbortCause.WRITE_CAPACITY, line,
                                     size, squeezed)

    def _charge_version_capacity(self, txn: Txn, line: int,
                                 occupancy: int) -> None:
        """Charge the speculative version buffer against its bound.

        ``occupancy`` is backend-defined: buffered store words for
        lazy-versioning systems, undo-log entries for eager ones.
        """
        if self.capacity_suppressed:
            return
        limit = self.version_buffer_limit
        if limit and occupancy > limit:
            self._capacity_abort(txn, AbortCause.VERSION_CAPACITY, line,
                                 occupancy, limit)
        faults = self._capacity_faults
        if faults is not None:
            squeezed = faults.capacity_limits()[2]
            if squeezed and occupancy > squeezed:
                faults.note_capacity_abort("buffer")
                self._capacity_abort(txn, AbortCause.VERSION_CAPACITY,
                                     line, occupancy, squeezed)

    # -- plain (non-transactional) timed access ---------------------------

    def plain_read(self, thread_id: int, addr: int) -> Tuple[int, int]:
        """Non-transactional load with cache timing."""
        line = self.amap.line_of(addr)
        cycles = self.machine.caches.access(thread_id, line)
        return self.machine.plain_load(addr), cycles

    def plain_write(self, thread_id: int, addr: int, value: int) -> int:
        """Non-transactional store with cache timing."""
        line = self.amap.line_of(addr)
        cycles = self.machine.caches.access(thread_id, line)
        self.machine.plain_store(addr, value)
        return cycles
