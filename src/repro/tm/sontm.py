"""The SONTM conflict-serializability baseline (section 6.1, after [4]).

SONTM relaxes 2PL: conflicting accesses are *tracked*, not aborted.  Every
transaction maintains a **serializability order number (SON) range**
``[lo, hi]``; conflicts shrink the range, and a transaction commits iff the
range is non-empty at commit, choosing its SON from the range.

Bookkeeping modelled after the paper's description:

* a **global write-numbers hashtable** in main memory maps each
  transactionally written line to the SON of its last committed writer —
  reading such a line forces ``lo`` above that SON (you read the value, so
  you serialise after its writer);
* a per-core **read-history table** (modelled, as in the paper's
  evaluation, as optimistically infinite) records committed readers —
  a committing writer must serialise after committed readers of its write
  set, which the commit-time write-set broadcast enforces;
* conflicts between *concurrent* transactions record directed edges
  ("A must serialise before B").  When one side commits with SON ``s``,
  the surviving side's range shrinks: predecessors get ``hi <= s - 1``,
  successors get ``lo >= s + 1``.  This reproduces CS's temporal
  dependencies — Figure 6's long reader aborts here but commits under SSI.

Costs follow section 6.1's critique: commit broadcasts the write set to all
cores and updates the write-numbers hashtable in memory, which is exactly
the overhead the paper calls SONTM's weak point.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import CommitToken, IsolationLevel, TMSystem, Txn

_INF = None  # open upper bound


class SONTM(TMSystem):
    """Conflict-serializable TM using serializability order numbers."""

    name = "SONTM"
    isolation = IsolationLevel.CONFLICT_SERIALIZABLE
    ABORT_CAUSES = frozenset({
        AbortCause.SON_RANGE_EMPTY, AbortCause.READ_WRITE,
        AbortCause.WRITE_WRITE, AbortCause.VERSION_BUFFER_OVERFLOW,
        AbortCause.READ_CAPACITY, AbortCause.WRITE_CAPACITY,
        AbortCause.VERSION_CAPACITY, AbortCause.EXPLICIT})
    #: an injected false positive looks like a commit-time empty SON range
    SPURIOUS_ABORT_CAUSE = AbortCause.SON_RANGE_EMPTY
    #: headroom left below a freshly chosen SON so that concurrent
    #: predecessors (which may commit later) still find a non-empty range
    SON_GAP = 1 << 20

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        self.token = CommitToken()
        #: line -> SON of its most recent committed writer
        self.write_numbers: Dict[int, int] = {}
        #: line -> highest SON among committed readers (infinite read-history)
        self.read_history: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        txn = Txn(thread_id, label, attempt)
        txn.son_lo = 0
        txn.son_hi = _INF
        self._register(txn)
        return txn, self.config.txn_overhead_cycles

    @staticmethod
    def _order(first: Txn, second: Txn) -> None:
        """Record that ``first`` must serialise before ``second``."""
        first.before.add(second)
        second.after.add(first)

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        buffered = self._buffered_read(txn, addr)
        line = self.amap.line_of(addr)
        if buffered is not None:
            return buffered, self.config.machine.l1d.latency_cycles
        cycles = self.machine.caches.access(txn.thread_id, line)
        if line not in txn.read_lines:
            cycles += self.machine.interconnect.broadcast_cost()
            committed_writer = self.write_numbers.get(line)
            if committed_writer is not None:
                # we read that writer's value -> serialise after it
                txn.son_lo = max(txn.son_lo, committed_writer + 1)
            for other in self.others(txn):
                if line in other.write_lines:
                    # we read the old value -> we precede the writer
                    self._order(txn, other)
            txn.read_lines.add(line)
            self._charge_read_capacity(txn, line)
        return self.machine.plain_load(addr), cycles

    def write(self, txn: Txn, addr: int, value: int) -> int:
        line = self.amap.line_of(addr)
        cycles = self.config.machine.l1d.latency_cycles
        if line not in txn.write_lines:
            cycles += self.machine.interconnect.broadcast_cost()
            for other in self.others(txn):
                if line in other.read_lines or line in other.write_lines:
                    # the concurrent reader saw (or concurrent writer will
                    # be overwritten by) the pre-write value: they precede us
                    self._order(other, txn)
            txn.write_lines.add(line)
            self._check_version_buffer(txn)
            self._charge_write_capacity(txn, line)
        txn.write_buffer[addr] = value
        self._charge_version_capacity(txn, line, len(txn.write_buffer))
        return cycles

    def commit(self, txn: Txn, now: int) -> int:
        cycles = self.config.txn_overhead_cycles
        # Committed readers of our write set force us above their SONs
        # (the commit-time write-set broadcast against read-history tables).
        for line in txn.write_lines:
            reader = self.read_history.get(line)
            if reader is not None:
                txn.son_lo = max(txn.son_lo, reader + 1)
            writer = self.write_numbers.get(line)
            if writer is not None:
                txn.son_lo = max(txn.son_lo, writer + 1)
        if txn.son_hi is not _INF and txn.son_lo > txn.son_hi:
            # the range can only be empty once a concurrent committer
            # lowered our upper bound; that committer is the killer
            txn.record_killer(txn.son_hi_setter)
            self._deregister(txn)
            raise TransactionAborted(AbortCause.SON_RANGE_EMPTY)
        # Choose the SON leaving headroom *below* for concurrent
        # transactions that must serialise before us but commit later
        # (commit order need not match serialisation order under CS): an
        # unconstrained upper bound gets lo + GAP; a constrained one takes
        # the highest admissible number.
        son = txn.son_lo + self.SON_GAP if txn.son_hi is _INF else txn.son_hi
        # Propagate ordering constraints to surviving concurrent txns.
        identity = (txn.thread_id, txn.uid, txn.label, son)
        for other in txn.before:
            if other.active:
                other.son_lo = max(other.son_lo, son + 1)
        for other in txn.after:
            if other.active:
                bound = son - 1
                if other.son_hi is _INF or other.son_hi > bound:
                    other.son_hi = bound
                    # we hold the victim's binding upper bound; if its
                    # range turns up empty at commit, we are the killer
                    other.son_hi_setter = identity
        # Publish: write numbers + data write-back, serialised by a token.
        if txn.write_buffer:
            hold = (self.TOKEN_CYCLES
                    + self.machine.interconnect.point_to_point_cost())
            # write-set broadcast to every core's read-history table
            hold += (self.machine.interconnect.broadcast_cost()
                     + 2 * len(txn.write_lines))
            for line in txn.write_lines:
                # hashtable update + data write in main memory (section 6.1)
                hold += (self.machine.caches.shared_access(line)
                         + self.WRITEBACK_CYCLES
                         + self.config.machine.memory_latency_cycles // 4)
            wait = self.token.acquire(now, hold)
            self._commit_wait(txn, wait)
            cycles += wait + hold
            for addr, value in txn.write_buffer.items():
                self.machine.plain_store(addr, value)
            for line in txn.write_lines:
                prev = self.write_numbers.get(line)
                self.write_numbers[line] = son if prev is None else max(prev, son)
        for line in txn.read_lines:
            prev = self.read_history.get(line)
            self.read_history[line] = son if prev is None else max(prev, son)
        self._deregister(txn)
        return cycles

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        self._deregister(txn)
        # sever edges so later commits don't constrain a dead transaction
        for other in txn.before:
            other.after.discard(txn)
        for other in txn.after:
            other.before.discard(txn)
        return self.config.txn_overhead_cycles + self._backoff_cycles(txn)
