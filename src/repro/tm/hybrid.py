"""A POWER-style hybrid HTM: bounded hardware mode + lock fallback.

Commercial best-effort HTMs (POWER8, Blue Gene/Q) give no forward-progress
guarantee: the hardware aborts any transaction whose footprint outgrows
the tracking structures, so every deployment pairs speculation with a
software fallback.  This backend models the standard discipline:

* **hardware mode** — the 2PL baseline's eager requester-wins protocol,
  but with *finite* read/write tracking (``HW_READ_LINES`` /
  ``HW_WRITE_LINES`` cache-line entries, standing in for POWER's
  L2-backed load/store footprints).  Overflow raises the declared
  ``read-capacity`` / ``write-capacity`` causes; explicit
  ``read_set_limit`` / ``write_set_limit`` config knobs override the
  built-in bounds when non-zero.
* **bounded retries** — a logical transaction gets
  ``hybrid_hw_attempts`` hardware attempts (config knob;
  ``HW_ATTEMPTS`` when unset).  Persistent aborts — capacity or
  conflict — escalate instead of retrying forever.
* **serialized fallback** — an escalating thread first *quiesces* the
  hardware (new begins stall, in-flight speculation drains), then runs
  non-speculatively under a global lock: suspended-mode accesses pay
  cache timing but are untracked — no coherence broadcasts, no capacity
  charges — and cannot be aborted by hardware conflicts.  While the lock
  is held every other begin stalls, so the fallback section is trivially
  serializable; its buffered writes publish through the commit token
  like any lazy commit.

The fallback's *serialization* is the safety-critical ingredient, so it
doubles as an oracle self-test hook: setting ``fallback_serializes``
False (on an instance; the ``--broken no-lock`` fuzz hook does this)
removes the quiesce/stall discipline, letting untracked fallback
accesses race live speculation — the lost updates that result are
exactly the anomaly the isolation oracle must flag.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.common.errors import AbortCause
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import Txn
from repro.tm.twopl import TwoPhaseLockingTM


class HybridHTM(TwoPhaseLockingTM):
    """Capacity-bounded eager HTM with a serialized global-lock fallback."""

    name = "HybridHTM"
    # isolation + ABORT_CAUSES inherited from 2PL: the capacity causes are
    # already declared there, and the serialized fallback preserves
    # conflict serializability.
    #: built-in hardware read-set tracking capacity (cache lines)
    HW_READ_LINES = 64
    #: built-in hardware write-set tracking capacity (cache lines)
    HW_WRITE_LINES = 32
    #: hardware attempts per logical transaction before lock escalation
    HW_ATTEMPTS = 2
    #: cycles to acquire the global fallback lock (uncontended fetch-op
    #: in shared memory)
    LOCK_CYCLES = 20
    #: oracle test hook: setting this False (on an instance) removes the
    #: fallback's mutual exclusion — untracked fallback accesses then
    #: race live hardware transactions, producing lost updates the
    #: isolation checker must catch (``--broken no-lock``)
    fallback_serializes = True

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        # hardware bounds are intrinsic here: explicit config knobs win,
        # the built-in footprints apply otherwise (unlike the other
        # backends, whose sets are perfect unless configured)
        if not self.read_set_limit:
            self.read_set_limit = self.HW_READ_LINES
        if not self.write_set_limit:
            self.write_set_limit = self.HW_WRITE_LINES
        self.hw_attempts = (self.config.tm.hybrid_hw_attempts
                            or self.HW_ATTEMPTS)
        #: threads currently executing in the serial fallback section
        #: (at most one while ``fallback_serializes`` holds)
        self.fallback_threads: Set[int] = set()
        #: thread queued for the lock, draining in-flight speculation
        self._fallback_waiting: Optional[int] = None
        self.fallback_entries = 0
        self.fallback_commits = 0

    # ------------------------------------------------------------------

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        cycles = self.config.txn_overhead_cycles
        wants_fallback = attempt >= self.hw_attempts
        if self.fallback_serializes:
            if self.fallback_threads:
                # serial section in progress: everyone else stalls
                return None, cycles
            if self._fallback_waiting is not None \
                    and self._fallback_waiting != thread_id:
                # quiesce: no new speculation while a faller drains us
                return None, cycles
            if wants_fallback:
                if self.active_txns:
                    self._fallback_waiting = thread_id
                    return None, cycles
                self._fallback_waiting = None
                return self._enter_fallback(thread_id, label, attempt,
                                            cycles + self.LOCK_CYCLES)
        elif wants_fallback:
            # broken mode: take the "lock" without quiescing or gating —
            # the oracle self-test path
            return self._enter_fallback(thread_id, label, attempt, cycles)
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, cycles

    def _enter_fallback(self, thread_id: int, label: str, attempt: int,
                        cycles: int) -> Tuple[Txn, int]:
        """Start a non-speculative serial-mode transaction."""
        self.fallback_threads.add(thread_id)
        self.fallback_entries += 1
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.inc("tm_hybrid_fallback_total", system=self.name)
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, cycles

    # ------------------------------------------------------------------

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        if txn.thread_id in self.fallback_threads:
            # suspended-mode access: cache timing, no tracking, no
            # broadcasts, no capacity charge
            buffered = txn.write_buffer.get(addr)
            if buffered is not None:
                return buffered, self.config.machine.l1d.latency_cycles
            line = self.amap.line_of(addr)
            cycles = self.machine.caches.access(txn.thread_id, line)
            return self.machine.plain_load(addr), cycles
        return super().read(txn, addr, promote)

    def write(self, txn: Txn, addr: int, value: int) -> int:
        if txn.thread_id in self.fallback_threads:
            # write lines are kept only to cost the commit write-back;
            # nothing is broadcast and nothing charges capacity
            txn.write_lines.add(self.amap.line_of(addr))
            txn.write_buffer[addr] = value
            return self.config.machine.l1d.latency_cycles
        return super().write(txn, addr, value)

    def commit(self, txn: Txn, now: int) -> int:
        if txn.thread_id in self.fallback_threads:
            # the serial section is non-speculative: hardware conflicts
            # cannot abort it (there is no footprint to hit) — any doom
            # and its provenance recorded before escalation is void
            txn.doomed = None
            txn.conflict_line = None
            txn.killer_tid = txn.killer_uid = None
            txn.killer_label = txn.killer_ts = None
            try:
                cycles = super().commit(txn, now)
            finally:
                self.fallback_threads.discard(txn.thread_id)
            self.fallback_commits += 1
            return cycles
        return super().commit(txn, now)

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        # an explicit (workload-requested) abort releases the lock too
        self.fallback_threads.discard(txn.thread_id)
        return super().abort(txn, cause)
