"""SI-TM: snapshot-isolation transactional memory (section 4).

The paper's contribution.  Transactions read from a logical snapshot taken
at TM BEGIN (a start timestamp into the multiversioned memory), buffer
writes privately, and validate **only write-write conflicts** at commit by
comparing the newest committed version timestamp of each written line with
the start timestamp.  Consequences implemented here, following section 4:

* **TM BEGIN** — one atomic increment of the global timestamp counter;
  stalls only when Δ+1 transactions start during an in-flight commit.
* **TM READ** — served from the write buffer or from the snapshot via the
  MVM; *invisible readers*: no coherence traffic, no read-set tracking.
  Reads of MVM lines that miss the private caches pay the indirection-layer
  lookup, mitigated by the translation (X-Late) cache of Figure 5.
* **TM WRITE** — buffered, line marked transactional, no broadcasts.
  Unbounded: the write set spills to versioned memory rather than aborting.
* **TM COMMIT** — read-only transactions commit with zero overhead.
  Writers obtain an end timestamp via the Δ-protocol, validate their write
  set against version-list timestamps (timestamp-based conflict detection:
  one comparison against the whole committed history), install new
  versions (with GC-on-write and coalescing inside the MVM), and invalidate
  other cores' stale copies.  The optional word-granularity filter
  dismisses false-sharing and silent-store conflicts (section 4.2).
* **Aborts** are only: write-write conflicts, version-cap overflow
  (section 3.1's policy), and snapshot-too-old under the DROP_OLDEST
  policy.  No backoff is needed — committed work is never undone by a
  concurrent reader, so lazy validation guarantees progress.

**Promoted reads** (section 5.1) join the validation set but install no
versions, exactly as the write-skew tool requires.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.config import CacheConfig
from repro.common.errors import (
    AbortCause,
    TimestampOverflowError,
    TMError,
    TransactionAborted,
)
from repro.common.rng import SplitRandom
from repro.mem.address import MVM_REGION_BASE
from repro.mem.cache import SetAssociativeCache
from repro.mvm.version_list import CapExceeded, SnapshotTooOld
from repro.sim.machine import Machine
from repro.tm.api import IsolationLevel, TMSystem, Txn


class SnapshotIsolationTM(TMSystem):
    """SI-TM: aborts on write-write conflicts only."""

    name = "SI-TM"
    isolation = IsolationLevel.SNAPSHOT
    ABORT_CAUSES = frozenset({
        AbortCause.WRITE_WRITE, AbortCause.VERSION_OVERFLOW,
        AbortCause.SNAPSHOT_TOO_OLD, AbortCause.TIMESTAMP_OVERFLOW,
        AbortCause.WRITE_CAPACITY, AbortCause.VERSION_CAPACITY,
        AbortCause.EXPLICIT})
    #: an injected false positive looks like a first-committer-wins
    #: write-write conflict (the only conflict SI-TM detects)
    SPURIOUS_ABORT_CAUSE = AbortCause.WRITE_WRITE
    #: version-list entries per metadata line (section 3.2: eight per line)
    ENTRIES_PER_METADATA_LINE = 8
    #: extra cycles for MVM controller version compare + line allocation
    MVM_CONTROL_CYCLES = 2
    #: oracle test hook: setting this False (on an instance) disables
    #: commit-time write-write validation, deliberately breaking snapshot
    #: isolation so the checker's detection path can be exercised
    ww_validation = True

    def __init__(self, machine: Machine, rng: SplitRandom):
        super().__init__(machine, rng)
        self.mvm = machine.mvm
        # X-Late translation cache (Figure 5): a small cache of version-list
        # lines probed in parallel with the L2 to hide indirection latency.
        self.xlate = SetAssociativeCache(
            CacheConfig(size_bytes=16 * 1024, associativity=4,
                        latency_cycles=0),
            name="xlate")
        #: set when the global timestamp counter overflowed; begins stall
        #: until the last doomed transaction drains and the MVM resets
        self._overflow_pending = False
        self.timestamp_overflows = 0
        # hoisted hot-path state: the read/write paths run once per
        # simulated memory operation, so attribute chains and repeated
        # config lookups are paid here instead.  Bound methods are safe
        # to cache — the machine never swaps its caches or controller.
        self._wpl = machine.address_map.words_per_line
        self._l1_lat = machine.config.machine.l1d.latency_cycles
        self._l2_lat = machine.config.machine.l2.latency_cycles
        self._access = machine.caches.access
        self._access_tracked = machine.caches.access_tracked
        self._snapshot_read = machine.mvm.snapshot_read

    def uses_backoff(self) -> bool:
        """SI-TM needs no backoff: lazy commits guarantee progress."""
        return False

    # ------------------------------------------------------------------

    def begin(self, thread_id: int, label: str,
              attempt: int) -> Tuple[Optional[Txn], int]:
        cycles = self.config.txn_overhead_cycles
        if self._overflow_pending and not self._drain_overflow():
            return None, cycles
        try:
            start_ts = self.machine.clock.next_start()
        except TimestampOverflowError:
            self._raise_overflow_interrupt()
            return None, cycles
        if start_ts is None:
            # Δ-protocol stall: an in-flight commit exhausted its headroom.
            return None, cycles
        txn = Txn(thread_id, label, attempt)
        txn.start_ts = start_ts
        txn.epoch = self.machine.clock.epoch
        self.mvm.active.add(start_ts)
        self._register(txn)
        return txn, cycles

    def _indirection_cycles(self, line: int) -> int:
        """Latency of the version-list lookup for an L2-missing access.

        One metadata line serves ENTRIES_PER_METADATA_LINE consecutive
        data lines; a hit in the translation cache hides the lookup
        entirely (probed in parallel with L2, section 3.2).
        """
        metadata_line = line // self.ENTRIES_PER_METADATA_LINE
        if self.xlate.lookup(metadata_line):
            return 0
        self.xlate.fill(metadata_line)
        return self.machine.caches.shared_access(metadata_line)

    def read(self, txn: Txn, addr: int, promote: bool = False,
             ) -> Tuple[int, int]:
        # this is the hottest method in the simulator (one call per
        # simulated load); line/word math and the MVM-region test are
        # inlined and the per-access collaborators pre-bound in __init__
        wpl = self._wpl
        line = addr // wpl
        is_mvm = addr >= MVM_REGION_BASE
        if promote and is_mvm:
            # promotion = commit-time validation against version
            # timestamps; conventional addresses have none (thread-private
            # or immutable data), so promotion is a no-op there
            txn.promoted_lines.add(line)
        buffered = txn.write_buffer.get(addr)
        if buffered is not None:
            return buffered, self._l1_lat
        cycles = self._access(txn.thread_id, line)
        if not is_mvm:
            return self.machine.backing.load(addr), cycles
        if cycles > self._l2_lat:
            # L2 miss: the access reaches the MVM controller and pays the
            # indirection lookup unless the translation cache hides it.
            cycles += self._indirection_cycles(line)
            cycles += self.MVM_CONTROL_CYCLES
        try:
            data = self._snapshot_read(line, txn.start_ts)
        except SnapshotTooOld:
            txn.conflict_line = line
            raise TransactionAborted(
                AbortCause.SNAPSHOT_TOO_OLD,
                f"line {line:#x} has no version <= {txn.start_ts}")
        if data is None:
            return 0, cycles
        return data[addr % wpl], cycles

    def write(self, txn: Txn, addr: int, value: int) -> int:
        if addr < MVM_REGION_BASE:
            # Only multiversioned memory carries version timestamps, so
            # write-write conflicts on conventional addresses would go
            # undetected — silent lost updates.  The paper requires
            # transactionally written data to be mvmalloc'd (section 4.4);
            # fail loudly instead of corrupting.
            raise TMError(
                f"SI-TM transactional write to conventional address "
                f"{addr:#x}; transactional data must be allocated with "
                f"mvmalloc() (section 4.4)")
        line = addr // self._wpl
        if line not in txn.write_lines:
            txn.write_lines.add(line)
            self._charge_write_capacity(txn, line)
        txn.write_buffer[addr] = value
        self._charge_version_capacity(txn, line, len(txn.write_buffer))
        # Lazy detection: no coherence messages (section 4.2); the line is
        # simply marked transactionally written in the L1 (write-allocate).
        cycles, evicted = self._access_tracked(txn.thread_id, line)
        if evicted is not None and evicted in txn.write_lines:
            # an uncommitted transactionally-written line left the private
            # caches: the MVM stores it under a temporary ID, visible only
            # to this transaction — this is how SI-TM avoids version-buffer
            # overflow aborts (sections 4.2/4.3)
            self.mvm.store_transient(evicted, txn.thread_id,
                                     self.machine.line_data(evicted))
            cycles += self.machine.caches.shared_access(evicted)
        return cycles

    # ------------------------------------------------------------------

    def _validate(self, txn: Txn) -> None:
        """Timestamp-based write-write validation (section 4.2).

        Delegates to the MVM's batched ``validate_many`` so the whole
        validation set is checked in one controller call (one version-list
        probe per line).  When the word-granularity filter is on, the
        written words are grouped per line eagerly — only write lines get
        an entry, so promoted-read conflicts are never filtered, exactly
        as in the per-line path.
        """
        if not self.ww_validation:
            return
        written_words = None
        if self.config.tm.word_grain_commit_filter and txn.write_lines:
            wpl = self._wpl
            written_words = {}
            for addr, value in txn.write_buffer.items():
                written_words.setdefault(addr // wpl, {})[addr % wpl] = value
        conflict = self.mvm.validate_many(
            sorted(txn.validation_lines()), txn.start_ts, written_words)
        if conflict is not None:
            txn.conflict_line = conflict
            # first committer wins: the killer is whoever installed the
            # conflicting line's newest version after our snapshot
            txn.record_killer(self.mvm.newest_installer(conflict))
            raise TransactionAborted(
                AbortCause.WRITE_WRITE, f"line {conflict:#x}")

    def _build_line(self, txn: Txn, line: int) -> tuple:
        """Merge buffered words onto the current newest version of ``line``.

        After validation the newest version equals the snapshot-visible
        one, so this is the snapshot merge; when the word-granularity
        filter dismissed a false-sharing conflict, basing on the newest
        version is what merges the two writers' disjoint words.
        """
        base = self.mvm.plain_read(line)
        words = list(base) if base is not None \
            else [0] * self.amap.words_per_line
        base_addr = self.amap.line_base(line)
        for addr, value in txn.write_buffer.items():
            if self.amap.line_of(addr) == line:
                words[addr - base_addr] = value
        return tuple(words)

    def commit(self, txn: Txn, now: int) -> int:
        if txn.is_read_only:
            # Read-only transactions commit with zero overhead: no end
            # timestamp, no checks (section 4.2).
            self._release(txn)
            return 0
        cycles = self.config.txn_overhead_cycles
        try:
            end_ts = self.machine.clock.begin_commit()
        except TimestampOverflowError:
            # the counter cannot mint an end timestamp: overflow interrupt
            self._raise_overflow_interrupt()
            self._release(txn)
            raise TransactionAborted(AbortCause.TIMESTAMP_OVERFLOW)
        try:
            self._validate(txn)
        except TransactionAborted:
            self.machine.clock.abandon_commit(end_ts)
            self._release(txn)
            raise
        # Release our snapshot before installing so coalescing considers
        # only *other* transactions' start timestamps.
        self._remove_start(txn)
        # the write path rejects conventional addresses, so every written
        # line is multiversioned
        mvm_lines = sorted(txn.write_lines)
        # Merge the buffered words onto each line's newest version, all
        # lookups in one controller call: a commit installs each line at
        # most once, so one line's install can't change another's base.
        wpl = self._wpl
        bases = self.mvm.newest_many(mvm_lines)
        merged = {}
        for addr, value in txn.write_buffer.items():
            merged.setdefault(addr // wpl, {})[addr] = value
        items = []
        for line in mvm_lines:
            base = bases[line]
            words = list(base) if base is not None else [0] * wpl
            base_addr = line * wpl
            for addr, value in merged[line].items():
                words[addr - base_addr] = value
            items.append((line, tuple(words)))
        install_cycles = 0
        shared_access = self.machine.caches.shared_access
        invalidate = self.machine.caches.invalidate_everywhere
        bundle_copy_lines = self.mvm.bundle_copy_lines
        writeback = self.WRITEBACK_CYCLES
        tid = txn.thread_id

        def charge(line: int, data: tuple) -> None:
            # per-line commit cost, run by install_many after each install
            # so the cache/coherence effects interleave with the installs
            # exactly as the old per-line loop did (observable when a
            # mid-commit CapExceeded leaves the prefix's effects in place)
            nonlocal install_cycles
            install_cycles += (shared_access(line) + writeback
                               + self.MVM_CONTROL_CYCLES
                               # bundled configurations copy the whole
                               # bundle on its first write (section 3.2's
                               # capacity/write trade-off)
                               + bundle_copy_lines(line) * writeback)
            invalidate(line, except_core=tid)

        try:
            self.mvm.install_many(
                end_ts, items, on_installed=charge,
                installer=(tid, txn.uid, txn.label, end_ts))
        except CapExceeded as exc:
            # Optimistic commit is itself transactional: install_many
            # already undid our versions; release the reservation.
            self.machine.clock.abandon_commit(end_ts)
            self._release(txn)
            txn.conflict_line = exc.line
            raise TransactionAborted(AbortCause.VERSION_OVERFLOW)
        cycles += install_cycles
        faults = self.machine.faults
        if faults is not None:
            # injected GC pause: reclamation work this commit's installs
            # triggered (coalesce/collect events) runs slow
            pause = faults.drain_gc_pause()
            if pause:
                cycles += pause
                fault_profiler = self.machine.profiler
                if fault_profiler is not None:
                    fault_profiler.sub_account(txn.thread_id, "commit",
                                               "fault_gc_pause", pause)
        self.machine.clock.finish_commit(end_ts)
        txn.commit_ts = end_ts
        metrics = self.machine.metrics
        if metrics is not None:
            # write-set size per committing writer: the version-install
            # burst each commit puts on the MVM controller
            metrics.observe("tm_commit_install_lines", len(mvm_lines),
                            system=self.name)
        profiler = self.machine.profiler
        if profiler is not None:
            profiler.sub_account(txn.thread_id, "commit", "install",
                                 install_cycles)
        self._release(txn)
        return cycles

    # ------------------------------------------------------------------

    def _raise_overflow_interrupt(self) -> None:
        """Section 4.1: on counter overflow, abort all active transactions
        and trap to software; the software handler (here ``_drain_overflow``)
        resets the counter once the last victim has drained."""
        self.timestamp_overflows += 1
        self._overflow_pending = True
        for other in list(self.active_txns.values()):
            other.doom(AbortCause.TIMESTAMP_OVERFLOW)

    def _drain_overflow(self) -> bool:
        """Complete the overflow interrupt once no transaction is active.

        Persists the newest committed versions to the backing store,
        discards version history, and restarts the counter from zero.
        Returns True when normal operation may resume.
        """
        if self.active_txns or len(self.mvm.active):
            return False
        self.mvm.flush_all_versions(self.machine.backing)
        self.xlate.flush()
        self._overflow_pending = False
        return True

    def _remove_start(self, txn: Txn) -> None:
        if not txn.start_removed and txn.start_ts is not None:
            self.mvm.active.remove(txn.start_ts)
            txn.start_removed = True

    def _release(self, txn: Txn) -> None:
        self._remove_start(txn)
        self.mvm.drop_transients(txn.thread_id, txn.write_lines)
        self._deregister(txn)

    def abort(self, txn: Txn, cause: AbortCause) -> int:
        # Commit-path aborts already released; make cleanup idempotent.
        if txn.thread_id in self.active_txns \
                and self.active_txns[txn.thread_id] is txn:
            self._release(txn)
        else:
            self._remove_start(txn)
        # No undo log to walk: previous versions still exist (section 4.3).
        return self.config.txn_overhead_cycles + self._backoff_cycles(txn)
