"""Workload framework.

A :class:`Workload` describes one benchmark (its shared structures and
transaction mix); ``setup`` instantiates it on a machine and returns a
:class:`WorkloadInstance` that hands the engine per-thread programs.  The
instance also carries an optional consistency ``verify`` hook so tests can
assert that serializable systems (and skew-fixed SI) leave structures
healthy.

Scaling profiles: the paper's STAMP runs execute billions of instructions
on a cycle-accurate simulator; a pure-Python reproduction cannot (see
DESIGN.md).  Every workload therefore exposes three profiles that keep the
paper's *mix ratios and contention relationships* while shrinking sizes:

* ``test``  — seconds-scale, for the pytest suite;
* ``quick`` — the pytest-benchmark default;
* ``full``  — the harness CLI default, closest to the paper's parameters
  (the microbenchmarks keep the paper's structure sizes exactly).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.common.errors import ConfigError
from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine

PROFILES = ("test", "quick", "full")
CONTENTION_LEVELS = ("low", "standard", "high")


@dataclass
class WorkloadInstance:
    """One ready-to-run instantiation of a workload on a machine."""

    machine: Machine
    programs: Sequence[Sequence[TransactionSpec]]
    verify: Optional[Callable[[], bool]] = None


class Workload(abc.ABC):
    """A benchmark: shared-state builder plus transaction mix."""

    #: registry key and report label
    name: str = "abstract"
    #: one-line description for reports
    description: str = ""

    def __init__(self, profile: str = "quick",
                 contention: str = "standard"):
        if profile not in PROFILES:
            raise ConfigError(
                f"unknown profile {profile!r}; expected one of {PROFILES}")
        if contention not in CONTENTION_LEVELS:
            raise ConfigError(
                f"unknown contention {contention!r}; expected one of "
                f"{CONTENTION_LEVELS}")
        self.profile = profile
        self.contention = contention

    @abc.abstractmethod
    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        """Build shared state and per-thread transaction programs.

        The *total* number of transactions should be independent of
        ``num_threads`` (work is partitioned, not multiplied) so that
        Figure 8's speedup compares equal work at every thread count.
        """

    def _pick(self, test: int, quick: int, full: int) -> int:
        """Choose a size parameter by profile."""
        return {"test": test, "quick": quick, "full": full}[self.profile]

    def _contended(self, low, standard, high):
        """Choose a parameter by contention level (STAMP's -/+/++ analogue).

        STAMP ships low- and high-contention configurations of several
        applications; the level typically scales the shared-structure size
        inversely (smaller structure = hotter lines) or the conflict
        footprint directly.
        """
        return {"low": low, "standard": standard,
                "high": high}[self.contention]


class WorkloadRegistry:
    """Name -> workload class registry used by the harness."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Workload]] = {}

    def register(self, cls: Type[Workload]) -> Type[Workload]:
        """Class decorator: register a workload under its ``name``."""
        if cls.name in self._classes:
            raise ConfigError(f"duplicate workload name {cls.name!r}")
        self._classes[cls.name] = cls
        return cls

    def create(self, name: str, profile: str = "quick",
               contention: str = "standard") -> Workload:
        """Instantiate a registered workload."""
        try:
            cls = self._classes[name]
        except KeyError:
            raise ConfigError(
                f"unknown workload {name!r}; known: {sorted(self._classes)}"
            ) from None
        return cls(profile=profile, contention=contention)

    def names(self) -> List[str]:
        """All registered workload names, sorted."""
        return sorted(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes


#: the process-wide registry
REGISTRY = WorkloadRegistry()


def partition(total: int, num_threads: int) -> List[int]:
    """Split ``total`` transactions across threads as evenly as possible."""
    base, extra = divmod(total, num_threads)
    return [base + (1 if i < extra else 0) for i in range(num_threads)]
