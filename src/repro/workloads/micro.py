"""The three RSTM microbenchmarks of section 6.2.

* **Array** — fixed array (paper: 30K cells); per thread (paper: 1000
  transactions) 20% long read transactions that iterate the whole array
  and 80% update transactions touching two random cells.  The long reads
  make 2PL livelock while SI commits them all — the 3000x abort-reduction
  headline.
* **List** — sorted singly-linked list of 1000 elements; 40% insert,
  40% remove, 20% lookup.  Every operation traverses from the head (many
  reads) but modifies at most one element, so read-write conflicts dwarf
  write-write ones.
* **RBTree** — red-black tree initialised with 100 elements; 50% lookup,
  25% insert, 25% delete.

The microbenchmarks keep the paper's *structure sizes and mixes* in the
``full`` profile and shrink only transaction counts / iteration footprints
in the smaller profiles (documented per parameter below).  Lists and trees
use the skew-safe variants, as the paper's corrected library does — the
un-fixed variants are exercised by :mod:`repro.skew` instead.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray, TxLinkedList, TxRedBlackTree
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)


@REGISTRY.register
class ArrayBench(Workload):
    """Long array scans vs point updates (Figure 7/8 "Array")."""

    name = "array"
    description = "fixed array; 20% full-scan reads, 80% 2-cell updates"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        # paper: 30K cells, 1000 txns/thread.  The cell count must stay
        # large relative to the update rate: with too few lines, a pinned
        # long-scan snapshot makes hot lines exceed the 4-version cap and
        # SI aborts on VERSION_OVERFLOW instead of almost never — the
        # paper's 30K cells keep versions-per-line-per-scan well below 1.
        size = self._pick(test=2048, quick=16_384, full=30_000)
        size = max(256, int(size * self._contended(4, 1, 0.25)))
        total_txns = self._pick(test=160, quick=480, full=1000 * num_threads)
        scan_cells = self._pick(test=256, quick=1024, full=30_000)
        array = TxArray(machine, size)
        array.populate([0] * size)

        def long_read(offset: int):
            # iterate the array (full profile scans a rotating window to
            # bound runtime; test/quick scan everything)
            def body(offset=offset):
                start = offset % max(1, size - scan_cells + 1)
                total = yield from array.sum_range(start, start + scan_cells)
                return total
            return body

        def update(a: int, b: int):
            def body():
                va = yield from array.get(a)
                yield from array.set(a, va + 1)
                vb = yield from array.get(b)
                yield from array.set(b, vb + 1)
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for i in range(count):
                if thread_rng.random() < 0.20:
                    specs.append(TransactionSpec(
                        long_read(thread_rng.randrange(size)), "array.scan"))
                else:
                    a, b = thread_rng.distinct(2, 0, size)
                    specs.append(TransactionSpec(update(a, b), "array.update"))
            programs.append(specs)
        return WorkloadInstance(machine, programs)


@REGISTRY.register
class ListBench(Workload):
    """Sorted linked-list mix (Figure 7/8 "List")."""

    name = "list"
    description = "1000-element sorted list; 40% insert, 40% remove, 20% lookup"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        # paper: 1000 elements, 1000 txns/thread, 40/40/20
        size = self._pick(test=64, quick=192, full=1000)
        size = max(16, int(size * self._contended(4, 1, 0.25)))
        total_txns = self._pick(test=120, quick=320, full=1000 * num_threads)
        key_space = size * 2
        lst = TxLinkedList(machine, skew_safe=True)
        lst.populate(rng.split("init").sample(range(key_space), size))

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                key = thread_rng.randrange(key_space)
                roll = thread_rng.random()
                if roll < 0.40:
                    specs.append(TransactionSpec(
                        lambda k=key: lst.insert(k), "list.insert"))
                elif roll < 0.80:
                    specs.append(TransactionSpec(
                        lambda k=key: lst.remove(k), "list.remove"))
                else:
                    specs.append(TransactionSpec(
                        lambda k=key: lst.lookup(k), "list.lookup"))
            programs.append(specs)

        def verify() -> bool:
            items = lst.to_list()
            return items == sorted(set(items))

        return WorkloadInstance(machine, programs, verify)


@REGISTRY.register
class RBTreeBench(Workload):
    """Red-black-tree mix (Figure 7/8 "Red Black Tree")."""

    name = "rbtree"
    description = "100-key red-black tree; 50% lookup, 25% insert, 25% delete"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        # paper: 100 initial elements, 50/25/25
        size = self._pick(test=50, quick=100, full=100)
        total_txns = self._pick(test=160, quick=640, full=1000 * num_threads)
        key_space = size * 4
        tree = TxRedBlackTree(machine, skew_safe=True)
        tree.populate(rng.split("init").sample(range(key_space), size))

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                key = thread_rng.randrange(key_space)
                roll = thread_rng.random()
                if roll < 0.50:
                    specs.append(TransactionSpec(
                        lambda k=key: tree.lookup(k), "rbtree.lookup"))
                elif roll < 0.75:
                    specs.append(TransactionSpec(
                        lambda k=key: tree.insert(k), "rbtree.insert"))
                else:
                    specs.append(TransactionSpec(
                        lambda k=key: tree.remove(k), "rbtree.remove"))
            programs.append(specs)

        def verify() -> bool:
            keys = tree.keys_inorder()
            return tree.check_invariants() and keys == sorted(set(keys))

        return WorkloadInstance(machine, programs, verify)
