"""Bayes: Bayesian-network structure learning.

STAMP's bayes learns network structure from observed data: few, long,
expensive transactions that evaluate candidate edge changes — each reads a
node's adjacency row and the local scores of many neighbours, computes a
score delta (long non-memory work), and commits a small structural change
(toggle one edge, update two score words).  A quarter of the transactions
are pure score *evaluations* (read-only).  The paper: "Bayes exhibits few,
but long and costly transactions with a read-only transaction ratio of
25% enabling SI-TM to reduce aborts by 20x over 2PL", and SI scales to
~10x at 32 threads while CS and 2PL stall beyond 8.

Scaling: node counts and transaction totals shrink by profile; the long-
read/tiny-write shape and the 25% read-only ratio are preserved.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)


@REGISTRY.register
class BayesBench(Workload):
    """Structure learning: long scoring reads, tiny structural writes."""

    name = "bayes"
    description = "few long transactions; 25% read-only score evaluations"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        nodes = self._pick(test=24, quick=48, full=128)
        total_txns = self._pick(test=64, quick=160, full=24 * num_threads)
        per_line = machine.address_map.words_per_line

        # adjacency matrix (line-aligned rows) + per-node score records
        # (one line each — real node structs do not share cache lines,
        # and packing them would manufacture false write-write conflicts)
        row = ((nodes + per_line - 1) // per_line) * per_line
        adjacency = TxArray(machine, nodes * row)
        adjacency.populate([0] * (nodes * row))
        scores = TxArray(machine, nodes * per_line)
        scores.populate([100 if i % per_line == 0 else 0
                         for i in range(nodes * per_line)])

        def learn_step(node: int, peer: int, accept: bool):
            def body():
                # read the node's full adjacency row + neighbour scores
                degree = 0
                for other in range(nodes):
                    edge = yield from adjacency.get(node * row + other)
                    if edge:
                        degree += 1
                        yield from scores.get(other * per_line)
                yield Compute(120)  # score the candidate family
                if not accept:
                    # most candidate changes score worse and are rejected:
                    # the transaction stays read-only (STAMP bayes commits
                    # structural changes rarely relative to evaluations)
                    return degree
                # toggle the candidate edge and update this node's family
                # score; the peer's score is unaffected (the family that
                # changed is the node's), so learns on different nodes
                # have disjoint write sets
                current = yield from adjacency.get(node * row + peer)
                yield from adjacency.set(node * row + peer,
                                         0 if current else 1)
                node_score = yield from scores.get(node * per_line)
                yield from scores.set(node * per_line,
                                      node_score + (1 if current else -1))
                return degree
            return body

        def evaluate(node: int):
            def body():
                # read-only: score the node's current family
                total = yield from scores.get(node * per_line)
                for other in range(nodes):
                    edge = yield from adjacency.get(node * row + other)
                    if edge:
                        peer_score = yield from scores.get(other * per_line)
                        total += peer_score
                yield Compute(80)
                return total
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                node = thread_rng.randrange(nodes)
                if thread_rng.random() < 0.25:
                    specs.append(TransactionSpec(
                        evaluate(node), "bayes.evaluate"))
                else:
                    peer = (node + 1 + thread_rng.randrange(nodes - 1)) % nodes
                    accept = thread_rng.random() < 0.35
                    specs.append(TransactionSpec(
                        learn_step(node, peer, accept), "bayes.learn"))
            programs.append(specs)
        return WorkloadInstance(machine, programs)
