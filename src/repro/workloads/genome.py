"""Genome: gene sequencing by segment deduplication and overlap matching.

STAMP's genome assembles a genome from segments in phases: (1) hash-set
deduplication of segments, (2) overlap matching that links unique segments
into chains.  Transactionally that is: *insert-if-absent* traffic on a
shared hash set (short transactions, writes to bucket chains) plus
*matching* transactions that read runs of the shared structures and write
single links.

Conflict shape reproduced: matchers' long read sets overlap dedup writers'
bucket writes → abundant read-write conflicts under 2PL; true write-write
collisions are rare (distinct segments, distinct chain slots).  Both CS
and SI recover most of them — the paper reports the two "perform almost on
par" here with a ~3.8x speedup over 2PL.

Scaling: segment counts shrink by profile; mix ratios (60% dedup / 40%
match) and the reads-per-match footprint are preserved.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray, TxHashMap
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)


@REGISTRY.register
class GenomeBench(Workload):
    """Segment dedup + overlap matching (STAMP genome kernel)."""

    name = "genome"
    description = "hash-set dedup inserts + long read-mostly overlap matching"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        segments = self._pick(test=128, quick=384, full=4096)
        total_txns = self._pick(test=160, quick=480, full=100 * num_threads)
        match_reads = self._pick(test=12, quick=24, full=48)
        buckets = max(32, segments // 2)
        per_line = machine.address_map.words_per_line

        dedup = TxHashMap(machine, buckets=buckets)
        # one line per chain cell: different segments' link writes must not
        # falsely collide (the real genome's segment records are padded
        # structs, not packed words)
        chain = TxArray(machine, segments * per_line)
        chain.populate([0] * (segments * per_line))
        seg_rng = rng.split("segments")
        segment_pool = [seg_rng.randrange(segments * 4)
                        for _ in range(segments)]

        def dedup_insert(seg: int):
            def body():
                present = yield from dedup.contains(seg)
                if not present:
                    yield from dedup.put(seg, 1)
            return body

        def match(start: int, link: int):
            def body():
                # scan a window of the chain looking for the best overlap
                # (long read set), then record the chosen successor in THIS
                # segment's own link cell (single, private write) — each
                # segment links its own successor, as in genome's phase 3
                best = start % segments
                for i in range(match_reads):
                    cell = (start + i) % segments
                    value = yield from chain.get(cell * per_line)
                    seg = segment_pool[cell]
                    hit = yield from dedup.contains(seg)
                    if hit and value == 0:
                        best = cell
                yield Compute(10)
                yield from chain.set(link * per_line, best + 1)
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                if thread_rng.random() < 0.60:
                    seg = thread_rng.choice(segment_pool)
                    specs.append(TransactionSpec(
                        dedup_insert(seg), "genome.dedup"))
                else:
                    specs.append(TransactionSpec(
                        match(thread_rng.randrange(segments),
                              thread_rng.randrange(segments)),
                        "genome.match"))
            programs.append(specs)
        return WorkloadInstance(machine, programs)
