"""Intruder: signature-based network intrusion detection.

STAMP's intruder reassembles packet fragments per flow, then runs a
detector over completed flows.  The transactional content is pure shared-
data-structure traffic — a flow *map* (tree) plus per-flow fragment
storage — which is why the paper singles it out: "Intruder only utilizes
transactions to perform concurrent access to data structures including a
list and a tree which as we have seen perform well under SI" (SI-TM cuts
aborts ~50x vs 2PL and ~40x vs CS at 32 threads).

Modelling notes: each flow owns one line-aligned fragment slot per
fragment index, so two threads inserting *different* fragments of the same
flow write disjoint lines — exactly like inserting different nodes into
the flow's fragment list.  Flow-map lookups traverse the shared red-black
tree, so under 2PL every flow completion (a tree remove) aborts concurrent
lookups (read-write), while under SI only genuinely racing writes to the
same fragment slot or the same completion conflict.

Transaction mix: 70% fragment insertion (tree lookup + slot write), 20%
flow completion (read the flow's slots, clear them, remove from the tree,
run the detector as compute), 10% detector-status lookups (read-only).

Scaling: flow counts shrink by profile; ratios and fragment counts fixed.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray, TxRedBlackTree
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)

FRAGMENTS_PER_FLOW = 4


@REGISTRY.register
class IntruderBench(Workload):
    """Flow reassembly over a tree + per-fragment slot writes."""

    name = "intruder"
    description = "flow map (tree) traffic + disjoint per-fragment inserts"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        flows = self._pick(test=48, quick=128, full=1024)
        total_txns = self._pick(test=160, quick=560, full=120 * num_threads)
        per_line = machine.address_map.words_per_line

        flow_tree = TxRedBlackTree(machine, skew_safe=True)
        flow_tree.populate(range(flows))
        # one line per (flow, fragment) slot: inserts of different
        # fragments never share a line.  Most fragments have already
        # arrived (the steady state of a reassembly pipeline), so flow
        # completions — and their tree removals with rebalancing — happen
        # regularly and keep the flow map churning.
        init_rng = rng.split("init")
        initial = [0] * (flows * FRAGMENTS_PER_FLOW * per_line)
        for flow in range(flows):
            for fragment in range(FRAGMENTS_PER_FLOW):
                if init_rng.random() < 0.75:
                    initial[(flow * FRAGMENTS_PER_FLOW + fragment)
                            * per_line] = 1
        slots = TxArray(machine, flows * FRAGMENTS_PER_FLOW * per_line)
        slots.populate(initial)

        def slot_index(flow: int, fragment: int) -> int:
            return (flow * FRAGMENTS_PER_FLOW + fragment) * per_line

        def insert_fragment(flow: int, fragment: int, payload: int):
            def body():
                known = yield from flow_tree.lookup(flow)
                if known is None:
                    yield from flow_tree.insert(flow)
                existing = yield from slots.get(slot_index(flow, fragment))
                if existing == 0:
                    yield from slots.set(slot_index(flow, fragment),
                                         payload + 1)
                yield Compute(3)
            return body

        def complete_flow(flow: int):
            def body():
                present = 0
                for fragment in range(FRAGMENTS_PER_FLOW):
                    value = yield from slots.get(slot_index(flow, fragment))
                    if value:
                        present += 1
                if present < FRAGMENTS_PER_FLOW:
                    return False
                for fragment in range(FRAGMENTS_PER_FLOW):
                    yield from slots.set(slot_index(flow, fragment), 0)
                yield from flow_tree.remove(flow)
                yield Compute(40)  # signature detector on the payload
                return True
            return body

        def status(flow: int):
            def body():
                known = yield from flow_tree.lookup(flow)
                count = 0
                for fragment in range(FRAGMENTS_PER_FLOW):
                    value = yield from slots.get(slot_index(flow, fragment))
                    if value:
                        count += 1
                yield Compute(2)
                return (known is not None, count)
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                flow = thread_rng.randrange(flows)
                roll = thread_rng.random()
                if roll < 0.70:
                    specs.append(TransactionSpec(
                        insert_fragment(
                            flow,
                            thread_rng.randrange(FRAGMENTS_PER_FLOW),
                            thread_rng.randrange(1000)),
                        "intruder.insert"))
                elif roll < 0.90:
                    specs.append(TransactionSpec(
                        complete_flow(flow), "intruder.complete"))
                else:
                    specs.append(TransactionSpec(
                        status(flow), "intruder.status"))
            programs.append(specs)

        def verify() -> bool:
            keys = flow_tree.keys_inorder()
            return flow_tree.check_invariants() and keys == sorted(set(keys))

        return WorkloadInstance(machine, programs, verify)
