"""Kmeans: iterative clustering with shared centre accumulators.

STAMP's kmeans assigns thread-private points to their nearest cluster
centre; the *transaction* is the update of the chosen centre's
accumulators (per-dimension sum plus membership count) — a read-modify-
write of every word it touches.  "Each accessed value is both contained
in the read as well as in the write set", so neither CS nor SI can avoid
the conflicts: every collision is a true write-write race.  This is the
paper's negative control — Figure 7/8 show all three systems performing
alike — and this kernel reproduces exactly that shape.

Scaling: centre count and transaction totals shrink by profile; the
RMW structure (D dims + count on one centre per transaction) is fixed.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)

#: dimensions per centre; D sums + 1 count fit one cache line
DIMS = 4


@REGISTRY.register
class KmeansBench(Workload):
    """Read-modify-write centre accumulation (STAMP kmeans kernel)."""

    name = "kmeans"
    description = "nearest-centre assignment; RMW on shared centre accumulators"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        centres = self._pick(test=16, quick=32, full=80)
        # STAMP's high-contention kmeans uses fewer clusters (hotter
        # accumulators); low contention uses more
        centres = max(2, int(centres * self._contended(4, 1, 0.25)))
        total_txns = self._pick(test=240, quick=800, full=300 * num_threads)
        # one cache line per centre record (D sums + count fit one line);
        # packing centres together would add false sharing between centres
        stride = machine.address_map.words_per_line
        accumulators = TxArray(machine, centres * stride)
        accumulators.populate([0] * (centres * stride))

        def assign(centre: int, point: tuple):
            def body():
                # nearest-centre search happens outside the transaction in
                # STAMP (stale centres are fine); the transaction is the
                # accumulator update: RMW on D sums + the count, with the
                # accumulation arithmetic between accesses — every value
                # sits in both the read and the write set, so any overlap
                # is a symmetric conflict no policy can dodge
                base = centre * stride
                for dim in range(DIMS):
                    current = yield from accumulators.get(base + dim)
                    yield Compute(6)  # float add + loop bookkeeping
                    yield from accumulators.set(base + dim,
                                                current + point[dim])
                count = yield from accumulators.get(base + DIMS)
                yield Compute(3)
                yield from accumulators.set(base + DIMS, count + 1)
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                centre = thread_rng.randrange(centres)
                point = tuple(thread_rng.randrange(100) for _ in range(DIMS))
                specs.append(TransactionSpec(
                    assign(centre, point), "kmeans.assign"))
            programs.append(specs)

        def verify() -> bool:
            # every centre's count equals the number of committed updates
            # is checked by the harness via commit counts; here: sums are
            # non-negative and counts monotone (sanity)
            data = accumulators.snapshot()
            return all(v >= 0 for v in data)

        return WorkloadInstance(machine, programs, verify)
