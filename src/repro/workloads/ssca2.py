"""SSCA2: Scalable Synthetic Compact Applications graph kernels.

STAMP's ssca2 builds a large directed multigraph; the transactional kernel
adds edges: read a node's degree cursor, append into its adjacency slots,
bump the cursor.  Transactions are tiny and the graph is large, so two
threads rarely touch the same node — the paper measures **under 5% aborts
even for 2PL** and concludes "we do not expect high performance
improvements for SI-TM"; all systems behave alike.  This kernel keeps that
shape: small RMW transactions spread over a wide node space, plus a few
degree-query read-only transactions.

Scaling: node count and edge totals shrink by profile.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)

#: adjacency slots reserved per node
SLOTS = 8


@REGISTRY.register
class SSCA2Bench(Workload):
    """Parallel edge insertion into a wide adjacency structure."""

    name = "ssca2"
    description = "tiny edge-insert transactions over a large node space"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        nodes = self._pick(test=256, quick=1024, full=8192)
        total_txns = self._pick(test=320, quick=960, full=200 * num_threads)
        # layout per node: [degree, slot0..slot(SLOTS-1)], line-aligned so
        # edge inserts on different nodes never falsely conflict
        per_line = machine.address_map.words_per_line
        stride = ((SLOTS + 1 + per_line - 1) // per_line) * per_line
        adjacency = TxArray(machine, nodes * stride)
        adjacency.populate([0] * (nodes * stride))

        def add_edge(src: int, dst: int):
            def body():
                base = src * stride
                degree = yield from adjacency.get(base)
                if degree < SLOTS:
                    yield from adjacency.set(base + 1 + degree, dst + 1)
                    yield from adjacency.set(base, degree + 1)
                yield Compute(2)
            return body

        def degree_query(src: int):
            def body():
                degree = yield from adjacency.get(src * stride)
                yield Compute(1)
                return degree
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                src = thread_rng.randrange(nodes)
                if thread_rng.random() < 0.90:
                    dst = thread_rng.randrange(nodes)
                    specs.append(TransactionSpec(
                        add_edge(src, dst), "ssca2.add_edge"))
                else:
                    specs.append(TransactionSpec(
                        degree_query(src), "ssca2.degree"))
            programs.append(specs)

        def verify() -> bool:
            data = adjacency.snapshot()
            return all(0 <= data[n * stride] <= SLOTS for n in range(nodes))

        return WorkloadInstance(machine, programs, verify)
