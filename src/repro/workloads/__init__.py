"""Benchmark workloads: STAMP-like kernels + RSTM-like microbenchmarks.

Importing this package populates :data:`repro.workloads.base.REGISTRY`
with all ten benchmarks of the paper's evaluation (section 6.2):
``array``, ``list``, ``rbtree`` (microbenchmarks) and ``genome``,
``intruder``, ``kmeans``, ``labyrinth``, ``ssca2``, ``vacation``,
``bayes`` (STAMP kernels).
"""

from repro.workloads import (  # noqa: F401 — imports populate the registry
    bayes,
    extra,
    genome,
    intruder,
    kmeans,
    labyrinth,
    micro,
    ssca2,
    vacation,
    yada,
)
from repro.workloads.base import (
    PROFILES,
    REGISTRY,
    Workload,
    WorkloadInstance,
    WorkloadRegistry,
    partition,
)
from repro.workloads.bayes import BayesBench
from repro.workloads.extra import HashtableBench, PipelineBench
from repro.workloads.genome import GenomeBench
from repro.workloads.intruder import IntruderBench
from repro.workloads.kmeans import KmeansBench
from repro.workloads.labyrinth import LabyrinthBench
from repro.workloads.micro import ArrayBench, ListBench, RBTreeBench
from repro.workloads.ssca2 import SSCA2Bench
from repro.workloads.vacation import VacationBench
from repro.workloads.yada import YadaBench

#: benchmark order used by the paper's figures
PAPER_ORDER = ["array", "list", "rbtree", "genome", "intruder",
               "kmeans", "labyrinth", "vacation", "ssca2", "bayes"]

__all__ = [
    "ArrayBench",
    "BayesBench",
    "GenomeBench",
    "HashtableBench",
    "IntruderBench",
    "KmeansBench",
    "LabyrinthBench",
    "ListBench",
    "PAPER_ORDER",
    "PipelineBench",
    "PROFILES",
    "RBTreeBench",
    "REGISTRY",
    "SSCA2Bench",
    "VacationBench",
    "Workload",
    "WorkloadInstance",
    "WorkloadRegistry",
    "YadaBench",
    "partition",
]
