"""Yada: Delaunay mesh refinement (the eighth STAMP application).

Not part of the paper's evaluation (its Figure 7/8 cover seven STAMP
applications), included for STAMP-suite completeness.  Yada repeatedly
picks a "bad" triangle, gathers the *cavity* of neighbouring triangles
around it (reads), re-triangulates the cavity (long compute) and replaces
the cavity's triangles (writes), possibly producing new bad triangles.

Kernel mapping: the mesh is a line-aligned array of triangle records
(quality word + three neighbour links); a work-list array holds bad
triangle ids.  A refinement transaction reads its triangle's record, walks
the neighbour links collecting the cavity, computes, then rewrites the
cavity records and clears its work-list slot.  Cavities of nearby bad
triangles overlap — genuine read-write *and* write-write conflicts whose
frequency falls with mesh size, which is why yada sits between vacation
(read-heavy) and kmeans (write-hot) in TM studies.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)

#: per-triangle record: [quality, n0, n1, n2] in one line
NEIGHBOURS = 3
CAVITY_DEPTH = 2


@REGISTRY.register
class YadaBench(Workload):
    """Cavity-based mesh refinement over a shared triangle store."""

    name = "yada"
    description = "Delaunay refinement: cavity reads + re-triangulation writes"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        triangles = self._pick(test=96, quick=384, full=4096)
        triangles = max(32, int(triangles * self._contended(4, 1, 0.25)))
        total_txns = self._pick(test=96, quick=320, full=60 * num_threads)
        per_line = machine.address_map.words_per_line

        mesh = TxArray(machine, triangles * per_line)
        init_rng = rng.split("init")
        initial = [0] * (triangles * per_line)
        for tri in range(triangles):
            base = tri * per_line
            initial[base] = init_rng.randrange(100)  # quality
            for n in range(NEIGHBOURS):
                initial[base + 1 + n] = init_rng.randrange(triangles)
        mesh.populate(initial)

        def refine(seed_triangle: int):
            def body():
                # gather the cavity by walking neighbour links
                cavity = [seed_triangle]
                frontier = [seed_triangle]
                for _ in range(CAVITY_DEPTH):
                    next_frontier = []
                    for tri in frontier:
                        base = tri * per_line
                        quality = yield from mesh.get(base)
                        for n in range(NEIGHBOURS):
                            neighbour = yield from mesh.get(base + 1 + n)
                            if quality % 2 == 0 and neighbour not in cavity:
                                cavity.append(neighbour)
                                next_frontier.append(neighbour)
                    frontier = next_frontier
                yield Compute(50 + 10 * len(cavity))  # re-triangulate
                # replace the cavity: refresh qualities, relink to the seed
                for tri in cavity:
                    base = tri * per_line
                    quality = yield from mesh.get(base)
                    yield from mesh.set(base, (quality * 7 + 13) % 100)
                    yield from mesh.set(base + 1, seed_triangle)
                return len(cavity)
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            programs.append([
                TransactionSpec(refine(thread_rng.randrange(triangles)),
                                "yada.refine")
                for _ in range(count)])

        def verify() -> bool:
            data = mesh.snapshot()
            return all(0 <= data[tri * per_line] < 100
                       for tri in range(triangles))

        return WorkloadInstance(machine, programs, verify)
