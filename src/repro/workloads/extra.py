"""Extra microbenchmarks beyond the paper's three.

These are not part of the paper's evaluation (and therefore not in
``PAPER_ORDER``), but round out the workload library the way RSTM's
microbenchmark suite does:

* **hashtable** — point operations on a chained hash map.  Conflicts are
  per-bucket; with a reasonable load factor all systems do well, making
  this a useful *low-contention control* alongside Array's extremes.
* **pipeline** — producers and consumers sharing a bounded FIFO queue.
  Head and tail cursors are read-modify-write hot words: like kmeans,
  this is a worst case where snapshots cannot help, but unlike kmeans
  the conflicts concentrate on exactly two lines.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxHashMap, TxQueue
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)


@REGISTRY.register
class HashtableBench(Workload):
    """Point get/put/remove mix over a chained hash map."""

    name = "hashtable"
    description = "hash map point ops; per-bucket conflicts only"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        keys = self._pick(test=128, quick=512, full=4096)
        keys = max(32, int(keys * self._contended(4, 1, 0.25)))
        total_txns = self._pick(test=200, quick=640, full=500 * num_threads)
        buckets = max(16, keys // 4)
        table = TxHashMap(machine, buckets=buckets)
        init_rng = rng.split("init")
        table.populate((k, init_rng.randrange(100))
                       for k in range(0, keys, 2))

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                key = thread_rng.randrange(keys)
                roll = thread_rng.random()
                if roll < 0.60:
                    specs.append(TransactionSpec(
                        lambda k=key: table.get(k), "hashtable.get"))
                elif roll < 0.80:
                    value = thread_rng.randrange(100)
                    specs.append(TransactionSpec(
                        lambda k=key, v=value: table.put(k, v),
                        "hashtable.put"))
                else:
                    specs.append(TransactionSpec(
                        lambda k=key: table.remove(k), "hashtable.remove"))
            programs.append(specs)

        def verify() -> bool:
            return all(0 <= v < 100 for v in table.to_dict().values())

        return WorkloadInstance(machine, programs, verify)


@REGISTRY.register
class PipelineBench(Workload):
    """Producer/consumer traffic through one bounded FIFO."""

    name = "pipeline"
    description = "shared queue; RMW cursor hot spots (SI-neutral)"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        total_txns = self._pick(test=160, quick=480, full=300 * num_threads)
        capacity = self._pick(test=128, quick=512, full=4096)
        queue = TxQueue(machine, capacity=capacity)
        queue.populate(range(1, capacity // 2))

        def produce(value: int):
            def body():
                yield Compute(4)  # build the work item
                yield from queue.enqueue(value)
            return body

        def consume():
            def body():
                item = yield from queue.dequeue()
                if item is not None:
                    yield Compute(8)  # process the work item
                return item
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            producing = tid % 2 == 0
            for _ in range(count):
                if producing:
                    specs.append(TransactionSpec(
                        produce(thread_rng.randrange(1, 1000)),
                        "pipeline.produce"))
                else:
                    specs.append(TransactionSpec(consume(),
                                                 "pipeline.consume"))
            programs.append(specs)

        def verify() -> bool:
            items = queue.drain_plain()
            return all(item > 0 for item in items)

        return WorkloadInstance(machine, programs, verify)
