"""Vacation: online travel-reservation OLTP (STAMP vacation).

Three reservation tables (flights, rooms, cars — here hash maps from item
id to availability) plus a customer table.  The dominant transaction is
*make reservation*: query several candidate items per resource type (long
read phase), pick the cheapest available, decrement its availability and
record it on the customer (short write phase).  Long read-heavy
transactions with small write sets are SI-TM's best case among the STAMP
applications: the paper reports **under 1% of 2PL's aborts** and linear
scaling to 32 threads, with CS falling off beyond 8 threads.

Mix (after STAMP's standard configuration): 80% reservations, 10% table
updates (add/restock items), 10% customer deletions (release holdings).

Scaling: table sizes and query fan-out shrink by profile; the long-read/
short-write ratio is preserved.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray, TxHashMap
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)

#: resource types: flight, room, car
TYPES = 3


@REGISTRY.register
class VacationBench(Workload):
    """Reservation OLTP: long read-mostly transactions, tiny write sets."""

    name = "vacation"
    description = "travel booking: many queries per txn, few availability updates"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        items = self._pick(test=64, quick=192, full=2048)     # per type
        customers = self._pick(test=32, quick=96, full=1024)
        queries = self._pick(test=6, quick=10, full=16)       # per type
        queries = max(2, int(queries * self._contended(0.5, 1, 2)))
        total_txns = self._pick(test=128, quick=400, full=120 * num_threads)

        tables = [TxHashMap(machine, buckets=max(16, items // 4))
                  for _ in range(TYPES)]
        init_rng = rng.split("init")
        for table in tables:
            table.populate((i, 1 + init_rng.randrange(5))
                           for i in range(items))
        per_line = machine.address_map.words_per_line
        holdings = TxArray(machine, customers * per_line)
        holdings.populate([0] * (customers * per_line))

        def reserve(customer: int, candidates):
            def body():
                booked = 0
                for type_idx in range(TYPES):
                    best = None
                    for item in candidates[type_idx]:
                        avail = yield from tables[type_idx].get(item)
                        if avail and avail > 0 and best is None:
                            best = (item, avail)
                    if best is not None:
                        item, avail = best
                        yield from tables[type_idx].put(item, avail - 1)
                        booked += 1
                yield Compute(5)
                if booked:
                    held = yield from holdings.get(customer * per_line)
                    yield from holdings.set(customer * per_line,
                                            held + booked)
            return body

        def update_tables(type_idx: int, item: int, delta: int):
            def body():
                avail = yield from tables[type_idx].get(item)
                current = avail or 0
                yield from tables[type_idx].put(item, max(0, current + delta))
            return body

        def delete_customer(customer: int):
            def body():
                held = yield from holdings.get(customer * per_line)
                if held:
                    yield from holdings.set(customer * per_line, 0)
                yield Compute(3)
                return held
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                roll = thread_rng.random()
                if roll < 0.80:
                    customer = thread_rng.randrange(customers)
                    candidates = [thread_rng.sample(range(items), queries)
                                  for _ in range(TYPES)]
                    specs.append(TransactionSpec(
                        reserve(customer, candidates), "vacation.reserve"))
                elif roll < 0.90:
                    specs.append(TransactionSpec(
                        update_tables(thread_rng.randrange(TYPES),
                                      thread_rng.randrange(items),
                                      thread_rng.choice((-1, 1, 2))),
                        "vacation.update"))
                else:
                    specs.append(TransactionSpec(
                        delete_customer(thread_rng.randrange(customers)),
                        "vacation.delete"))
            programs.append(specs)

        def verify() -> bool:
            return all(v >= 0 for table in tables
                       for v in table.to_dict().values())

        return WorkloadInstance(machine, programs, verify)
