"""Labyrinth: path routing in a 3D grid (Lee's algorithm, CAD routing).

STAMP's labyrinth routes point-to-point paths through a shared 3D grid:
each transaction reads a region of the grid, computes a shortest path
(long non-memory work), and claims the path's cells.  Conflicts occur only
when two concurrently routed paths cross — rare on a sparsely used grid —
so the paper finds *low abort rates for all systems* and similar speedups;
the TM policy is not the bottleneck.  This kernel reproduces that shape:
long transactions, big read sets (route corridor), small write sets (the
claimed path), low collision probability.

Scaling: grid volume and path counts shrink by profile; the corridor-
read/path-write structure is preserved.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.structures import TxArray
from repro.tm.ops import Compute
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInstance,
    partition,
)


@REGISTRY.register
class LabyrinthBench(Workload):
    """Grid path routing with long transactions and sparse conflicts."""

    name = "labyrinth"
    description = "3D grid routing; corridor reads + path-cell writes"

    def setup(self, machine: Machine, num_threads: int,
              rng: SplitRandom) -> WorkloadInstance:
        side = self._pick(test=12, quick=20, full=48)
        depth = 3
        total_txns = self._pick(test=48, quick=120, full=32 * num_threads)
        cells = side * side * depth
        grid = TxArray(machine, cells)
        grid.populate([0] * cells)

        def index(x: int, y: int, z: int) -> int:
            return (z * side + y) * side + x

        def manhattan_path(src: Tuple[int, int], dst: Tuple[int, int],
                           layer: int) -> List[int]:
            (x0, y0), (x1, y1) = src, dst
            path = []
            step = 1 if x1 >= x0 else -1
            for x in range(x0, x1 + step, step):
                path.append(index(x, y0, layer))
            step = 1 if y1 >= y0 else -1
            for y in range(y0 + step, y1 + step, step) if y0 != y1 else []:
                path.append(index(x1, y, layer))
            return path

        def route(src, dst, layer):
            def body():
                path = manhattan_path(src, dst, layer)
                # expansion phase: read the corridor around the path
                blocked = False
                for cell in path:
                    value = yield from grid.get(cell)
                    if value:
                        blocked = True
                yield Compute(60)  # Lee expansion / backtracking
                if blocked:
                    return False
                for cell in path:
                    yield from grid.set(cell, 1)
                return True
            return body

        programs: List[List[TransactionSpec]] = []
        for tid, count in enumerate(partition(total_txns, num_threads)):
            thread_rng = rng.split("thread", tid)
            specs = []
            for _ in range(count):
                src = (thread_rng.randrange(side), thread_rng.randrange(side))
                dst = (thread_rng.randrange(side), thread_rng.randrange(side))
                layer = thread_rng.randrange(depth)
                specs.append(TransactionSpec(
                    route(src, dst, layer), "labyrinth.route"))
            programs.append(specs)
        return WorkloadInstance(machine, programs)
