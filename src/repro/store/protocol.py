"""The store's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length ``N`` (at most
:data:`MAX_FRAME` bytes) followed by ``N`` bytes of UTF-8 JSON encoding
a single object.  Requests carry an ``op`` field; the operations are

===========  =====================================================
``BEGIN``    open a transaction (``label``, optional ``deadline_ms``)
``READ``     snapshot-read ``key`` within the open transaction
``WRITE``    buffer ``value`` for ``key`` (``null`` is not a value)
``COMMIT``   first-committer-wins commit of the buffered writes
``ABORT``    discard the open transaction
``PING``     liveness probe; returns shard generations
===========  =====================================================

Responses are ``{"ok": true, ...}`` on success or
``{"ok": false, "error": <code>, "detail": ..., "retry_after_ms": ...,
"cause": ...}`` on failure, with the error codes of :data:`ERROR_CODES`:

* ``BAD_REQUEST`` — unparseable or ill-formed request;
* ``NO_TXN`` / ``TXN_OPEN`` — operation outside / inside a transaction;
* ``OVERLOADED`` — admission control or a full shard queue shed the
  request (structured load-shedding, never silent queueing);
* ``TIMEOUT`` — the transaction's deadline expired server-side;
* ``ABORTED`` — the transaction aborted (``cause`` names why:
  ``write-write``, ``shard-crashed``, ...; ``retry_after_ms`` carries
  the server's backoff hint);
* ``SERVER_SHUTDOWN`` — the server is draining.

The framing helpers here are shared by the server, the load-generator
client and the chaos harness, so a framing change cannot desynchronise
them.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

from repro.common.errors import ProtocolError

__all__ = ["MAX_FRAME", "ERROR_CODES", "OPS", "encode_frame",
           "read_frame", "error_response", "ok_response"]

#: largest accepted frame payload, in bytes
MAX_FRAME = 1 << 20

#: the request operations the server understands
OPS = ("BEGIN", "READ", "WRITE", "COMMIT", "ABORT", "PING")

#: structured error codes a response may carry
ERROR_CODES = ("BAD_REQUEST", "NO_TXN", "TXN_OPEN", "OVERLOADED",
               "TIMEOUT", "ABORTED", "SERVER_SHUTDOWN")

_LEN = struct.Struct(">I")


def encode_frame(obj: dict) -> bytes:
    """Serialise one message as a length-prefixed JSON frame."""
    payload = json.dumps(obj, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit")
    return _LEN.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader,
                     timeout: Optional[float] = None) -> dict:
    """Read one frame; raises on EOF, oversize, junk, or idle timeout.

    ``timeout`` (seconds) bounds the *whole* frame — header and body —
    so a slow-loris peer trickling one byte per second cannot hold a
    connection open: the clock starts at the first header byte and is
    not reset by partial progress.
    """
    async def _read() -> dict:
        header = await reader.readexactly(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME:
            raise ProtocolError(
                f"peer announced a {length}-byte frame "
                f"(limit {MAX_FRAME})")
        payload = await reader.readexactly(length)
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"frame payload is not JSON: {exc}")
        if not isinstance(obj, dict):
            raise ProtocolError("frame payload is not a JSON object")
        return obj

    if timeout is None:
        return await _read()
    try:
        return await asyncio.wait_for(_read(), timeout)
    except asyncio.TimeoutError:
        raise ProtocolError(f"peer idle/stalled beyond {timeout:.3f}s")


def ok_response(**fields: object) -> dict:
    """A success response with extra fields merged in."""
    out: dict = {"ok": True}
    out.update(fields)
    return out


def error_response(code: str, detail: str = "",
                   retry_after_ms: Optional[int] = None,
                   cause: Optional[str] = None) -> dict:
    """A structured error response (code from :data:`ERROR_CODES`)."""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    out: dict = {"ok": False, "error": code, "detail": detail}
    if retry_after_ms is not None:
        out["retry_after_ms"] = int(retry_after_ms)
    if cause is not None:
        out["cause"] = cause
    return out
