"""Closed-loop Zipfian load generation and the store bench artifact.

:class:`StoreClient` is the canonical wire client — framing, the
``BEGIN``/``READ``/``WRITE``/``COMMIT``/``ABORT`` verbs, and the retry
discipline the server's structured errors prescribe (honor
``retry_after_ms``, re-begin after ``ABORTED``/``OVERLOADED``/
``TIMEOUT``).  Both the bench (:func:`run_load`) and the chaos campaign
(:mod:`repro.store.chaos`) drive the server through it, so the client
loop the tests exercise is the one real callers would copy.

:class:`ZipfKeys` draws keys from a Zipf(``theta``) popularity ranking
— the standard KV-store skew knob (theta 0 = uniform; 0.99 ≈ YCSB) —
via a precomputed CDF and binary search, seeded per worker so runs
replay deterministically.

:func:`run_load` is a closed loop: each of ``sessions`` workers keeps
exactly one logical transaction in flight, retrying it until it commits
or its attempt budget is spent, then moves to the next.  The resulting
stats map onto the repo's BENCH artifact schema via
:func:`bench_artifact` (deterministic section: counts and rates under a
pinned seed; advisory section: wall clock), so ``sitm-store bench``
artifacts validate against :func:`repro.perf.bench.validate_artifact`
and land next to the simulator's.
"""

from __future__ import annotations

import asyncio
import time
from bisect import bisect_left
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import SplitRandom
from repro.store import protocol

__all__ = ["StoreClient", "ZipfKeys", "run_load", "bench_artifact"]


class ZipfKeys:
    """Seed-stable Zipfian key popularity over ``n`` keys."""

    def __init__(self, n: int, theta: float = 0.8, prefix: str = "key-"):
        if n < 1:
            raise ConfigError("ZipfKeys needs at least one key")
        if theta < 0:
            raise ConfigError("zipf theta must be >= 0")
        self.n = n
        self.theta = theta
        self.keys = [f"{prefix}{i:04d}" for i in range(n)]
        total = 0.0
        self._cdf: List[float] = []
        for rank in range(1, n + 1):
            total += 1.0 / (rank ** theta)
            self._cdf.append(total)
        self._total = total

    def pick(self, rng: SplitRandom) -> str:
        """Draw one key; rank-1 keys are hottest."""
        point = rng.random() * self._total
        return self.keys[bisect_left(self._cdf, point)]


class StoreClient:
    """One wire connection to the store (asyncio streams)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int,
                      host: str = "127.0.0.1") -> "StoreClient":
        """Open a connection to a running store server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, **fields) -> dict:
        """Send one request frame and await its response frame."""
        self.writer.write(protocol.encode_frame(fields))
        await self.writer.drain()
        return await protocol.read_frame(self.reader)

    async def begin(self, deadline_ms: Optional[int] = None,
                    label: Optional[str] = None) -> dict:
        """``BEGIN``; optional deadline override and monitor label."""
        fields: Dict[str, object] = {"op": "BEGIN"}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        if label is not None:
            fields["label"] = label
        return await self.request(**fields)

    async def read(self, key: str) -> dict:
        """``READ key`` inside the open transaction."""
        return await self.request(op="READ", key=key)

    async def write(self, key: str, value: object) -> dict:
        """``WRITE key value`` (buffered until commit)."""
        return await self.request(op="WRITE", key=key, value=value)

    async def commit(self) -> dict:
        """``COMMIT`` the open transaction."""
        return await self.request(op="COMMIT")

    async def abort(self) -> dict:
        """``ABORT`` the open transaction."""
        return await self.request(op="ABORT")

    async def ping(self) -> dict:
        """Liveness probe; also returns shard generations."""
        return await self.request(op="PING")

    def close(self) -> None:
        """Drop the connection (the server GCs the session)."""
        self.writer.close()


async def _backoff(response: dict, cap_s: float = 0.1) -> None:
    """Honor the server's ``retry_after_ms`` hint (capped)."""
    hint = response.get("retry_after_ms")
    if isinstance(hint, (int, float)) and hint > 0:
        await asyncio.sleep(min(hint / 1000.0, cap_s))
    else:
        await asyncio.sleep(0)


async def _run_session(port: int, host: str, worker: int, txns: int,
                       zipf: ZipfKeys, write_fraction: float,
                       ops_per_txn: int, attempts_per_txn: int,
                       seed: int, stats: dict) -> None:
    """One closed-loop worker: ``txns`` logical transactions, serially."""
    rng = SplitRandom(seed, ("loadgen", worker))
    client = await StoreClient.connect(port, host)
    try:
        for txn_index in range(txns):
            for attempt in range(attempts_per_txn):
                stats["attempts"] += 1
                response = await client.begin(
                    label=f"load-{worker}-{txn_index}")
                if not response.get("ok"):
                    stats["shed"] += 1
                    await _backoff(response)
                    continue
                failed = None
                for _ in range(ops_per_txn):
                    key = zipf.pick(rng)
                    if rng.random() < write_fraction:
                        reply = await client.write(
                            key, {"w": worker, "t": txn_index,
                                  "r": rng.randrange(1 << 30)})
                    else:
                        reply = await client.read(key)
                    if not reply.get("ok"):
                        failed = reply
                        break
                if failed is None:
                    failed = await client.commit()
                    if failed.get("ok"):
                        stats["commits"] += 1
                        break
                cause = failed.get("cause") or \
                    failed.get("error", "unknown").lower()
                stats["aborts"][cause] = stats["aborts"].get(cause, 0) + 1
                await _backoff(failed)
            else:
                stats["exhausted"] += 1
    finally:
        client.close()


async def run_load(port: int, host: str = "127.0.0.1", sessions: int = 4,
                   txns_per_session: int = 50, keys: int = 64,
                   zipf_theta: float = 0.8, write_fraction: float = 0.5,
                   ops_per_txn: int = 4, attempts_per_txn: int = 8,
                   seed: int = 0) -> dict:
    """Drive a running server with a closed Zipfian loop; return stats."""
    zipf = ZipfKeys(keys, zipf_theta)
    stats = {"attempts": 0, "commits": 0, "shed": 0, "exhausted": 0,
             "aborts": {}}
    started = time.monotonic()
    await asyncio.gather(*[
        _run_session(port, host, worker, txns_per_session, zipf,
                     write_fraction, ops_per_txn, attempts_per_txn,
                     seed, stats)
        for worker in range(sessions)])
    wall = time.monotonic() - started
    total_aborts = sum(stats["aborts"].values())
    stats.update({
        "sessions": sessions,
        "txns_per_session": txns_per_session,
        "wall_clock_s": wall,
        "total_aborts": total_aborts,
        "throughput_txn_s": stats["commits"] / wall if wall else 0.0,
        "abort_rate": (total_aborts / stats["attempts"]
                       if stats["attempts"] else 0.0),
    })
    return stats


def bench_artifact(stats: dict, label: str = "store",
                   seed: int = 0) -> dict:
    """Map load stats onto the ``sitm-bench`` v1 artifact schema.

    One cell (``store/kv/t<sessions>``); the counts and rates are
    deterministic under a pinned seed and single-host serial timing is
    advisory, matching the schema's trust split.  ``makespan_cycles``
    carries elapsed microseconds — the store has no simulated clock, and
    the comparator only needs a monotone per-cell scalar.
    """
    from repro.harness.executor import code_fingerprint
    from repro.perf.bench import SCHEMA, SCHEMA_VERSION
    cell = {
        "throughput": stats["throughput_txn_s"],
        "throughput_rel_stddev": 0.0,
        "abort_rate": stats["abort_rate"],
        "abort_rate_stddev": 0.0,
        "commits": stats["commits"],
        "aborts": stats["total_aborts"],
        "makespan_cycles": int(stats["wall_clock_s"] * 1_000_000),
        "phase_shares": {},
    }
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "suite": "store-loadgen",
        "profile": f"zipf-{stats.get('sessions', 0)}x"
                   f"{stats.get('txns_per_session', 0)}",
        "seeds": 1,
        "code_fingerprint": code_fingerprint(),
        "deterministic": {
            f"store/kv/t{stats.get('sessions', 0)}": cell,
        },
        "advisory": {
            "wall_clock_s": round(stats["wall_clock_s"], 3),
            "cache_hit_rate": 0.0,
        },
    }
