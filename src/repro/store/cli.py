"""``sitm-store``: serve, benchmark, and chaos-test the live store.

Subcommands:

* ``serve`` — run the server on a host/port with the live oracle
  monitor attached and the Prometheus ``/metrics`` listener on a
  second port; ``--record`` persists every completed transaction as
  corpus-compatible JSONL.
* ``bench`` — stand up an in-process server, drive it with the
  closed-loop Zipfian load generator, save a ``BENCH_<label>.json``
  artifact validated against the ``sitm-bench`` schema, and print the
  stats; exits 1 if the live monitor saw any SI violation.
* ``chaos`` — run a seeded :class:`~repro.store.chaos.ChaosPlan`
  campaign and print its report; ``--broken no-fcw`` runs the monitor
  self-test (exit 0 *only if* the planted violation was caught).
* ``check`` — replay a recorded session JSONL through the SI checker
  offline; exits 1 when violations are found.

Exit-code contract (shared with ``sitm-harness``): **2** for
configuration errors (one line on stderr), **1** for detected
violations or a failed campaign, **0** for success.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
from typing import List, Optional

from repro.common.errors import ConfigError, ReproError
from repro.oracle.live import LiveHistoryMonitor, check_rows
from repro.store.chaos import ChaosPlan, run_chaos_campaign
from repro.store.loadgen import bench_artifact, run_load
from repro.store.server import StoreServer
from repro.store.session import StoreConfig

__all__ = ["main"]


def _store_config(args: argparse.Namespace) -> StoreConfig:
    kwargs = {}
    for field in ("shards", "max_inflight", "deadline_ms",
                  "idle_timeout_ms", "seed"):
        value = getattr(args, field, None)
        if value is not None:
            kwargs[field] = value
    return StoreConfig(**kwargs)


async def _serve(args: argparse.Namespace) -> int:
    config = _store_config(args)
    monitor = LiveHistoryMonitor(config.shards, dump_dir=args.dump_dir)
    server = StoreServer(config, monitor=monitor,
                         record_path=args.record)
    port = await server.start(args.host, args.port)
    metrics_port = await server.start_metrics(args.host,
                                              args.metrics_port)
    print(f"sitm-store serving on {args.host}:{port} "
          f"(metrics on :{metrics_port}, {config.shards} shards)")
    try:
        while True:
            await asyncio.sleep(3600)
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
    return 1 if monitor.violations else 0


async def _bench(args: argparse.Namespace) -> int:
    config = _store_config(args)
    monitor = LiveHistoryMonitor(config.shards, dump_dir=args.dump_dir)
    server = StoreServer(config, monitor=monitor)
    port = await server.start()
    metrics_port = await server.start_metrics()
    try:
        stats = await run_load(
            port, sessions=args.sessions,
            txns_per_session=args.txns, keys=args.keys,
            zipf_theta=args.zipf_theta,
            write_fraction=args.write_fraction, seed=config.seed)
        if args.scrape:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", metrics_port)
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            body = raw.split(b"\r\n\r\n", 1)[-1]
            pathlib.Path(args.scrape).write_bytes(body)
    finally:
        await server.stop()
    artifact = bench_artifact(stats, label=args.label, seed=config.seed)
    from repro.perf.bench import save_artifact
    path = save_artifact(artifact, args.out)
    stats["artifact"] = str(path)
    stats["violations"] = [v.to_dict() for v in monitor.violations]
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 1 if monitor.violations else 0


def _chaos(args: argparse.Namespace) -> int:
    plan = ChaosPlan(
        seed=args.seed, sessions=args.sessions,
        txns_per_session=args.txns, keys=args.keys,
        disconnect_rate=args.disconnect_rate,
        slow_loris_sessions=args.loris,
        slow_loris_delay_ms=args.loris_delay_ms,
        stall_shard=args.stall_shard, stall_ms=args.stall_ms,
        crash_shard=args.crash_shard,
        crash_after_txns=args.crash_after,
        flood_sessions=args.flood)
    config = StoreConfig(
        shards=args.shards,
        max_inflight=args.max_inflight,
        deadline_ms=args.deadline_ms,
        idle_timeout_ms=args.idle_timeout_ms,
        seed=args.seed)
    report = run_chaos_campaign(plan, config, broken=args.broken,
                                out_dir=args.dump_dir)
    if args.report:
        pathlib.Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def _check(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.path)
    try:
        rows = [json.loads(line) for line in
                path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        raise ConfigError(f"cannot read session log {path}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"session log {path} is not JSONL: {exc}")
    violations = check_rows(rows, shards=args.shards)
    print(json.dumps({
        "rows": len(rows),
        "violations": [v.to_dict() for v in violations],
    }, indent=2, sort_keys=True))
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``sitm-store`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="sitm-store",
        description="fault-hardened transactional KV store on the "
                    "SI-TM multiversioned memory")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shards", type=int, default=4)
        p.add_argument("--max-inflight", type=int, default=64,
                       dest="max_inflight")
        p.add_argument("--deadline-ms", type=int, default=2_000,
                       dest="deadline_ms")
        p.add_argument("--idle-timeout-ms", type=int, default=10_000,
                       dest="idle_timeout_ms")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dump-dir", default=None, dest="dump_dir",
                       help="directory for monitor violation dumps")

    serve = sub.add_parser("serve", help="run the store server")
    common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7400)
    serve.add_argument("--metrics-port", type=int, default=7401,
                       dest="metrics_port")
    serve.add_argument("--record", default=None,
                       help="JSONL path recording completed sessions")

    bench = sub.add_parser("bench", help="closed-loop Zipfian bench "
                                         "against an in-process server")
    common(bench)
    bench.add_argument("--label", default="store")
    bench.add_argument("--sessions", type=int, default=4)
    bench.add_argument("--txns", type=int, default=50)
    bench.add_argument("--keys", type=int, default=64)
    bench.add_argument("--zipf-theta", type=float, default=0.8,
                       dest="zipf_theta")
    bench.add_argument("--write-fraction", type=float, default=0.5,
                       dest="write_fraction")
    bench.add_argument("--out", default=None,
                       help="artifact directory (default: bench_dir)")
    bench.add_argument("--scrape", default=None,
                       help="write a /metrics scrape to this path")

    chaos = sub.add_parser("chaos", help="run a seeded chaos campaign")
    common(chaos)
    chaos.add_argument("--sessions", type=int, default=6)
    chaos.add_argument("--txns", type=int, default=25)
    chaos.add_argument("--keys", type=int, default=48)
    chaos.add_argument("--disconnect-rate", type=float, default=0.0,
                       dest="disconnect_rate")
    chaos.add_argument("--loris", type=int, default=0,
                       help="slow-loris peers to attach")
    chaos.add_argument("--loris-delay-ms", type=int, default=500,
                       dest="loris_delay_ms")
    chaos.add_argument("--stall-shard", type=int, default=-1,
                       dest="stall_shard")
    chaos.add_argument("--stall-ms", type=int, default=0,
                       dest="stall_ms")
    chaos.add_argument("--crash-shard", type=int, default=-1,
                       dest="crash_shard")
    chaos.add_argument("--crash-after", type=int, default=0,
                       dest="crash_after",
                       help="completed txns before the crash fires")
    chaos.add_argument("--flood", type=int, default=0,
                       help="simultaneous BEGINs past admission")
    chaos.add_argument("--broken", default="", choices=["", "no-fcw"],
                       help="deliberately-broken mode for monitor "
                            "self-tests")
    chaos.add_argument("--report", default=None,
                       help="also write the report JSON to this path")

    check = sub.add_parser("check", help="replay a session JSONL "
                                         "through the SI checker")
    check.add_argument("path")
    check.add_argument("--shards", type=int, default=4)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return asyncio.run(_serve(args))
        if args.command == "bench":
            return asyncio.run(_bench(args))
        if args.command == "chaos":
            return _chaos(args)
        return _check(args)
    except ConfigError as exc:
        print(f"sitm-store: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"sitm-store: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
