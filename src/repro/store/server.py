"""The store server: asyncio front-end, commit coordinator, monitor feed.

One :class:`StoreServer` owns the shard set, the session table, the
admission counters, and (optionally) a live oracle monitor.  The
robustness contract, end to end:

* **Admission**: a ``BEGIN`` past ``max_inflight`` open transactions is
  shed immediately with ``OVERLOADED`` plus a backoff hint — the server
  never queues work it has not admitted.
* **Deadlines**: every transaction carries an absolute deadline.  It is
  enforced at command arrival, inside shard queues, and around every
  shard wait; expiry aborts the transaction server-side and answers
  ``TIMEOUT``.
* **Commit protocol**: writes prepare on each touched shard in sorted
  shard order (pending-lock check, first-committer-wins validation,
  end-timestamp reservation, line locks); once every shard prepared,
  the apply runs **synchronously with no awaits** — in a single-threaded
  event loop that publishes a multi-shard commit atomically.  Prepares
  carry shard generations, so a crash between prepare and apply is
  detected and turned into a clean ``shard-crashed`` abort.
* **Retry/escalation**: every abort response carries ``retry_after_ms``
  from the session's :class:`~repro.sim.retry.RetryState`; a starving
  session's next transaction takes the server-wide **golden token**,
  and other commits touching its home shard wait until it finishes —
  the store-side analogue of the engine's serial escalation.
* **Session GC**: a disconnect mid-transaction aborts it in the
  ``finally`` path of the connection handler, unpinning its snapshots
  so the active-transaction table cannot leak and wedge version GC.
* **Monitoring**: every completed transaction is fed to the
  :class:`~repro.oracle.live.LiveHistoryMonitor` as a span-schema-
  compatible session row (also persisted when ``record_path`` is set),
  and the per-shard GC watermark is reported after each completion so
  the monitor can fold its windows.

A second tiny listener serves the Prometheus exposition of the metrics
registry on ``/metrics`` (:func:`repro.obs.prom.exposition_http_response`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.obs.export import SPAN_SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import exposition_http_response
from repro.oracle.live import LiveHistoryMonitor
from repro.sim.retry import RetryState
from repro.store import protocol
from repro.store.session import Session, StoreConfig, Txn, shard_of
from repro.store.shard import (CONFLICT, CRASHED, OK, OVERLOADED, SHUTDOWN,
                               TIMEOUT, Shard)
from repro.common.rng import SplitRandom

__all__ = ["StoreServer"]


class StoreServer:
    """A sharded SI transactional KV service over asyncio streams."""

    def __init__(self, config: Optional[StoreConfig] = None,
                 monitor: Optional[LiveHistoryMonitor] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 record_path: Optional[object] = None):
        self.config = config or StoreConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.monitor = monitor
        self.shards = [Shard(i, self.config)
                       for i in range(self.config.shards)]
        self.sessions: Dict[int, Session] = {}
        self.open_txns: Dict[int, Txn] = {}
        self._next_session = 0
        self._next_txn = 0
        self._seq = 0
        self._rng = SplitRandom(self.config.seed, ("store", "retry"))
        # golden-token escalation state
        self._golden_holder: Optional[int] = None  # txn uid
        self._golden_home: Optional[int] = None    # shard id
        self._golden_free = asyncio.Event()
        self._golden_free.set()
        self.escalations = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._record = None
        self._record_path = record_path
        self._shutting_down = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start shards and the listener; returns the bound port."""
        if self._record_path is not None:
            import pathlib
            path = pathlib.Path(self._record_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._record = path.open("w", encoding="utf-8")
        for shard in self.shards:
            shard.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def start_metrics(self, host: str = "127.0.0.1",
                            port: int = 0) -> int:
        """Start the ``/metrics`` exposition listener; returns its port."""
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics, host, port)
        return self._metrics_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listeners and shard tasks; final monitor check runs."""
        self._shutting_down = True
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for shard in self.shards:
            await shard.stop()
        if self.monitor is not None:
            self.monitor.check()
        if self._record is not None:
            self._record.close()
            self._record = None

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # seed first_attempt_at with the current clock: the starvation
        # age is wall time since the session's first attempt, not since
        # the epoch
        session = Session(self._next_session,
                          RetryState(self.config.retry,
                                     self._rng.split(self._next_session),
                                     now=self._now_ms()))
        self._next_session += 1
        self.sessions[session.session_id] = session
        idle = self.config.idle_timeout_ms / 1000.0
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader, idle)
                except ProtocolError:
                    break  # framing violation or slow-loris: drop peer
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                response = await self._dispatch(session, request)
                writer.write(protocol.encode_frame(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            if session.txn is not None:
                self._abort_txn(session, session.txn, "disconnect")
                self.metrics.inc("store_disconnects_total")
            del self.sessions[session.session_id]
            writer.close()

    async def _handle_metrics(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        try:
            await asyncio.wait_for(reader.readline(), 5.0)
        except (asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        self._refresh_gauges()
        writer.write(exposition_http_response(self.metrics.snapshot(),
                                              prefix="sitm_"))
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    def _refresh_gauges(self) -> None:
        self.metrics.set_gauge("store_sessions", len(self.sessions))
        self.metrics.set_gauge("store_inflight", len(self.open_txns))
        for shard in self.shards:
            stats = shard.stats()
            self.metrics.set_gauge("store_shard_generation",
                                   stats["generation"],
                                   shard=shard.shard_id)
            self.metrics.set_gauge("store_shard_queue_depth",
                                   stats["queue_depth"],
                                   shard=shard.shard_id)
            self.metrics.set_gauge("store_shard_pinned_txns",
                                   stats["pinned_transactions"],
                                   shard=shard.shard_id)
            self.metrics.set_gauge("store_shard_watermark",
                                   stats["watermark"] or 0,
                                   shard=shard.shard_id)

    # ------------------------------------------------------------------
    # request dispatch

    async def _dispatch(self, session: Session, request: dict) -> dict:
        op = request.get("op")
        if op not in protocol.OPS:
            return protocol.error_response(
                "BAD_REQUEST", f"unknown op {op!r}")
        if self._shutting_down:
            return protocol.error_response("SERVER_SHUTDOWN",
                                           "server is draining")
        if op == "PING":
            return protocol.ok_response(
                pong=True,
                generations=[s.generation for s in self.shards])
        if op == "BEGIN":
            return await self._do_begin(session, request)
        txn = session.txn
        if txn is None:
            return protocol.error_response("NO_TXN",
                                           f"{op} outside a transaction")
        if self._expired(txn):
            self._abort_txn(session, txn, "timeout")
            return protocol.error_response("TIMEOUT",
                                           "transaction deadline expired")
        if txn.doomed is not None:
            cause = txn.doomed
            self._abort_txn(session, txn, cause)
            return self._aborted_response(session, cause)
        if op == "READ":
            return await self._do_read(session, txn, request)
        if op == "WRITE":
            return self._do_write(session, txn, request)
        if op == "COMMIT":
            return await self._do_commit(session, txn)
        # ABORT
        self._abort_txn(session, txn, "explicit")
        return protocol.ok_response()

    def _expired(self, txn: Txn) -> bool:
        return asyncio.get_running_loop().time() > txn.deadline

    def _now_ms(self) -> int:
        return int(asyncio.get_running_loop().time() * 1000)

    def _aborted_response(self, session: Session, cause: str) -> dict:
        delay = session.retry.note_abort()
        return protocol.error_response(
            "ABORTED", f"transaction aborted ({cause})",
            retry_after_ms=delay, cause=cause)

    # ------------------------------------------------------------------
    # operations

    async def _do_begin(self, session: Session, request: dict) -> dict:
        if session.txn is not None:
            return protocol.error_response(
                "TXN_OPEN", "session already has an open transaction")
        if len(self.open_txns) >= self.config.max_inflight:
            session.retry.note_stall()
            self.metrics.inc("store_shed_total", reason="admission")
            return protocol.error_response(
                "OVERLOADED",
                f"{len(self.open_txns)} transactions in flight "
                f"(limit {self.config.max_inflight})",
                retry_after_ms=self.config.retry.delay(
                    session.retry.consecutive_stalls, self._rng))
        # starving? — judged before note_progress resets the stall
        # streak the sheds built up
        starving = session.retry.starving(self._now_ms())
        session.retry.note_progress()
        session.retry.note_first_attempt(self._now_ms())
        deadline_ms = request.get("deadline_ms", self.config.deadline_ms)
        if not isinstance(deadline_ms, int) or deadline_ms < 1:
            return protocol.error_response(
                "BAD_REQUEST", f"bad deadline_ms {deadline_ms!r}")
        deadline_ms = min(deadline_ms, self.config.max_deadline_ms)
        label = request.get("label", f"session-{session.session_id}")
        self._seq += 1
        txn = Txn(uid=self._next_txn, session_id=session.session_id,
                  label=str(label),
                  deadline=(asyncio.get_running_loop().time()
                            + deadline_ms / 1000.0),
                  begin_seq=self._seq)
        self._next_txn += 1
        session.txn = txn
        self.open_txns[txn.uid] = txn
        # golden-token escalation: a starving session's transaction
        # serializes against other commits on its home shard
        policy = self.config.retry
        if (policy.escalation and self._golden_holder is None
                and starving):
            self._golden_holder = txn.uid
            self._golden_home = None  # set at first shard touch
            self._golden_free.clear()
            self.escalations += 1
            self.metrics.inc("store_escalations_total")
        return protocol.ok_response(txn=txn.uid)

    async def _shard_call(self, session: Session, txn: Txn, shard: Shard,
                          kind: str, payload: object = None
                          ) -> Tuple[str, object]:
        """Submit to a shard and await, bounded by the txn deadline."""
        remaining = txn.deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            return (TIMEOUT, None)
        future = shard.submit(kind, txn, payload)
        try:
            return await asyncio.wait_for(future, remaining)
        except asyncio.TimeoutError:
            txn.doom("timeout")
            # the command may still run later; doom makes it a no-op,
            # and any side effects a prepare already took are reverted
            # by the caller's cleanup path
            return (TIMEOUT, None)

    async def _ensure_snapshot(self, session: Session, txn: Txn,
                               shard: Shard) -> Tuple[str, object]:
        if shard.shard_id in txn.snapshots:
            pin = txn.snapshots[shard.shard_id]
            if pin[1] != shard.generation:
                return (CRASHED, None)
            return (OK, pin[0])
        status, data = await self._shard_call(session, txn, shard,
                                              "snapshot")
        if status == OK and self._golden_holder == txn.uid \
                and self._golden_home is None:
            self._golden_home = shard.shard_id
        return status, data

    async def _do_read(self, session: Session, txn: Txn,
                       request: dict) -> dict:
        key = request.get("key")
        if not isinstance(key, str) or not key:
            return protocol.error_response("BAD_REQUEST",
                                           f"bad key {key!r}")
        sid = shard_of(key, self.config.shards)
        shard = self.shards[sid]
        # read-your-writes from the buffered write set
        if (sid, key) in txn.writes:
            value = txn.writes[(sid, key)]
            txn.ops.append(("r", sid, key, value))
            txn.reads += 1
            return protocol.ok_response(value=value)
        status, _ = await self._ensure_snapshot(session, txn, shard)
        if status != OK:
            return self._shard_failure(session, txn, status)
        status, value = await self._shard_call(session, txn, shard,
                                               "read", key)
        if status != OK:
            return self._shard_failure(session, txn, status)
        txn.ops.append(("r", sid, key, value))
        txn.reads += 1
        return protocol.ok_response(value=value)

    def _do_write(self, session: Session, txn: Txn,
                  request: dict) -> dict:
        key = request.get("key")
        if not isinstance(key, str) or not key:
            return protocol.error_response("BAD_REQUEST",
                                           f"bad key {key!r}")
        if "value" not in request or request["value"] is None:
            return protocol.error_response(
                "BAD_REQUEST", "null is the never-written sentinel, "
                "not a storable value")
        value = request["value"]
        sid = shard_of(key, self.config.shards)
        txn.writes[(sid, key)] = value
        txn.ops.append(("w", sid, key, value))
        return protocol.ok_response()

    def _shard_failure(self, session: Session, txn: Txn,
                       status: str) -> dict:
        """Translate a failed shard command into a structured response."""
        if status == OVERLOADED:
            self.metrics.inc("store_shed_total", reason="shard-queue")
            self._abort_txn(session, txn, "overloaded")
            return self._overloaded_aborted(session)
        if status == TIMEOUT:
            self._abort_txn(session, txn, "timeout")
            self.metrics.inc("store_timeouts_total")
            return protocol.error_response(
                "TIMEOUT", "transaction deadline expired in a shard")
        if status == SHUTDOWN:
            self._abort_txn(session, txn, "explicit")
            return protocol.error_response("SERVER_SHUTDOWN",
                                           "server is draining")
        if status == CONFLICT:
            # a shard refuses commands for an already-doomed transaction
            # with CONFLICT; surface the original doom cause (e.g. a
            # crash on another shard), not the refusal itself
            cause = txn.doomed or "write-write"
        else:
            cause = "shard-crashed" if status == CRASHED else str(status)
        self._abort_txn(session, txn, cause)
        return self._aborted_response(session, cause)

    def _overloaded_aborted(self, session: Session) -> dict:
        delay = session.retry.note_abort()
        return protocol.error_response(
            "OVERLOADED", "shard queue full; transaction aborted",
            retry_after_ms=delay, cause="overloaded")

    async def _do_commit(self, session: Session, txn: Txn) -> dict:
        if not txn.writes:
            self._finish_txn(session, txn, committed=True)
            return protocol.ok_response(commit_ts=None, read_only=True)
        by_shard: Dict[int, Dict[str, object]] = {}
        for (sid, key), value in txn.writes.items():
            by_shard.setdefault(sid, {})[key] = value
        # golden-token gate: while a starving transaction holds the
        # token, other commits touching its home shard wait
        gate_ok = await self._golden_gate(txn)
        if not gate_ok:
            self._abort_txn(session, txn, "timeout")
            self.metrics.inc("store_timeouts_total")
            return protocol.error_response(
                "TIMEOUT", "deadline expired waiting for escalation")
        # phase 1: pin write-only shards, then prepare in shard order
        for sid in sorted(by_shard):
            status, _ = await self._ensure_snapshot(session, txn,
                                                    self.shards[sid])
            if status != OK:
                return self._shard_failure(session, txn, status)
        prepared: List[Tuple[Shard, int, int]] = []
        for sid in sorted(by_shard):
            shard = self.shards[sid]
            status, data = await self._shard_call(session, txn, shard,
                                                  "prepare", by_shard[sid])
            if status != OK:
                for other, _, gen in prepared:
                    if other.generation == gen:
                        other.abort_prepare(txn)
                if status == CONFLICT:
                    cause = data if isinstance(data, str) else "write-write"
                    self._abort_txn(session, txn, cause)
                    return self._aborted_response(session, cause)
                return self._shard_failure(session, txn, status)
            end_ts, generation = data
            prepared.append((shard, end_ts, generation))
        # phase 2: atomic apply — NO awaits from here to _finish_txn
        if any(shard.generation != gen for shard, _, gen in prepared):
            for shard, _, gen in prepared:
                if shard.generation == gen:
                    shard.abort_prepare(txn)
            self._abort_txn(session, txn, "shard-crashed")
            return self._aborted_response(session, "shard-crashed")
        for shard, end_ts, _ in prepared:
            shard.apply(txn, end_ts, by_shard[shard.shard_id])
        self._finish_txn(session, txn, committed=True)
        return protocol.ok_response(
            commit_ts={str(s): ts for s, ts in txn.commit_ts.items()},
            read_only=False)

    async def _golden_gate(self, txn: Txn) -> bool:
        """Wait while another txn's golden token covers our shards."""
        while (self._golden_holder is not None
               and self._golden_holder != txn.uid
               and self._golden_home is not None
               and self._golden_home in txn.touched_shards):
            remaining = txn.deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._golden_free.wait()), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    # ------------------------------------------------------------------
    # completion (synchronous: safe inside the atomic apply step)

    def _release_golden(self, txn: Txn) -> None:
        if self._golden_holder == txn.uid:
            self._golden_holder = None
            self._golden_home = None
            self._golden_free.set()

    def _abort_txn(self, session: Session, txn: Txn, cause: str) -> None:
        """Server-side abort: shard cleanup, unpin, session bookkeeping."""
        for shard in self.shards:
            shard.abort_prepare(txn)
        txn.doom(cause)
        self._finish_txn(session, txn, committed=False, cause=cause)

    def _finish_txn(self, session: Session, txn: Txn, committed: bool,
                    cause: Optional[str] = None) -> None:
        self._seq += 1
        # build the monitor row BEFORE releasing: release_snapshot pops
        # txn.snapshots, and the row needs the per-shard start_ts
        row = None
        if self.monitor is not None or self._record is not None:
            row = self._session_row(session, txn, committed, cause)
        for sid in list(txn.snapshots):
            self.shards[sid].release_snapshot(txn)
        self.open_txns.pop(txn.uid, None)
        if session.txn is txn:
            session.txn = None
        self._release_golden(txn)
        if committed:
            session.committed += 1
            session.retry.reset(self._now_ms())
            self.metrics.inc("store_txn_commits_total")
        else:
            session.aborted += 1
            self.metrics.inc("store_txn_aborts_total",
                             cause=cause or "unknown")
        if row is not None:
            self._emit_row(row)

    def _emit_row(self, row: dict) -> None:
        if self._record is not None:
            self._record.write(json.dumps(row, sort_keys=True) + "\n")
            self._record.flush()
        if self.monitor is not None:
            self.monitor.feed_row(row)
            for shard in self.shards:
                self.monitor.note_watermark(shard.shard_id,
                                            shard.watermark)

    def _session_row(self, session: Session, txn: Txn, committed: bool,
                     cause: Optional[str]) -> dict:
        """The span-schema-compatible record of one completed txn."""
        shards_meta = {}
        seen = set(txn.snapshots) | set(txn.commit_ts) \
            | {s for s, _ in txn.writes}
        for sid in sorted(seen):
            pin = txn.snapshots.get(sid)
            shards_meta[str(sid)] = {
                "start_ts": pin[0] if pin else None,
                "commit_ts": txn.commit_ts.get(sid)}
        home = min(seen) if seen else None
        home_meta = shards_meta.get(str(home), {}) if home is not None \
            else {}
        return {
            "uid": txn.uid,
            "thread": session.session_id,
            "label": txn.label,
            "begin_cycle": txn.begin_seq,
            "end_cycle": self._seq,
            "outcome": "commit" if committed else "abort",
            "cause": None if committed else (cause or "explicit"),
            "retries": session.retry.attempts,
            "reads": txn.reads,
            "writes": len(txn.writes),
            "start_ts": home_meta.get("start_ts"),
            "commit_ts": home_meta.get("commit_ts"),
            "schema_version": SPAN_SCHEMA_VERSION,
            "store": {
                "shards": shards_meta,
                "ops": [[k, s, key, v] for k, s, key, v in txn.ops],
            },
        }

    # ------------------------------------------------------------------
    # chaos hooks

    def crash_shard(self, shard_id: int) -> List[Txn]:
        """Force-crash one shard; dooms and returns affected txns."""
        shard = self.shards[shard_id]
        doomed = shard.crash_now(list(self.open_txns.values()))
        self.metrics.inc("store_shard_crashes_total", shard=shard_id)
        return doomed

    def stall_shard(self, shard_id: int, ms: float) -> None:
        """Inject a stall into one shard's command task."""
        self.shards[shard_id].inject_stall(ms)
        self.metrics.inc("store_shard_stalls_total", shard=shard_id)

    @property
    def golden_holder(self) -> Optional[int]:
        """Txn uid currently holding the golden token (or None)."""
        return self._golden_holder
