"""Seeded chaos campaigns against a live in-process store server.

The simulator provokes its rare paths with :class:`~repro.faults.FaultPlan`;
the live store gets the same treatment one layer up, at the service
boundary.  A :class:`ChaosPlan` is the same idiom — a frozen, seeded,
JSON-round-trippable recipe, every site off by default — but its sites
are *service* faults (see :data:`CHAOS_SITES`): abrupt client
disconnects mid-transaction, slow-loris peers that trickle bytes,
shard-task stalls, forced shard crash/restart, and admission floods.

:func:`run_chaos_campaign` stands up a real :class:`StoreServer` on a
loopback socket with the live oracle monitor attached, drives it with
seeded Zipfian workers through the same :class:`StoreClient` real
callers use, fires the plan's faults at transaction-count triggers, and
then **proves recovery**: a post-campaign probe transaction must commit
on every shard (including any crashed one), every session must be GC'd,
the active-transaction table must drain to empty, and the GC watermark
must have advanced past its starting pin on every shard that committed.
The report is JSON-safe and the chaos test asserts on it directly.

``broken="no-fcw"`` is the monitor's self-test: it disables
first-committer-wins validation and runs a choreographed two-client
same-key race whose histories are *genuinely* non-SI — the campaign
passes only if the live monitor flags the violation, proving the oracle
wire-up would catch a real isolation regression, not just that quiet
runs stay quiet.
"""

from __future__ import annotations

import asyncio
import dataclasses
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, ProtocolError
from repro.common.rng import SplitRandom
from repro.oracle.live import LiveHistoryMonitor
from repro.store.loadgen import StoreClient, ZipfKeys, _backoff
from repro.store.server import StoreServer
from repro.store.session import StoreConfig, shard_of

__all__ = ["CHAOS_SITES", "ChaosPlan", "run_chaos_campaign"]


#: machine-readable registry of service-level injection sites
#: (rendered into the chaos-site table in ``docs/robustness.md``)
CHAOS_SITES = [
    {"site": "client-disconnect",
     "layer": "store/server.py:_handle_connection (finally)",
     "fields": "disconnect_rate",
     "effect": "drops the connection mid-transaction; the session GC "
               "must abort the open transaction and unpin its "
               "snapshots"},
    {"site": "slow-loris",
     "layer": "store/protocol.py:read_frame (whole-frame timeout)",
     "fields": "slow_loris_sessions, slow_loris_delay_ms",
     "effect": "peers trickle a partial frame; the server must "
               "disconnect them instead of holding a reader forever"},
    {"site": "shard-stall",
     "layer": "store/shard.py:_run (inject_stall)",
     "fields": "stall_shard, stall_ms, stall_after_txns",
     "effect": "the shard task sleeps before its next command; "
               "deadlines must convert the backlog into structured "
               "TIMEOUTs, not hangs"},
    {"site": "shard-crash",
     "layer": "store/shard.py:crash_now",
     "fields": "crash_shard, crash_after_txns",
     "effect": "forced crash/restart from the recovery checkpoint: "
               "open transactions abort with shard-crashed, committed "
               "state survives, the shard serves again"},
    {"site": "admission-flood",
     "layer": "store/server.py:_do_begin",
     "fields": "flood_sessions",
     "effect": "a burst of simultaneous BEGINs past max_inflight; the "
               "excess must shed with structured OVERLOADED, never "
               "queue silently"},
]


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic recipe of service faults for one campaign.

    All sites default to *off*; a default-constructed plan only runs
    the background Zipfian load.  Frozen and JSON-round-trippable with
    a stable key set, like :class:`~repro.faults.FaultPlan`.
    """

    #: root seed for the workers' key/op/disconnect streams
    seed: int = 0

    # -- background load ------------------------------------------------
    #: concurrent closed-loop worker sessions
    sessions: int = 6
    #: logical transactions per worker
    txns_per_session: int = 25
    #: key-space size and Zipf skew of the working set
    keys: int = 48
    zipf_theta: float = 0.8
    #: fraction of operations that are writes
    write_fraction: float = 0.5
    #: operations per transaction
    ops_per_txn: int = 4

    # -- client-disconnect site -----------------------------------------
    #: probability a worker drops its connection mid-transaction
    disconnect_rate: float = 0.0

    # -- slow-loris site ------------------------------------------------
    #: peers that send a partial frame and stall (0 = site disabled)
    slow_loris_sessions: int = 0
    #: how long each loris stalls before probing, in milliseconds
    slow_loris_delay_ms: int = 500

    # -- shard-stall site -----------------------------------------------
    #: shard to stall (-1 = site disabled)
    stall_shard: int = -1
    #: injected sleep, in milliseconds
    stall_ms: int = 0
    #: completed transactions before the stall fires
    stall_after_txns: int = 0

    # -- shard-crash site -----------------------------------------------
    #: shard to force-crash (-1 = site disabled)
    crash_shard: int = -1
    #: completed transactions before the crash fires
    crash_after_txns: int = 0

    # -- admission-flood site -------------------------------------------
    #: simultaneous extra BEGINs thrown at admission control (0 = off)
    flood_sessions: int = 0

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.txns_per_session < 1:
            raise ConfigError("chaos load must have >= 1 session/txn")
        if self.keys < 1 or self.ops_per_txn < 1:
            raise ConfigError("keys and ops_per_txn must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.disconnect_rate <= 1.0:
            raise ConfigError("disconnect_rate must be in [0, 1]")
        if self.zipf_theta < 0:
            raise ConfigError("zipf_theta must be >= 0")
        if self.slow_loris_sessions < 0 or self.slow_loris_delay_ms < 1:
            raise ConfigError("slow-loris fields out of range")
        if self.stall_shard < -1 or self.crash_shard < -1:
            raise ConfigError("shard indices must be >= -1")
        if self.stall_ms < 0 or self.stall_after_txns < 0 \
                or self.crash_after_txns < 0:
            raise ConfigError("stall/crash triggers must be >= 0")
        if self.flood_sessions < 0:
            raise ConfigError("flood_sessions must be >= 0")

    def active(self) -> bool:
        """True when at least one fault site is enabled."""
        return bool(self.disconnect_rate or self.slow_loris_sessions
                    or self.stall_shard >= 0 or self.crash_shard >= 0
                    or self.flood_sessions)

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set)."""
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        """Inverse of :meth:`to_dict` (tolerates missing keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


# ----------------------------------------------------------------------
# chaos actors


async def _chaos_worker(port: int, worker: int, plan: ChaosPlan,
                        zipf: ZipfKeys, stats: dict) -> None:
    """A closed-loop worker that sometimes yanks its own connection."""
    rng = SplitRandom(plan.seed, ("chaos", worker))
    client = await StoreClient.connect(port)
    try:
        for txn_index in range(plan.txns_per_session):
            for _attempt in range(8):
                response = await client.begin(
                    label=f"chaos-{worker}-{txn_index}")
                if not response.get("ok"):
                    stats["shed"] += 1
                    await _backoff(response)
                    continue
                if (plan.disconnect_rate
                        and rng.random() < plan.disconnect_rate):
                    # yank the connection mid-transaction: the server's
                    # session GC must abort and unpin for us
                    client.close()
                    stats["disconnects_injected"] += 1
                    await asyncio.sleep(0)
                    client = await StoreClient.connect(port)
                    break
                failed = None
                for _ in range(plan.ops_per_txn):
                    key = zipf.pick(rng)
                    if rng.random() < plan.write_fraction:
                        reply = await client.write(
                            key, {"w": worker, "t": txn_index})
                    else:
                        reply = await client.read(key)
                    if not reply.get("ok"):
                        failed = reply
                        break
                if failed is None:
                    failed = await client.commit()
                    if failed.get("ok"):
                        stats["commits"] += 1
                        break
                cause = failed.get("cause") or \
                    failed.get("error", "unknown").lower()
                stats["aborts"][cause] = stats["aborts"].get(cause, 0) + 1
                await _backoff(failed)
    finally:
        client.close()


async def _slow_loris(port: int, delay_ms: int, stats: dict) -> None:
    """Trickle a partial frame; count whether the server drops us."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(struct.pack(">I", 64)[:2])  # half a length header
        await writer.drain()
        await asyncio.sleep(delay_ms / 1000.0)
        writer.write(b"\x00")
        await writer.drain()
        probe = await asyncio.wait_for(reader.read(1), 5.0)
        if probe == b"":  # EOF: the server disconnected us
            stats["loris_dropped"] += 1
    except (ConnectionError, asyncio.TimeoutError):
        stats["loris_dropped"] += 1
    finally:
        writer.close()


async def _flood(port: int, peers: int, stats: dict) -> None:
    """Simultaneous BEGIN burst; count structured OVERLOADED sheds."""
    async def one() -> None:
        client = await StoreClient.connect(port)
        try:
            response = await client.begin(label="flood")
            if response.get("ok"):
                await client.abort()
            elif response.get("error") == "OVERLOADED":
                stats["flood_shed"] += 1
        finally:
            client.close()

    await asyncio.gather(*[one() for _ in range(peers)])


async def _trigger_at(monitor: LiveHistoryMonitor, after_txns: int,
                      action, timeout_s: float = 20.0) -> None:
    """Fire ``action()`` once ``after_txns`` transactions completed."""
    waited = 0.0
    while monitor.rows_seen < after_txns and waited < timeout_s:
        await asyncio.sleep(0.005)
        waited += 0.005
    action()


async def _probe(port: int, server: StoreServer) -> bool:
    """Post-campaign liveness proof: one commit per shard, read back."""
    client = await StoreClient.connect(port)
    try:
        wanted = set(range(server.config.shards))
        chosen: Dict[int, str] = {}
        index = 0
        while wanted:
            key = f"probe-{index}"
            index += 1
            sid = shard_of(key, server.config.shards)
            if sid in wanted:
                wanted.discard(sid)
                chosen[sid] = key
        begun = await client.begin(label="probe", deadline_ms=5_000)
        if not begun.get("ok"):
            return False
        for sid in sorted(chosen):
            if not (await client.write(chosen[sid],
                                       {"probe": sid})).get("ok"):
                return False
        if not (await client.commit()).get("ok"):
            return False
        begun = await client.begin(label="probe-read", deadline_ms=5_000)
        if not begun.get("ok"):
            return False
        for sid in sorted(chosen):
            reply = await client.read(chosen[sid])
            if not reply.get("ok") or reply.get("value") != {"probe": sid}:
                return False
        return (await client.commit()).get("ok", False)
    finally:
        client.close()


async def _fcw_race(port: int) -> None:
    """The no-fcw self-test choreography: a genuine lost update.

    A and B snapshot the same key, then both commit different values to
    it with overlapping lifetimes.  Under first-committer-wins the
    second commit must abort; with validation disabled both commit, and
    the live monitor must flag it.
    """
    a = await StoreClient.connect(port)
    b = await StoreClient.connect(port)
    try:
        assert (await a.begin(label="race-a")).get("ok")
        assert (await b.begin(label="race-b")).get("ok")
        # both pin snapshots on the key's shard before either commits
        await a.read("contested")
        await b.read("contested")
        await a.write("contested", "from-a")
        assert (await a.commit()).get("ok")
        await b.write("contested", "from-b")
        await b.commit()  # must abort under FCW; commits when broken
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# the campaign


def _label_counters(snapshot: dict, name: str) -> Dict[str, float]:
    """Pull ``name{...}`` counter samples out of a metrics snapshot."""
    out: Dict[str, float] = {}
    for key, value in snapshot.get("counters", {}).items():
        if key == name:
            out[""] = value
        elif key.startswith(name + "{"):
            out[key[len(name) + 1:-1]] = value
    return out


async def _campaign(plan: ChaosPlan, config: StoreConfig, broken: str,
                    out_dir: Optional[object]) -> dict:
    monitor = LiveHistoryMonitor(config.shards, dump_dir=out_dir,
                                 check_every=16)
    server = StoreServer(config, monitor=monitor)
    port = await server.start()
    initial_watermarks = [shard.watermark for shard in server.shards]
    stats = {"commits": 0, "shed": 0, "disconnects_injected": 0,
             "loris_dropped": 0, "flood_shed": 0, "aborts": {}}
    try:
        if broken == "no-fcw":
            await _fcw_race(port)
        else:
            zipf = ZipfKeys(plan.keys, plan.zipf_theta)
            tasks = [
                asyncio.ensure_future(
                    _chaos_worker(port, worker, plan, zipf, stats))
                for worker in range(plan.sessions)]
            if plan.slow_loris_sessions:
                tasks.extend(asyncio.ensure_future(
                    _slow_loris(port, plan.slow_loris_delay_ms, stats))
                    for _ in range(plan.slow_loris_sessions))
            if plan.stall_shard >= 0 and plan.stall_ms:
                tasks.append(asyncio.ensure_future(_trigger_at(
                    monitor, plan.stall_after_txns,
                    lambda: server.stall_shard(plan.stall_shard,
                                               plan.stall_ms))))
            if plan.crash_shard >= 0:
                tasks.append(asyncio.ensure_future(_trigger_at(
                    monitor, plan.crash_after_txns,
                    lambda: server.crash_shard(plan.crash_shard))))
            if plan.flood_sessions:
                tasks.append(asyncio.ensure_future(
                    _flood(port, plan.flood_sessions, stats)))
            await asyncio.gather(*tasks)
        probe_ok = await _probe(port, server)
        # let the per-connection handlers observe their EOFs and GC
        waited = 0.0
        while server.sessions and waited < 2.0:
            await asyncio.sleep(0.005)
            waited += 0.005
        monitor.check()
        snapshot = server.metrics.snapshot()
        sessions_leaked = len(server.sessions)
        active_txns = len(server.open_txns)
        pinned = sum(shard.pinned_transactions()
                     for shard in server.shards)
        watermark_advanced = all(
            shard.commits == 0 or (shard.watermark or 0) > (initial or 0)
            for shard, initial in zip(server.shards, initial_watermarks))
        violations = [v.to_dict() for v in monitor.violations]
        if broken == "no-fcw":
            caught = any(v["rule"] == "first-committer-wins"
                         for v in violations)
            ok = caught and probe_ok
        else:
            caught = False
            ok = (not violations and probe_ok
                  and sessions_leaked == 0 and active_txns == 0
                  and pinned == 0 and watermark_advanced)
        return {
            "plan": plan.to_dict(),
            "config": config.to_dict(),
            "broken": broken,
            "commits": stats["commits"],
            "aborts": dict(sorted(stats["aborts"].items())),
            "shed": stats["shed"],
            "flood_shed": stats["flood_shed"],
            "disconnects_injected": stats["disconnects_injected"],
            "loris_dropped": stats["loris_dropped"],
            "server_aborts": _label_counters(
                snapshot, "store_txn_aborts_total"),
            "escalations": server.escalations,
            "rows_checked": monitor.rows_seen,
            "checks_run": monitor.checks_run,
            "retained_rows": monitor.retained(),
            "sessions_leaked": sessions_leaked,
            "active_txns": active_txns,
            "pinned_txns": pinned,
            "watermark_advanced": watermark_advanced,
            "generations": [s.generation for s in server.shards],
            "shard_crashes": sum(s.crashes for s in server.shards),
            "shard_stalls": sum(s.stalls for s in server.shards),
            "violations": violations,
            "violation_dumps": [str(p) for p in monitor.dumps],
            "probe_ok": probe_ok,
            "monitor_caught": caught,
            "ok": ok,
        }
    finally:
        await server.stop()


def run_chaos_campaign(plan: ChaosPlan,
                       config: Optional[StoreConfig] = None,
                       broken: str = "",
                       out_dir: Optional[object] = None) -> dict:
    """Run one seeded chaos campaign; returns the JSON-safe report.

    ``broken`` selects a deliberately-broken server mode for monitor
    self-tests (currently ``"no-fcw"``); the report's ``ok`` then means
    *the monitor caught the planted violation*.  ``out_dir`` receives
    replayable violation dumps when the monitor fires.
    """
    if broken not in ("", "no-fcw"):
        raise ConfigError(f"unknown broken mode {broken!r}")
    config = config or StoreConfig()
    if broken == "no-fcw":
        config = dataclasses.replace(config, validate_fcw=False)
    try:
        return asyncio.run(_campaign(plan, config, broken, out_dir))
    except ProtocolError as exc:  # pragma: no cover - defensive
        raise ConfigError(f"chaos campaign wire failure: {exc}")
