"""``repro.store``: a fault-hardened concurrent transactional KV service.

The simulator proves the SI-TM protocol under virtual time; this package
runs the same multiversioned machinery — per-shard
:class:`~repro.mvm.controller.MVMController` instances with their own
commit clocks — against *wall-clock* concurrency: an asyncio front-end
speaking a length-prefixed JSON protocol (``BEGIN``/``READ``/``WRITE``/
``COMMIT``/``ABORT``), begin-timestamp snapshots and first-committer-wins
validation per shard, and robustness as a first-class feature:

* per-transaction **deadlines** with structured ``TIMEOUT`` errors;
* **retry/backoff** reusing the simulator's
  :class:`~repro.sim.retry.RetryPolicy` semantics over milliseconds,
  including golden-token escalation of starving transactions;
* **admission control** — bounded in-flight transactions and bounded
  shard queues, shed with explicit ``OVERLOADED`` responses, never
  silent queueing;
* **session GC** — client disconnects mid-transaction unpin their
  snapshots so the active-transaction table cannot leak and wedge
  version GC;
* **shard crash/restart recovery** on
  :mod:`repro.mvm.checkpoint` pinned snapshots advanced to the publish
  frontier;
* a seeded :class:`~repro.store.chaos.ChaosPlan` injecting disconnects,
  slow-loris clients, shard stalls and forced crashes; and
* a **live oracle monitor** (:mod:`repro.oracle.live`) replaying every
  completed transaction through the SI checker while the server runs.

Entry point: the ``sitm-store`` console script
(:mod:`repro.store.cli`).  See ``docs/store.md`` for the wire protocol
and semantics.
"""

from repro.store.chaos import ChaosPlan, run_chaos_campaign
from repro.store.loadgen import StoreClient, ZipfKeys, run_load
from repro.store.server import StoreServer
from repro.store.session import StoreConfig

__all__ = ["ChaosPlan", "StoreClient", "StoreConfig", "StoreServer",
           "ZipfKeys", "run_chaos_campaign", "run_load"]
