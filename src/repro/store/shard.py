"""One store shard: a single-writer task over an `MVMController`.

Each shard is an independent snapshot-isolation domain — its own
:class:`~repro.mvm.timestamps.GlobalClock`, its own
:class:`~repro.mvm.controller.MVMController` (one key per line,
``words_per_line=1``, unbounded version cap — the recovery checkpoint
pins history, and a pinned checkpoint under the ABORT_WRITER cap is
exactly the livelock footgun :mod:`repro.mvm.checkpoint` warns about).

Concurrency model: **all mutation is serialized through one asyncio
task** draining a bounded command queue (``snapshot``/``read``/
``prepare``).  A full queue sheds the command with a structured
``overloaded`` status — never silent queueing.  The commit *apply*
phase, by contrast, is a synchronous method the coordinator calls with
no intervening ``await``: in a single-threaded event loop that makes a
multi-shard apply atomic — no reader anywhere can observe a
half-applied cross-shard commit.

Crash/recovery (:meth:`Shard.crash_now`): the shard holds a recovery
checkpoint pinned at the *publish frontier* — advanced to every
committed end timestamp inside the atomic apply.  A forced crash bumps
the generation counter, fails queued commands with ``shard-crashed``,
abandons in-flight prepare reservations, dooms and unpins every
transaction with state on the shard, and rolls the MVM back to the
checkpoint — discarding exactly the unpublished residue.  Prepares are
tagged with the generation so a coordinator racing a crash detects the
mismatch and aborts instead of applying onto the recovered state.
"""

from __future__ import annotations

import asyncio
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from collections import deque

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.mem.address import AddressMap
from repro.mvm.checkpoint import CheckpointManager
from repro.mvm.controller import MVMController
from repro.store.session import StoreConfig, Txn

__all__ = ["Shard", "ShardCommand"]

#: statuses a shard command future can resolve to
OK, CONFLICT, OVERLOADED, TIMEOUT, CRASHED, SHUTDOWN = (
    "ok", "conflict", "overloaded", "timeout", "shard-crashed", "shutdown")


class ShardCommand:
    """One queued shard operation, resolved through a future."""

    __slots__ = ("kind", "txn", "payload", "future")

    def __init__(self, kind: str, txn: Txn, payload: object,
                 future: "asyncio.Future"):
        self.kind = kind
        self.txn = txn
        self.payload = payload
        self.future = future

    def resolve(self, status: str, data: object = None) -> None:
        """Resolve the caller's future unless it already gave up."""
        if not self.future.done():
            self.future.set_result((status, data))


class Shard:
    """A single-writer snapshot-isolation domain over one controller."""

    def __init__(self, shard_id: int, config: StoreConfig):
        self.shard_id = shard_id
        self.config = config
        self.mvm = MVMController(
            MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                      commit_delta=config.commit_delta),
            AddressMap(words_per_line=1))
        #: key -> line interning (one key per line, words_per_line=1)
        self.keys: Dict[str, int] = {}
        #: bumped by every crash; prepares carry it for race detection
        self.generation = 0
        self.checkpoints = CheckpointManager.for_controller(self.mvm)
        #: pinned at the publish frontier (advanced inside every apply)
        self.recovery = self.checkpoints.create()
        self._queue: Deque[ShardCommand] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        #: txn uid -> reserved end_ts (prepare outstanding)
        self._prepared: Dict[int, int] = {}
        #: line -> txn uid holding the prepare lock
        self._locks: Dict[int, int] = {}
        #: chaos: milliseconds the task sleeps before its next command
        self._stall_ms = 0.0
        self._task: Optional[asyncio.Task] = None
        # counters (scraped into the server's metrics registry)
        self.commits = 0
        self.shed = 0
        self.crashes = 0
        self.stalls = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Spawn the single-writer command task."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain and stop the command task; queued commands get SHUTDOWN."""
        self._closed = True
        while self._queue:
            self._queue.popleft().resolve(SHUTDOWN)
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None

    # ------------------------------------------------------------------
    # submission (coordinator side)

    def submit(self, kind: str, txn: Txn,
               payload: object = None) -> "asyncio.Future":
        """Enqueue a command; a full queue sheds it as ``overloaded``."""
        future = asyncio.get_running_loop().create_future()
        command = ShardCommand(kind, txn, payload, future)
        if self._closed:
            command.resolve(SHUTDOWN)
        elif len(self._queue) >= self.config.shard_queue_depth:
            self.shed += 1
            command.resolve(OVERLOADED)
        else:
            self._queue.append(command)
            self._wakeup.set()
        return future

    def line_for(self, key: str) -> int:
        """Intern ``key`` to its line identifier."""
        line = self.keys.get(key)
        if line is None:
            line = self.keys[key] = len(self.keys)
        return line

    # ------------------------------------------------------------------
    # the single-writer loop

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if self._stall_ms:
                delay, self._stall_ms = self._stall_ms, 0.0
                self.stalls += 1
                await asyncio.sleep(delay / 1000.0)
            command = self._queue.popleft()
            if command.future.done():
                continue
            if command.txn.doomed is not None:
                command.resolve(CONFLICT, command.txn.doomed)
                continue
            if loop.time() > command.txn.deadline:
                command.resolve(TIMEOUT)
                continue
            if command.kind == "snapshot":
                if not self._do_snapshot(command):
                    # Δ-stall: a commit reservation is in flight; yield
                    # so the coordinator can finish it, then retry
                    self._queue.append(command)
                    await asyncio.sleep(0)
            elif command.kind == "read":
                self._do_read(command)
            elif command.kind == "prepare":
                if not self._do_prepare(command):
                    # another commit holds this shard's reservation;
                    # serializing prepares keeps applies in timestamp
                    # order (prepares run in sorted shard order, so the
                    # cross-shard wait-for graph stays acyclic, and the
                    # deadline bounds the wait regardless)
                    self._queue.append(command)
                    await asyncio.sleep(0)
            else:  # pragma: no cover - commands are created in-package
                command.resolve(CONFLICT, f"unknown command {command.kind}")

    def _do_snapshot(self, command: ShardCommand) -> bool:
        start_ts = self.mvm.clock.next_start()
        if start_ts is None:
            return False
        self.mvm.active.add(start_ts)
        command.txn.snapshots[self.shard_id] = (start_ts, self.generation)
        command.resolve(OK, start_ts)
        return True

    def _do_read(self, command: ShardCommand) -> None:
        key = command.payload
        pin = command.txn.snapshots.get(self.shard_id)
        if pin is None or pin[1] != self.generation:
            command.resolve(CRASHED)
            return
        line = self.keys.get(key)
        if line is None:
            command.resolve(OK, None)
            return
        data = self.mvm.snapshot_read(line, pin[0])
        command.resolve(OK, data[0] if data is not None else None)

    def _do_prepare(self, command: ShardCommand) -> bool:
        """Phase 1 of commit: validate, reserve end_ts, lock lines.

        Returns False (defer) while another transaction holds this
        shard's commit reservation: one reservation at a time keeps
        applies in timestamp order, so the recovery checkpoint only
        ever advances and no version is installed in the published
        past.
        """
        txn = command.txn
        if self._prepared:
            return False
        writes: Dict[str, object] = command.payload
        pin = txn.snapshots.get(self.shard_id)
        if pin is None or pin[1] != self.generation:
            command.resolve(CRASHED)
            return True
        lines = sorted(self.line_for(key) for key in writes)
        for line in lines:
            holder = self._locks.get(line)
            if holder is not None and holder != txn.uid:
                command.resolve(CONFLICT, "write-write")
                return True
        if self.config.validate_fcw:
            conflict = self.mvm.validate_many(lines, pin[0])
            if conflict is not None:
                command.resolve(CONFLICT, "write-write")
                return True
        end_ts = self.mvm.clock.begin_commit()
        self._prepared[txn.uid] = end_ts
        for line in lines:
            self._locks[line] = txn.uid
        command.resolve(OK, (end_ts, self.generation))
        return True

    # ------------------------------------------------------------------
    # synchronous coordinator-side phases (atomic: no awaits)

    def apply(self, txn: Txn, end_ts: int,
              writes: Dict[str, object]) -> None:
        """Phase 2 of commit: install, publish, advance recovery.

        Runs synchronously from the coordinator after every touched
        shard prepared — with no ``await`` between the generation checks
        and the last shard's apply, the whole multi-shard publish is one
        atomic step of the event loop.
        """
        items = [(self.line_for(key), (value,))
                 for key, value in sorted(writes.items())]
        self.mvm.install_many(end_ts, items,
                              installer=(txn.uid, txn.label))
        self.mvm.clock.finish_commit(end_ts)
        self._prepared.pop(txn.uid, None)
        self._release_locks(txn.uid)
        self.recovery = self.checkpoints.advance(self.recovery, end_ts)
        self.commits += 1
        txn.commit_ts[self.shard_id] = end_ts

    def abort_prepare(self, txn: Txn) -> None:
        """Abandon a prepare's reservation and locks (idempotent)."""
        end_ts = self._prepared.pop(txn.uid, None)
        if end_ts is not None:
            self.mvm.clock.abandon_commit(end_ts)
        self._release_locks(txn.uid)

    def release_snapshot(self, txn: Txn) -> None:
        """Unpin a transaction's snapshot unless a crash already did."""
        pin = txn.snapshots.pop(self.shard_id, None)
        if pin is not None and pin[1] == self.generation:
            self.mvm.active.remove(pin[0])

    def _release_locks(self, uid: int) -> None:
        for line in [ln for ln, holder in self._locks.items()
                     if holder == uid]:
            del self._locks[line]

    # ------------------------------------------------------------------
    # chaos hooks

    def inject_stall(self, ms: float) -> None:
        """Make the command task sleep ``ms`` before its next command."""
        self._stall_ms += ms

    def crash_now(self, open_txns: Iterable[Txn]) -> List[Txn]:
        """Forced crash + restart from the recovery checkpoint.

        Synchronous and atomic: bumps the generation (outstanding
        prepares become detectably stale), fails queued commands,
        abandons reservations, dooms/unpins every open transaction with
        state here, and truncates the MVM back to the publish frontier.
        Returns the transactions doomed.
        """
        self.generation += 1
        self.crashes += 1
        while self._queue:
            self._queue.popleft().resolve(CRASHED)
        for end_ts in self._prepared.values():
            self.mvm.clock.abandon_commit(end_ts)
        self._prepared.clear()
        self._locks.clear()
        doomed = []
        for txn in open_txns:
            pin = txn.snapshots.pop(self.shard_id, None)
            if pin is not None and pin[1] == self.generation - 1:
                self.mvm.active.remove(pin[0])
            if pin is not None or any(
                    shard == self.shard_id for shard, _ in txn.writes):
                txn.doom("shard-crashed")
                doomed.append(txn)
        self.checkpoints.rollback(self.recovery)
        return doomed

    # ------------------------------------------------------------------
    # introspection

    @property
    def watermark(self) -> Optional[int]:
        """Oldest pinned snapshot (bounds what version GC must keep)."""
        return self.mvm.active.oldest()

    def pinned_transactions(self) -> int:
        """Active-table entries beyond the recovery checkpoint's pin."""
        return len(self.mvm.active) - self.checkpoints.live_count

    def stats(self) -> dict:
        """Shard counters for the metrics registry."""
        return {
            "commits": self.commits,
            "shed": self.shed,
            "crashes": self.crashes,
            "stalls": self.stalls,
            "generation": self.generation,
            "keys": len(self.keys),
            "queue_depth": len(self._queue),
            "pinned_transactions": self.pinned_transactions(),
            "watermark": self.watermark,
        }
